/root/repo/target/debug/examples/checkpoint_restore-56dfbcd85cfeed99.d: examples/checkpoint_restore.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpoint_restore-56dfbcd85cfeed99.rmeta: examples/checkpoint_restore.rs Cargo.toml

examples/checkpoint_restore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
