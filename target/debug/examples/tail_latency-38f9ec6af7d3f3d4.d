/root/repo/target/debug/examples/tail_latency-38f9ec6af7d3f3d4.d: examples/tail_latency.rs

/root/repo/target/debug/examples/libtail_latency-38f9ec6af7d3f3d4.rmeta: examples/tail_latency.rs

examples/tail_latency.rs:
