/root/repo/target/debug/examples/sp_debug-b44be830bfad1a11.d: examples/sp_debug.rs

/root/repo/target/debug/examples/sp_debug-b44be830bfad1a11: examples/sp_debug.rs

examples/sp_debug.rs:
