/root/repo/target/debug/examples/checkpoint_restore-4f5d939f11562155.d: examples/checkpoint_restore.rs

/root/repo/target/debug/examples/libcheckpoint_restore-4f5d939f11562155.rmeta: examples/checkpoint_restore.rs

examples/checkpoint_restore.rs:
