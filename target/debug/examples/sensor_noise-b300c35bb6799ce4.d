/root/repo/target/debug/examples/sensor_noise-b300c35bb6799ce4.d: examples/sensor_noise.rs

/root/repo/target/debug/examples/libsensor_noise-b300c35bb6799ce4.rmeta: examples/sensor_noise.rs

examples/sensor_noise.rs:
