/root/repo/target/debug/examples/tail_latency-70d73e1dc9cb8368.d: examples/tail_latency.rs Cargo.toml

/root/repo/target/debug/examples/libtail_latency-70d73e1dc9cb8368.rmeta: examples/tail_latency.rs Cargo.toml

examples/tail_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
