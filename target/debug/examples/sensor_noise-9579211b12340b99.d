/root/repo/target/debug/examples/sensor_noise-9579211b12340b99.d: examples/sensor_noise.rs

/root/repo/target/debug/examples/sensor_noise-9579211b12340b99: examples/sensor_noise.rs

examples/sensor_noise.rs:
