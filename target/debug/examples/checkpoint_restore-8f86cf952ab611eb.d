/root/repo/target/debug/examples/checkpoint_restore-8f86cf952ab611eb.d: examples/checkpoint_restore.rs

/root/repo/target/debug/examples/checkpoint_restore-8f86cf952ab611eb: examples/checkpoint_restore.rs

examples/checkpoint_restore.rs:
