/root/repo/target/debug/examples/trace_replay-a4bbfa3cb6d255db.d: examples/trace_replay.rs

/root/repo/target/debug/examples/libtrace_replay-a4bbfa3cb6d255db.rmeta: examples/trace_replay.rs

examples/trace_replay.rs:
