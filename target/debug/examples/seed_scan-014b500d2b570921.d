/root/repo/target/debug/examples/seed_scan-014b500d2b570921.d: crates/datasets/examples/seed_scan.rs

/root/repo/target/debug/examples/seed_scan-014b500d2b570921: crates/datasets/examples/seed_scan.rs

crates/datasets/examples/seed_scan.rs:
