/root/repo/target/debug/examples/quickstart-25a050805f4f4d08.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-25a050805f4f4d08: examples/quickstart.rs

examples/quickstart.rs:
