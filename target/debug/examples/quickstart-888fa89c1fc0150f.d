/root/repo/target/debug/examples/quickstart-888fa89c1fc0150f.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-888fa89c1fc0150f.rmeta: examples/quickstart.rs

examples/quickstart.rs:
