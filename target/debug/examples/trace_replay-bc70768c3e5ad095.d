/root/repo/target/debug/examples/trace_replay-bc70768c3e5ad095.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-bc70768c3e5ad095: examples/trace_replay.rs

examples/trace_replay.rs:
