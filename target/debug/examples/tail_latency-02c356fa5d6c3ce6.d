/root/repo/target/debug/examples/tail_latency-02c356fa5d6c3ce6.d: examples/tail_latency.rs

/root/repo/target/debug/examples/tail_latency-02c356fa5d6c3ce6: examples/tail_latency.rs

examples/tail_latency.rs:
