/root/repo/target/debug/examples/multi_criteria-e9bda6c4bf127900.d: examples/multi_criteria.rs

/root/repo/target/debug/examples/libmulti_criteria-e9bda6c4bf127900.rmeta: examples/multi_criteria.rs

examples/multi_criteria.rs:
