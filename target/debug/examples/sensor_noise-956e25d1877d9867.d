/root/repo/target/debug/examples/sensor_noise-956e25d1877d9867.d: examples/sensor_noise.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_noise-956e25d1877d9867.rmeta: examples/sensor_noise.rs Cargo.toml

examples/sensor_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
