/root/repo/target/debug/examples/multi_criteria-6a1b6eaa30723d03.d: examples/multi_criteria.rs

/root/repo/target/debug/examples/multi_criteria-6a1b6eaa30723d03: examples/multi_criteria.rs

examples/multi_criteria.rs:
