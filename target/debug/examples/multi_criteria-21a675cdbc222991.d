/root/repo/target/debug/examples/multi_criteria-21a675cdbc222991.d: examples/multi_criteria.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_criteria-21a675cdbc222991.rmeta: examples/multi_criteria.rs Cargo.toml

examples/multi_criteria.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
