/root/repo/target/debug/deps/end_to_end-fb122aaa880a30b6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-fb122aaa880a30b6.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
