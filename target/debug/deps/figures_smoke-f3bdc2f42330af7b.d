/root/repo/target/debug/deps/figures_smoke-f3bdc2f42330af7b.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/libfigures_smoke-f3bdc2f42330af7b.rmeta: tests/figures_smoke.rs

tests/figures_smoke.rs:
