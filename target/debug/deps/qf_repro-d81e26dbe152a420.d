/root/repo/target/debug/deps/qf_repro-d81e26dbe152a420.d: src/lib.rs

/root/repo/target/debug/deps/libqf_repro-d81e26dbe152a420.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
