/root/repo/target/debug/deps/detect-432530385fe6277a.d: crates/bench/src/bin/detect.rs

/root/repo/target/debug/deps/libdetect-432530385fe6277a.rmeta: crates/bench/src/bin/detect.rs

crates/bench/src/bin/detect.rs:
