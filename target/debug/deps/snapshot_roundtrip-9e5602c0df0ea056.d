/root/repo/target/debug/deps/snapshot_roundtrip-9e5602c0df0ea056.d: tests/snapshot_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libsnapshot_roundtrip-9e5602c0df0ea056.rmeta: tests/snapshot_roundtrip.rs Cargo.toml

tests/snapshot_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
