/root/repo/target/debug/deps/theorems-ebc361dd6df14a52.d: tests/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libtheorems-ebc361dd6df14a52.rmeta: tests/theorems.rs Cargo.toml

tests/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
