/root/repo/target/debug/deps/qf_eval-a12350a37fbbc531.d: crates/eval/src/lib.rs crates/eval/src/concurrent.rs crates/eval/src/figures/mod.rs crates/eval/src/figures/accuracy.rs crates/eval/src/figures/dynamic.rs crates/eval/src/figures/params.rs crates/eval/src/figures/speed.rs crates/eval/src/metrics.rs crates/eval/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libqf_eval-a12350a37fbbc531.rmeta: crates/eval/src/lib.rs crates/eval/src/concurrent.rs crates/eval/src/figures/mod.rs crates/eval/src/figures/accuracy.rs crates/eval/src/figures/dynamic.rs crates/eval/src/figures/params.rs crates/eval/src/figures/speed.rs crates/eval/src/metrics.rs crates/eval/src/runner.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/concurrent.rs:
crates/eval/src/figures/mod.rs:
crates/eval/src/figures/accuracy.rs:
crates/eval/src/figures/dynamic.rs:
crates/eval/src/figures/params.rs:
crates/eval/src/figures/speed.rs:
crates/eval/src/metrics.rs:
crates/eval/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
