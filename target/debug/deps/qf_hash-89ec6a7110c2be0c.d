/root/repo/target/debug/deps/qf_hash-89ec6a7110c2be0c.d: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

/root/repo/target/debug/deps/qf_hash-89ec6a7110c2be0c: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

crates/hash/src/lib.rs:
crates/hash/src/family.rs:
crates/hash/src/key.rs:
crates/hash/src/murmur3.rs:
crates/hash/src/splitmix.rs:
crates/hash/src/wire.rs:
crates/hash/src/xxhash.rs:
