/root/repo/target/debug/deps/serde_derive-37c5755f110d807f.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-37c5755f110d807f.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
