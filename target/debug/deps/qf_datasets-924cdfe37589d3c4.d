/root/repo/target/debug/deps/qf_datasets-924cdfe37589d3c4.d: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libqf_datasets-924cdfe37589d3c4.rmeta: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/config.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/trace.rs:
crates/datasets/src/values.rs:
crates/datasets/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
