/root/repo/target/debug/deps/gen_trace-c3b0d0de89e8e261.d: crates/bench/src/bin/gen_trace.rs Cargo.toml

/root/repo/target/debug/deps/libgen_trace-c3b0d0de89e8e261.rmeta: crates/bench/src/bin/gen_trace.rs Cargo.toml

crates/bench/src/bin/gen_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
