/root/repo/target/debug/deps/qf_baselines-ef031e4a9f245475.d: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

/root/repo/target/debug/deps/libqf_baselines-ef031e4a9f245475.rlib: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

/root/repo/target/debug/deps/libqf_baselines-ef031e4a9f245475.rmeta: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

crates/baselines/src/lib.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/hist_sketch.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/qf.rs:
crates/baselines/src/sketch_polymer.rs:
crates/baselines/src/squad.rs:
crates/baselines/src/value_buckets.rs:
