/root/repo/target/debug/deps/figures_smoke-ba89a160eeb0e939.d: tests/figures_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_smoke-ba89a160eeb0e939.rmeta: tests/figures_smoke.rs Cargo.toml

tests/figures_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
