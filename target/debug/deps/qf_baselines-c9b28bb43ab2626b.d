/root/repo/target/debug/deps/qf_baselines-c9b28bb43ab2626b.d: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

/root/repo/target/debug/deps/libqf_baselines-c9b28bb43ab2626b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

crates/baselines/src/lib.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/hist_sketch.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/qf.rs:
crates/baselines/src/sketch_polymer.rs:
crates/baselines/src/squad.rs:
crates/baselines/src/value_buckets.rs:
