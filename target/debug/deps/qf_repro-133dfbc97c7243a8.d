/root/repo/target/debug/deps/qf_repro-133dfbc97c7243a8.d: src/lib.rs

/root/repo/target/debug/deps/qf_repro-133dfbc97c7243a8: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
