/root/repo/target/debug/deps/theorems-74018bcd85bc9c42.d: tests/theorems.rs

/root/repo/target/debug/deps/theorems-74018bcd85bc9c42: tests/theorems.rs

tests/theorems.rs:
