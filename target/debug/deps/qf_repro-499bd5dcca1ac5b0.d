/root/repo/target/debug/deps/qf_repro-499bd5dcca1ac5b0.d: src/lib.rs

/root/repo/target/debug/deps/libqf_repro-499bd5dcca1ac5b0.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
