/root/repo/target/debug/deps/flexibility-d8c704ba695dfec9.d: tests/flexibility.rs

/root/repo/target/debug/deps/libflexibility-d8c704ba695dfec9.rmeta: tests/flexibility.rs

tests/flexibility.rs:
