/root/repo/target/debug/deps/qf_quantiles-bcf20a07fc5e70b8.d: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs Cargo.toml

/root/repo/target/debug/deps/libqf_quantiles-bcf20a07fc5e70b8.rmeta: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs Cargo.toml

crates/quantiles/src/lib.rs:
crates/quantiles/src/ddsketch.rs:
crates/quantiles/src/exact.rs:
crates/quantiles/src/gk.rs:
crates/quantiles/src/kll.rs:
crates/quantiles/src/qdigest.rs:
crates/quantiles/src/tdigest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
