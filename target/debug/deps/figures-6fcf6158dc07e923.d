/root/repo/target/debug/deps/figures-6fcf6158dc07e923.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-6fcf6158dc07e923.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
