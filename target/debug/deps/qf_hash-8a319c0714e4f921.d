/root/repo/target/debug/deps/qf_hash-8a319c0714e4f921.d: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

/root/repo/target/debug/deps/libqf_hash-8a319c0714e4f921.rmeta: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

crates/hash/src/lib.rs:
crates/hash/src/family.rs:
crates/hash/src/key.rs:
crates/hash/src/murmur3.rs:
crates/hash/src/splitmix.rs:
crates/hash/src/wire.rs:
crates/hash/src/xxhash.rs:
