/root/repo/target/debug/deps/proptest-d9c60851ba65f4e9.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d9c60851ba65f4e9.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
