/root/repo/target/debug/deps/ablations-ff78b6ee6675f701.d: tests/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ff78b6ee6675f701.rmeta: tests/ablations.rs Cargo.toml

tests/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
