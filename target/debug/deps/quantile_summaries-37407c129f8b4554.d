/root/repo/target/debug/deps/quantile_summaries-37407c129f8b4554.d: crates/bench/benches/quantile_summaries.rs

/root/repo/target/debug/deps/libquantile_summaries-37407c129f8b4554.rmeta: crates/bench/benches/quantile_summaries.rs

crates/bench/benches/quantile_summaries.rs:
