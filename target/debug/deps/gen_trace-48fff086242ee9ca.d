/root/repo/target/debug/deps/gen_trace-48fff086242ee9ca.d: crates/bench/src/bin/gen_trace.rs

/root/repo/target/debug/deps/libgen_trace-48fff086242ee9ca.rmeta: crates/bench/src/bin/gen_trace.rs

crates/bench/src/bin/gen_trace.rs:
