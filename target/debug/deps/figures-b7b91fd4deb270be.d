/root/repo/target/debug/deps/figures-b7b91fd4deb270be.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-b7b91fd4deb270be.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
