/root/repo/target/debug/deps/qf_quantiles-0c6ae38344fac891.d: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs

/root/repo/target/debug/deps/libqf_quantiles-0c6ae38344fac891.rmeta: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs

crates/quantiles/src/lib.rs:
crates/quantiles/src/ddsketch.rs:
crates/quantiles/src/exact.rs:
crates/quantiles/src/gk.rs:
crates/quantiles/src/kll.rs:
crates/quantiles/src/qdigest.rs:
crates/quantiles/src/tdigest.rs:
