/root/repo/target/debug/deps/filter_insert-28cd161e3dea3d1b.d: crates/bench/benches/filter_insert.rs Cargo.toml

/root/repo/target/debug/deps/libfilter_insert-28cd161e3dea3d1b.rmeta: crates/bench/benches/filter_insert.rs Cargo.toml

crates/bench/benches/filter_insert.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
