/root/repo/target/debug/deps/qf_bench-4d202c0e7f82979b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqf_bench-4d202c0e7f82979b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqf_bench-4d202c0e7f82979b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
