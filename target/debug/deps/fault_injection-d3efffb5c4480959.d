/root/repo/target/debug/deps/fault_injection-d3efffb5c4480959.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-d3efffb5c4480959.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
