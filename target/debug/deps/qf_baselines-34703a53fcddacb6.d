/root/repo/target/debug/deps/qf_baselines-34703a53fcddacb6.d: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs Cargo.toml

/root/repo/target/debug/deps/libqf_baselines-34703a53fcddacb6.rmeta: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/hist_sketch.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/qf.rs:
crates/baselines/src/sketch_polymer.rs:
crates/baselines/src/squad.rs:
crates/baselines/src/value_buckets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
