/root/repo/target/debug/deps/qf_hash-aebe1ba49c19f87b.d: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

/root/repo/target/debug/deps/libqf_hash-aebe1ba49c19f87b.rlib: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

/root/repo/target/debug/deps/libqf_hash-aebe1ba49c19f87b.rmeta: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

crates/hash/src/lib.rs:
crates/hash/src/family.rs:
crates/hash/src/key.rs:
crates/hash/src/murmur3.rs:
crates/hash/src/splitmix.rs:
crates/hash/src/wire.rs:
crates/hash/src/xxhash.rs:
