/root/repo/target/debug/deps/figure_kernels-2e1fa96c912f3540.d: crates/bench/benches/figure_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_kernels-2e1fa96c912f3540.rmeta: crates/bench/benches/figure_kernels.rs Cargo.toml

crates/bench/benches/figure_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
