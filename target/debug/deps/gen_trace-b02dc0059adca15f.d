/root/repo/target/debug/deps/gen_trace-b02dc0059adca15f.d: crates/bench/src/bin/gen_trace.rs

/root/repo/target/debug/deps/gen_trace-b02dc0059adca15f: crates/bench/src/bin/gen_trace.rs

crates/bench/src/bin/gen_trace.rs:
