/root/repo/target/debug/deps/gen_trace-23e56e915f7cc129.d: crates/bench/src/bin/gen_trace.rs Cargo.toml

/root/repo/target/debug/deps/libgen_trace-23e56e915f7cc129.rmeta: crates/bench/src/bin/gen_trace.rs Cargo.toml

crates/bench/src/bin/gen_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
