/root/repo/target/debug/deps/ablations-ac35241f25e9788f.d: tests/ablations.rs

/root/repo/target/debug/deps/ablations-ac35241f25e9788f: tests/ablations.rs

tests/ablations.rs:
