/root/repo/target/debug/deps/serde_derive-a8028183f4c5f3f1.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-a8028183f4c5f3f1.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
