/root/repo/target/debug/deps/quantile_summaries-178e06b7478e277e.d: crates/bench/benches/quantile_summaries.rs Cargo.toml

/root/repo/target/debug/deps/libquantile_summaries-178e06b7478e277e.rmeta: crates/bench/benches/quantile_summaries.rs Cargo.toml

crates/bench/benches/quantile_summaries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
