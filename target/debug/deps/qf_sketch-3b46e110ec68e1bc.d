/root/repo/target/debug/deps/qf_sketch-3b46e110ec68e1bc.d: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs

/root/repo/target/debug/deps/libqf_sketch-3b46e110ec68e1bc.rmeta: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs

crates/sketch/src/lib.rs:
crates/sketch/src/count_min.rs:
crates/sketch/src/count_sketch.rs:
crates/sketch/src/counter.rs:
crates/sketch/src/rounding.rs:
crates/sketch/src/snapshot.rs:
crates/sketch/src/space_saving.rs:
crates/sketch/src/traits.rs:
