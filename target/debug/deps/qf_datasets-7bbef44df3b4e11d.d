/root/repo/target/debug/deps/qf_datasets-7bbef44df3b4e11d.d: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs

/root/repo/target/debug/deps/libqf_datasets-7bbef44df3b4e11d.rmeta: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs

crates/datasets/src/lib.rs:
crates/datasets/src/config.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/trace.rs:
crates/datasets/src/values.rs:
crates/datasets/src/zipf.rs:
