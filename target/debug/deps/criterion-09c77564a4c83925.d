/root/repo/target/debug/deps/criterion-09c77564a4c83925.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-09c77564a4c83925.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
