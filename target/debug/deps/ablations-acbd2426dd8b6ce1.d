/root/repo/target/debug/deps/ablations-acbd2426dd8b6ce1.d: tests/ablations.rs

/root/repo/target/debug/deps/libablations-acbd2426dd8b6ce1.rmeta: tests/ablations.rs

tests/ablations.rs:
