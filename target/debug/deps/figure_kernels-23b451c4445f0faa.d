/root/repo/target/debug/deps/figure_kernels-23b451c4445f0faa.d: crates/bench/benches/figure_kernels.rs

/root/repo/target/debug/deps/libfigure_kernels-23b451c4445f0faa.rmeta: crates/bench/benches/figure_kernels.rs

crates/bench/benches/figure_kernels.rs:
