/root/repo/target/debug/deps/trace_roundtrip-048943a5c20d06e4.d: tests/trace_roundtrip.rs

/root/repo/target/debug/deps/trace_roundtrip-048943a5c20d06e4: tests/trace_roundtrip.rs

tests/trace_roundtrip.rs:
