/root/repo/target/debug/deps/snapshot_roundtrip-e31d5e9408f3381a.d: tests/snapshot_roundtrip.rs

/root/repo/target/debug/deps/libsnapshot_roundtrip-e31d5e9408f3381a.rmeta: tests/snapshot_roundtrip.rs

tests/snapshot_roundtrip.rs:
