/root/repo/target/debug/deps/baseline_agreement-2feeeaeaf94df40d.d: tests/baseline_agreement.rs

/root/repo/target/debug/deps/baseline_agreement-2feeeaeaf94df40d: tests/baseline_agreement.rs

tests/baseline_agreement.rs:
