/root/repo/target/debug/deps/qf_bench-46cc697dd8536e6c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqf_bench-46cc697dd8536e6c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
