/root/repo/target/debug/deps/baseline_agreement-631e7fd26d30fd84.d: tests/baseline_agreement.rs

/root/repo/target/debug/deps/libbaseline_agreement-631e7fd26d30fd84.rmeta: tests/baseline_agreement.rs

tests/baseline_agreement.rs:
