/root/repo/target/debug/deps/qf_bench-eb4bd3015a0aa13c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqf_bench-eb4bd3015a0aa13c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
