/root/repo/target/debug/deps/baseline_agreement-98c7739b48145a35.d: tests/baseline_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_agreement-98c7739b48145a35.rmeta: tests/baseline_agreement.rs Cargo.toml

tests/baseline_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
