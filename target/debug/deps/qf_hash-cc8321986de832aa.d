/root/repo/target/debug/deps/qf_hash-cc8321986de832aa.d: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs Cargo.toml

/root/repo/target/debug/deps/libqf_hash-cc8321986de832aa.rmeta: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs Cargo.toml

crates/hash/src/lib.rs:
crates/hash/src/family.rs:
crates/hash/src/key.rs:
crates/hash/src/murmur3.rs:
crates/hash/src/splitmix.rs:
crates/hash/src/wire.rs:
crates/hash/src/xxhash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
