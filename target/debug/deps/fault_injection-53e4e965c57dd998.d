/root/repo/target/debug/deps/fault_injection-53e4e965c57dd998.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-53e4e965c57dd998: tests/fault_injection.rs

tests/fault_injection.rs:
