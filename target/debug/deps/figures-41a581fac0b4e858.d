/root/repo/target/debug/deps/figures-41a581fac0b4e858.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-41a581fac0b4e858: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
