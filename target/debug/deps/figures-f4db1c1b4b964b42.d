/root/repo/target/debug/deps/figures-f4db1c1b4b964b42.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-f4db1c1b4b964b42.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
