/root/repo/target/debug/deps/filter_insert-3c36871d4329717b.d: crates/bench/benches/filter_insert.rs

/root/repo/target/debug/deps/libfilter_insert-3c36871d4329717b.rmeta: crates/bench/benches/filter_insert.rs

crates/bench/benches/filter_insert.rs:
