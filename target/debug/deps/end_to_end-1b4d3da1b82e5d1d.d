/root/repo/target/debug/deps/end_to_end-1b4d3da1b82e5d1d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1b4d3da1b82e5d1d: tests/end_to_end.rs

tests/end_to_end.rs:
