/root/repo/target/debug/deps/qf_bench-2f745b321729ae95.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqf_bench-2f745b321729ae95.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
