/root/repo/target/debug/deps/qf_repro-8aec8d03d951dd38.d: src/lib.rs

/root/repo/target/debug/deps/libqf_repro-8aec8d03d951dd38.rlib: src/lib.rs

/root/repo/target/debug/deps/libqf_repro-8aec8d03d951dd38.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
