/root/repo/target/debug/deps/qf_sketch-398d9c267c4994f5.d: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libqf_sketch-398d9c267c4994f5.rmeta: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs Cargo.toml

crates/sketch/src/lib.rs:
crates/sketch/src/count_min.rs:
crates/sketch/src/count_sketch.rs:
crates/sketch/src/counter.rs:
crates/sketch/src/rounding.rs:
crates/sketch/src/snapshot.rs:
crates/sketch/src/space_saving.rs:
crates/sketch/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
