/root/repo/target/debug/deps/flexibility-0e17b20f372f194f.d: tests/flexibility.rs Cargo.toml

/root/repo/target/debug/deps/libflexibility-0e17b20f372f194f.rmeta: tests/flexibility.rs Cargo.toml

tests/flexibility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
