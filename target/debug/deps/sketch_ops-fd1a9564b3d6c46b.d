/root/repo/target/debug/deps/sketch_ops-fd1a9564b3d6c46b.d: crates/bench/benches/sketch_ops.rs

/root/repo/target/debug/deps/libsketch_ops-fd1a9564b3d6c46b.rmeta: crates/bench/benches/sketch_ops.rs

crates/bench/benches/sketch_ops.rs:
