/root/repo/target/debug/deps/snapshot_roundtrip-04e5b483f00dda82.d: tests/snapshot_roundtrip.rs

/root/repo/target/debug/deps/snapshot_roundtrip-04e5b483f00dda82: tests/snapshot_roundtrip.rs

tests/snapshot_roundtrip.rs:
