/root/repo/target/debug/deps/figures_smoke-e0ec0c216b84bd9d.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-e0ec0c216b84bd9d: tests/figures_smoke.rs

tests/figures_smoke.rs:
