/root/repo/target/debug/deps/qf_baselines-c4f0f4952a991891.d: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

/root/repo/target/debug/deps/qf_baselines-c4f0f4952a991891: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

crates/baselines/src/lib.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/hist_sketch.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/qf.rs:
crates/baselines/src/sketch_polymer.rs:
crates/baselines/src/squad.rs:
crates/baselines/src/value_buckets.rs:
