/root/repo/target/debug/deps/detect-96571a33f25f6f75.d: crates/bench/src/bin/detect.rs Cargo.toml

/root/repo/target/debug/deps/libdetect-96571a33f25f6f75.rmeta: crates/bench/src/bin/detect.rs Cargo.toml

crates/bench/src/bin/detect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
