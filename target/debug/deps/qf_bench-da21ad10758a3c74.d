/root/repo/target/debug/deps/qf_bench-da21ad10758a3c74.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqf_bench-da21ad10758a3c74.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
