/root/repo/target/debug/deps/figures-ee9dd416c6d41f0e.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-ee9dd416c6d41f0e.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
