/root/repo/target/debug/deps/gen_trace-d31b953941358c21.d: crates/bench/src/bin/gen_trace.rs

/root/repo/target/debug/deps/libgen_trace-d31b953941358c21.rmeta: crates/bench/src/bin/gen_trace.rs

crates/bench/src/bin/gen_trace.rs:
