/root/repo/target/debug/deps/qf_datasets-b0c697229a10c7ab.d: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs

/root/repo/target/debug/deps/libqf_datasets-b0c697229a10c7ab.rmeta: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs

crates/datasets/src/lib.rs:
crates/datasets/src/config.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/trace.rs:
crates/datasets/src/values.rs:
crates/datasets/src/zipf.rs:
