/root/repo/target/debug/deps/detect-104793c0c9ad7974.d: crates/bench/src/bin/detect.rs

/root/repo/target/debug/deps/detect-104793c0c9ad7974: crates/bench/src/bin/detect.rs

crates/bench/src/bin/detect.rs:
