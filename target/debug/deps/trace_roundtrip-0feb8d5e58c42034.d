/root/repo/target/debug/deps/trace_roundtrip-0feb8d5e58c42034.d: tests/trace_roundtrip.rs

/root/repo/target/debug/deps/libtrace_roundtrip-0feb8d5e58c42034.rmeta: tests/trace_roundtrip.rs

tests/trace_roundtrip.rs:
