/root/repo/target/debug/deps/qf_eval-593d26e8e929b810.d: crates/eval/src/lib.rs crates/eval/src/concurrent.rs crates/eval/src/figures/mod.rs crates/eval/src/figures/accuracy.rs crates/eval/src/figures/dynamic.rs crates/eval/src/figures/params.rs crates/eval/src/figures/speed.rs crates/eval/src/metrics.rs crates/eval/src/runner.rs

/root/repo/target/debug/deps/libqf_eval-593d26e8e929b810.rmeta: crates/eval/src/lib.rs crates/eval/src/concurrent.rs crates/eval/src/figures/mod.rs crates/eval/src/figures/accuracy.rs crates/eval/src/figures/dynamic.rs crates/eval/src/figures/params.rs crates/eval/src/figures/speed.rs crates/eval/src/metrics.rs crates/eval/src/runner.rs

crates/eval/src/lib.rs:
crates/eval/src/concurrent.rs:
crates/eval/src/figures/mod.rs:
crates/eval/src/figures/accuracy.rs:
crates/eval/src/figures/dynamic.rs:
crates/eval/src/figures/params.rs:
crates/eval/src/figures/speed.rs:
crates/eval/src/metrics.rs:
crates/eval/src/runner.rs:
