/root/repo/target/debug/deps/qf_hash-eb52fa3960cf04bd.d: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

/root/repo/target/debug/deps/libqf_hash-eb52fa3960cf04bd.rmeta: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

crates/hash/src/lib.rs:
crates/hash/src/family.rs:
crates/hash/src/key.rs:
crates/hash/src/murmur3.rs:
crates/hash/src/splitmix.rs:
crates/hash/src/wire.rs:
crates/hash/src/xxhash.rs:
