/root/repo/target/debug/deps/flexibility-9988338bdd4623da.d: tests/flexibility.rs

/root/repo/target/debug/deps/flexibility-9988338bdd4623da: tests/flexibility.rs

tests/flexibility.rs:
