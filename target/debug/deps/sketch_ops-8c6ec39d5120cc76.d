/root/repo/target/debug/deps/sketch_ops-8c6ec39d5120cc76.d: crates/bench/benches/sketch_ops.rs Cargo.toml

/root/repo/target/debug/deps/libsketch_ops-8c6ec39d5120cc76.rmeta: crates/bench/benches/sketch_ops.rs Cargo.toml

crates/bench/benches/sketch_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
