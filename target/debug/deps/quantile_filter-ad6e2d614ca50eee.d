/root/repo/target/debug/deps/quantile_filter-ad6e2d614ca50eee.d: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/builder.rs crates/core/src/candidate.rs crates/core/src/criteria.rs crates/core/src/epoch.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/multi.rs crates/core/src/naive.rs crates/core/src/query.rs crates/core/src/qweight.rs crates/core/src/snapshot.rs crates/core/src/strategy.rs crates/core/src/stream.rs crates/core/src/vague.rs Cargo.toml

/root/repo/target/debug/deps/libquantile_filter-ad6e2d614ca50eee.rmeta: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/builder.rs crates/core/src/candidate.rs crates/core/src/criteria.rs crates/core/src/epoch.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/multi.rs crates/core/src/naive.rs crates/core/src/query.rs crates/core/src/qweight.rs crates/core/src/snapshot.rs crates/core/src/strategy.rs crates/core/src/stream.rs crates/core/src/vague.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/algorithm1.rs:
crates/core/src/builder.rs:
crates/core/src/candidate.rs:
crates/core/src/criteria.rs:
crates/core/src/epoch.rs:
crates/core/src/error.rs:
crates/core/src/filter.rs:
crates/core/src/multi.rs:
crates/core/src/naive.rs:
crates/core/src/query.rs:
crates/core/src/qweight.rs:
crates/core/src/snapshot.rs:
crates/core/src/strategy.rs:
crates/core/src/stream.rs:
crates/core/src/vague.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
