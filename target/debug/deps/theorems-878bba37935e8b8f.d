/root/repo/target/debug/deps/theorems-878bba37935e8b8f.d: tests/theorems.rs

/root/repo/target/debug/deps/libtheorems-878bba37935e8b8f.rmeta: tests/theorems.rs

tests/theorems.rs:
