/root/repo/target/debug/deps/criterion-810cf15787a896c9.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-810cf15787a896c9.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
