/root/repo/target/debug/deps/qf_sketch-b7ea2b3edbc269d9.d: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs

/root/repo/target/debug/deps/libqf_sketch-b7ea2b3edbc269d9.rmeta: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs

crates/sketch/src/lib.rs:
crates/sketch/src/count_min.rs:
crates/sketch/src/count_sketch.rs:
crates/sketch/src/counter.rs:
crates/sketch/src/rounding.rs:
crates/sketch/src/snapshot.rs:
crates/sketch/src/space_saving.rs:
crates/sketch/src/traits.rs:
