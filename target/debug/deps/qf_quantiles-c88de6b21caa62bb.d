/root/repo/target/debug/deps/qf_quantiles-c88de6b21caa62bb.d: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs Cargo.toml

/root/repo/target/debug/deps/libqf_quantiles-c88de6b21caa62bb.rmeta: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs Cargo.toml

crates/quantiles/src/lib.rs:
crates/quantiles/src/ddsketch.rs:
crates/quantiles/src/exact.rs:
crates/quantiles/src/gk.rs:
crates/quantiles/src/kll.rs:
crates/quantiles/src/qdigest.rs:
crates/quantiles/src/tdigest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
