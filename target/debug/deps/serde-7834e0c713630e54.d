/root/repo/target/debug/deps/serde-7834e0c713630e54.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-7834e0c713630e54.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
