/root/repo/target/debug/deps/trace_roundtrip-e281d6415941700c.d: tests/trace_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_roundtrip-e281d6415941700c.rmeta: tests/trace_roundtrip.rs Cargo.toml

tests/trace_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
