/root/repo/target/debug/deps/quantile_filter-c71318e5cf5c7cd5.d: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/builder.rs crates/core/src/candidate.rs crates/core/src/criteria.rs crates/core/src/epoch.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/multi.rs crates/core/src/naive.rs crates/core/src/query.rs crates/core/src/qweight.rs crates/core/src/snapshot.rs crates/core/src/strategy.rs crates/core/src/stream.rs crates/core/src/vague.rs

/root/repo/target/debug/deps/libquantile_filter-c71318e5cf5c7cd5.rmeta: crates/core/src/lib.rs crates/core/src/algorithm1.rs crates/core/src/builder.rs crates/core/src/candidate.rs crates/core/src/criteria.rs crates/core/src/epoch.rs crates/core/src/error.rs crates/core/src/filter.rs crates/core/src/multi.rs crates/core/src/naive.rs crates/core/src/query.rs crates/core/src/qweight.rs crates/core/src/snapshot.rs crates/core/src/strategy.rs crates/core/src/stream.rs crates/core/src/vague.rs

crates/core/src/lib.rs:
crates/core/src/algorithm1.rs:
crates/core/src/builder.rs:
crates/core/src/candidate.rs:
crates/core/src/criteria.rs:
crates/core/src/epoch.rs:
crates/core/src/error.rs:
crates/core/src/filter.rs:
crates/core/src/multi.rs:
crates/core/src/naive.rs:
crates/core/src/query.rs:
crates/core/src/qweight.rs:
crates/core/src/snapshot.rs:
crates/core/src/strategy.rs:
crates/core/src/stream.rs:
crates/core/src/vague.rs:
