/root/repo/target/debug/deps/qf_bench-354403a44f4d7d1c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/qf_bench-354403a44f4d7d1c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
