/root/repo/target/debug/deps/detect-973243818b71cde4.d: crates/bench/src/bin/detect.rs

/root/repo/target/debug/deps/libdetect-973243818b71cde4.rmeta: crates/bench/src/bin/detect.rs

crates/bench/src/bin/detect.rs:
