/root/repo/target/release/deps/rand-1e34d6df52920e31.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1e34d6df52920e31.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1e34d6df52920e31.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
