/root/repo/target/release/deps/crossbeam-b7eb1606a85b25c5.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-b7eb1606a85b25c5.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-b7eb1606a85b25c5.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
