/root/repo/target/release/deps/qf_baselines-5f2ad973b33cf700.d: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

/root/repo/target/release/deps/libqf_baselines-5f2ad973b33cf700.rlib: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

/root/repo/target/release/deps/libqf_baselines-5f2ad973b33cf700.rmeta: crates/baselines/src/lib.rs crates/baselines/src/exact.rs crates/baselines/src/hist_sketch.rs crates/baselines/src/naive.rs crates/baselines/src/qf.rs crates/baselines/src/sketch_polymer.rs crates/baselines/src/squad.rs crates/baselines/src/value_buckets.rs

crates/baselines/src/lib.rs:
crates/baselines/src/exact.rs:
crates/baselines/src/hist_sketch.rs:
crates/baselines/src/naive.rs:
crates/baselines/src/qf.rs:
crates/baselines/src/sketch_polymer.rs:
crates/baselines/src/squad.rs:
crates/baselines/src/value_buckets.rs:
