/root/repo/target/release/deps/detect-3c80b068e64dd5bc.d: crates/bench/src/bin/detect.rs

/root/repo/target/release/deps/detect-3c80b068e64dd5bc: crates/bench/src/bin/detect.rs

crates/bench/src/bin/detect.rs:
