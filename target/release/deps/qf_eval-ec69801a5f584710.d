/root/repo/target/release/deps/qf_eval-ec69801a5f584710.d: crates/eval/src/lib.rs crates/eval/src/concurrent.rs crates/eval/src/figures/mod.rs crates/eval/src/figures/accuracy.rs crates/eval/src/figures/dynamic.rs crates/eval/src/figures/params.rs crates/eval/src/figures/speed.rs crates/eval/src/metrics.rs crates/eval/src/runner.rs

/root/repo/target/release/deps/libqf_eval-ec69801a5f584710.rlib: crates/eval/src/lib.rs crates/eval/src/concurrent.rs crates/eval/src/figures/mod.rs crates/eval/src/figures/accuracy.rs crates/eval/src/figures/dynamic.rs crates/eval/src/figures/params.rs crates/eval/src/figures/speed.rs crates/eval/src/metrics.rs crates/eval/src/runner.rs

/root/repo/target/release/deps/libqf_eval-ec69801a5f584710.rmeta: crates/eval/src/lib.rs crates/eval/src/concurrent.rs crates/eval/src/figures/mod.rs crates/eval/src/figures/accuracy.rs crates/eval/src/figures/dynamic.rs crates/eval/src/figures/params.rs crates/eval/src/figures/speed.rs crates/eval/src/metrics.rs crates/eval/src/runner.rs

crates/eval/src/lib.rs:
crates/eval/src/concurrent.rs:
crates/eval/src/figures/mod.rs:
crates/eval/src/figures/accuracy.rs:
crates/eval/src/figures/dynamic.rs:
crates/eval/src/figures/params.rs:
crates/eval/src/figures/speed.rs:
crates/eval/src/metrics.rs:
crates/eval/src/runner.rs:
