/root/repo/target/release/deps/gen_trace-e6332dbddea61f5c.d: crates/bench/src/bin/gen_trace.rs

/root/repo/target/release/deps/gen_trace-e6332dbddea61f5c: crates/bench/src/bin/gen_trace.rs

crates/bench/src/bin/gen_trace.rs:
