/root/repo/target/release/deps/qf_sketch-6049807930d8d8d4.d: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs

/root/repo/target/release/deps/libqf_sketch-6049807930d8d8d4.rlib: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs

/root/repo/target/release/deps/libqf_sketch-6049807930d8d8d4.rmeta: crates/sketch/src/lib.rs crates/sketch/src/count_min.rs crates/sketch/src/count_sketch.rs crates/sketch/src/counter.rs crates/sketch/src/rounding.rs crates/sketch/src/snapshot.rs crates/sketch/src/space_saving.rs crates/sketch/src/traits.rs

crates/sketch/src/lib.rs:
crates/sketch/src/count_min.rs:
crates/sketch/src/count_sketch.rs:
crates/sketch/src/counter.rs:
crates/sketch/src/rounding.rs:
crates/sketch/src/snapshot.rs:
crates/sketch/src/space_saving.rs:
crates/sketch/src/traits.rs:
