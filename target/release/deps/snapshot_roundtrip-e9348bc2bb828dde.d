/root/repo/target/release/deps/snapshot_roundtrip-e9348bc2bb828dde.d: tests/snapshot_roundtrip.rs

/root/repo/target/release/deps/snapshot_roundtrip-e9348bc2bb828dde: tests/snapshot_roundtrip.rs

tests/snapshot_roundtrip.rs:
