/root/repo/target/release/deps/serde-e3a1f58f8fefe9f1.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e3a1f58f8fefe9f1.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e3a1f58f8fefe9f1.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
