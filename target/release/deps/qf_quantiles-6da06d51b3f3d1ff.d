/root/repo/target/release/deps/qf_quantiles-6da06d51b3f3d1ff.d: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs

/root/repo/target/release/deps/libqf_quantiles-6da06d51b3f3d1ff.rlib: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs

/root/repo/target/release/deps/libqf_quantiles-6da06d51b3f3d1ff.rmeta: crates/quantiles/src/lib.rs crates/quantiles/src/ddsketch.rs crates/quantiles/src/exact.rs crates/quantiles/src/gk.rs crates/quantiles/src/kll.rs crates/quantiles/src/qdigest.rs crates/quantiles/src/tdigest.rs

crates/quantiles/src/lib.rs:
crates/quantiles/src/ddsketch.rs:
crates/quantiles/src/exact.rs:
crates/quantiles/src/gk.rs:
crates/quantiles/src/kll.rs:
crates/quantiles/src/qdigest.rs:
crates/quantiles/src/tdigest.rs:
