/root/repo/target/release/deps/proptest-a4f57c55c6a9f909.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a4f57c55c6a9f909.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a4f57c55c6a9f909.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
