/root/repo/target/release/deps/qf_datasets-ccb0ca67ef1f9c9e.d: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs

/root/repo/target/release/deps/libqf_datasets-ccb0ca67ef1f9c9e.rlib: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs

/root/repo/target/release/deps/libqf_datasets-ccb0ca67ef1f9c9e.rmeta: crates/datasets/src/lib.rs crates/datasets/src/config.rs crates/datasets/src/generators.rs crates/datasets/src/trace.rs crates/datasets/src/values.rs crates/datasets/src/zipf.rs

crates/datasets/src/lib.rs:
crates/datasets/src/config.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/trace.rs:
crates/datasets/src/values.rs:
crates/datasets/src/zipf.rs:
