/root/repo/target/release/deps/serde_derive-70e1de14480e8258.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-70e1de14480e8258.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
