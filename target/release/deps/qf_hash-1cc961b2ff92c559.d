/root/repo/target/release/deps/qf_hash-1cc961b2ff92c559.d: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

/root/repo/target/release/deps/libqf_hash-1cc961b2ff92c559.rlib: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

/root/repo/target/release/deps/libqf_hash-1cc961b2ff92c559.rmeta: crates/hash/src/lib.rs crates/hash/src/family.rs crates/hash/src/key.rs crates/hash/src/murmur3.rs crates/hash/src/splitmix.rs crates/hash/src/wire.rs crates/hash/src/xxhash.rs

crates/hash/src/lib.rs:
crates/hash/src/family.rs:
crates/hash/src/key.rs:
crates/hash/src/murmur3.rs:
crates/hash/src/splitmix.rs:
crates/hash/src/wire.rs:
crates/hash/src/xxhash.rs:
