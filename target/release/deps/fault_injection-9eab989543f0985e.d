/root/repo/target/release/deps/fault_injection-9eab989543f0985e.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-9eab989543f0985e: tests/fault_injection.rs

tests/fault_injection.rs:
