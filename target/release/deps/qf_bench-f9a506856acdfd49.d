/root/repo/target/release/deps/qf_bench-f9a506856acdfd49.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqf_bench-f9a506856acdfd49.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqf_bench-f9a506856acdfd49.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
