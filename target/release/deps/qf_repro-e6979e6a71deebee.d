/root/repo/target/release/deps/qf_repro-e6979e6a71deebee.d: src/lib.rs

/root/repo/target/release/deps/libqf_repro-e6979e6a71deebee.rlib: src/lib.rs

/root/repo/target/release/deps/libqf_repro-e6979e6a71deebee.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
