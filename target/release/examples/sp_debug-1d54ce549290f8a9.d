/root/repo/target/release/examples/sp_debug-1d54ce549290f8a9.d: examples/sp_debug.rs

/root/repo/target/release/examples/sp_debug-1d54ce549290f8a9: examples/sp_debug.rs

examples/sp_debug.rs:
