/root/repo/target/release/examples/checkpoint_restore-65711c12e153142e.d: examples/checkpoint_restore.rs

/root/repo/target/release/examples/checkpoint_restore-65711c12e153142e: examples/checkpoint_restore.rs

examples/checkpoint_restore.rs:
