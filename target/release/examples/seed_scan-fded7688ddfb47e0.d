/root/repo/target/release/examples/seed_scan-fded7688ddfb47e0.d: crates/datasets/examples/seed_scan.rs

/root/repo/target/release/examples/seed_scan-fded7688ddfb47e0: crates/datasets/examples/seed_scan.rs

crates/datasets/examples/seed_scan.rs:
