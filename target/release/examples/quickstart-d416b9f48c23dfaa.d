/root/repo/target/release/examples/quickstart-d416b9f48c23dfaa.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d416b9f48c23dfaa: examples/quickstart.rs

examples/quickstart.rs:
