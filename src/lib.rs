//! # qf-repro — QuantileFilter reproduction umbrella crate
//!
//! Re-exports the whole workspace so examples and downstream users can
//! depend on a single crate:
//!
//! * [`quantile_filter`] — the QuantileFilter core (ICDE 2024 paper
//!   contribution): Qweight, candidate election, criteria flexibility.
//! * [`qf_sketch`] — Count sketch / Count-Min substrate with saturating
//!   narrow counters and stochastic rounding.
//! * [`qf_quantiles`] — GK, KLL, t-digest, DDSketch, exact oracle.
//! * [`qf_baselines`] — exact ground truth, naive dual-Csketch, and the
//!   SQUAD / SketchPolymer / HistSketch-style comparators.
//! * [`qf_datasets`] — internet-like / cloud-like / Zipf workload
//!   generators and trace IO.
//! * [`qf_eval`] — metrics, runners and per-figure experiment drivers.
//! * [`qf_pipeline`] — live concurrent ingest: hash router, bounded
//!   SPSC shard queues with backpressure, per-shard worker threads, and
//!   snapshot-under-load.
//! * [`qf_hash`] — xxHash64, MurmurHash3 and seeded hash families.
//!
//! See `examples/` for runnable scenarios and DESIGN.md / EXPERIMENTS.md
//! for the reproduction methodology and results.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use qf_baselines;
pub use qf_datasets;
pub use qf_eval;
pub use qf_hash;
pub use qf_pipeline;
pub use qf_quantiles;
pub use qf_sketch;
pub use quantile_filter;

/// Workspace version, for examples that print provenance.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
