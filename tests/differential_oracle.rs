//! Differential oracle: replay deterministic traces against an exact
//! per-key Qweight model and fail on *any* divergence between the
//! optimized structure and the paper's math (§III-A/B semantics).
//!
//! Three regimes:
//!
//! 1. **Exact** — integer item weights (δ = 0.75 ⇒ +3 above / −1 below,
//!    both exact in f64, so [`StochasticRounder`] never draws randomness)
//!    and a candidate part large enough that every key stays resident.
//!    The filter must then agree with a trivial per-key `i64` accumulator
//!    *bit for bit*: every query, every report, every reported Qweight,
//!    every delete.
//! 2. **Bounds** — fractional weights (δ = 0.6 ⇒ +1.5 above), where the
//!    rounder randomizes between floor and ceiling. The filter cannot be
//!    exact, but every query must stay inside the deterministic envelope
//!    `[n_above·1 − n_below, n_above·2 − n_below]`.
//! 3. **Invariant stress** — a mixed insert/delete/rollover workload over
//!    `QuantileFilter`, `EpochFilter`, and `MultiCriteriaFilter` with
//!    `check_invariants()` interleaved every few hundred operations, so
//!    structural drift surfaces with a named structure and relationship
//!    rather than a wrong report downstream.

use std::collections::HashMap;

use qf_repro::quantile_filter::epoch::{EpochFilter, FixedSize};
use qf_repro::quantile_filter::{
    CheckInvariants, Criteria, MultiCriteriaFilter, QuantileFilterBuilder,
};

/// Minimal deterministic RNG (SplitMix64) so the trace is reproducible
/// without pulling randomness into the oracle itself.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn criteria(epsilon: f64, delta: f64, threshold: f64) -> Criteria {
    match Criteria::new(epsilon, delta, threshold) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Regime 1: exact agreement with the per-key integer model.
// ---------------------------------------------------------------------------

#[test]
fn filter_matches_exact_qweight_model_on_integer_weights() {
    // δ = 0.75 ⇒ weight_above = 0.75/0.25 = 3.0 exactly (both representable),
    // so the stochastic rounder is deterministic: +3 above T, −1 at/below.
    // ε = 5 ⇒ report threshold ε/(1−δ) = 20.
    let c = criteria(5.0, 0.75, 100.0);
    assert_eq!(c.weight_above(), 3.0, "regime requires an exact weight");
    assert_eq!(c.report_threshold(), 20.0);

    // 24 keys over 256 buckets × 4 slots: every key stays candidate-resident
    // (verified at the end via stats), so the filter has no approximation
    // left and must agree with the model exactly.
    let mut qf = QuantileFilterBuilder::new(c)
        .candidate_buckets(256)
        .bucket_len(4)
        .vague_dims(3, 512)
        .seed(0xD1FF)
        .build();

    let keys: Vec<String> = (0..24).map(|i| format!("key-{i:02}")).collect();
    let mut model: HashMap<String, i64> = HashMap::new();
    let mut rng = Rng(42);
    let mut reports = 0u64;

    for step in 0..20_000u64 {
        let key = &keys[rng.below(24) as usize];
        // ~55% of items land above T so Qweights drift upward and reports
        // actually fire; the rest pull them back down (including negative).
        let above = rng.below(100) < 55;
        let value = if above { 150.0 } else { 50.0 };
        let delta: i64 = if above { 3 } else { -1 };

        let qw = model.entry(key.clone()).or_insert(0);
        *qw += delta;

        let report = qf.insert(key.as_str(), value);
        if *qw >= 20 {
            let r = match report {
                Some(r) => r,
                None => {
                    panic!("step {step}: model Qweight {qw} demands a report, filter gave none")
                }
            };
            assert_eq!(
                r.estimated_qweight, *qw,
                "step {step}: reported Qweight diverges from the exact model"
            );
            *qw = 0; // the filter resets a reported key's Qweight
            reports += 1;
        } else {
            assert!(
                report.is_none(),
                "step {step}: filter reported at model Qweight {qw} < 20"
            );
        }

        assert_eq!(
            qf.query(key.as_str()),
            *qw,
            "step {step}: query diverges from the exact model for {key}"
        );

        // Sporadic deletes: both sides drop the key's accumulated Qweight.
        if step % 977 == 0 && step > 0 {
            let victim = &keys[rng.below(24) as usize];
            let removed = qf.delete(victim.as_str());
            let expected = model.insert(victim.clone(), 0).unwrap_or(0);
            assert_eq!(
                removed, expected,
                "step {step}: delete returned a stale Qweight"
            );
        }

        if step % 500 == 0 {
            if let Err(v) = qf.check_invariants() {
                panic!("step {step}: invariant violation during exact replay: {v}");
            }
        }
    }

    assert!(
        reports > 50,
        "workload produced only {reports} reports — trace too tame"
    );
    let stats = qf.stats();
    assert_eq!(
        stats.vague_visits, 0,
        "exact regime assumed full candidate residency, but {} inserts spilled to the vague part",
        stats.vague_visits
    );
    assert_eq!(stats.reports, reports);
}

// ---------------------------------------------------------------------------
// Regime 2: fractional weights stay inside the floor/ceil envelope.
// ---------------------------------------------------------------------------

#[test]
fn fractional_weights_stay_inside_floor_ceil_envelope() {
    // δ = 0.6 ⇒ weight_above = 1.5: the rounder splits each above-item
    // between +1 and +2. ε is huge so no report ever resets a Qweight and
    // the envelope stays valid for the whole trace.
    let c = criteria(1e6, 0.6, 100.0);
    let mut qf = QuantileFilterBuilder::new(c)
        .candidate_buckets(256)
        .bucket_len(4)
        .vague_dims(3, 512)
        .seed(0xB07)
        .build();

    let keys: Vec<String> = (0..16).map(|i| format!("frac-{i:02}")).collect();
    // Per key: (items above T, items at/below T).
    let mut counts: HashMap<String, (i64, i64)> = HashMap::new();
    let mut rng = Rng(7);

    for step in 0..10_000u64 {
        let key = &keys[rng.below(16) as usize];
        let above = rng.below(100) < 70;
        let value = if above { 250.0 } else { 10.0 };
        let (n_above, n_below) = counts.entry(key.clone()).or_insert((0, 0));
        if above {
            *n_above += 1;
        } else {
            *n_below += 1;
        }

        let report = qf.insert(key.as_str(), value);
        assert!(report.is_none(), "step {step}: report despite ε = 1e6");

        let qw = qf.query(key.as_str());
        let lo = *n_above - *n_below; // every above-item rounded down to +1
        let hi = 2 * *n_above - *n_below; // every above-item rounded up to +2
        assert!(
            (lo..=hi).contains(&qw),
            "step {step}: query {qw} for {key} outside envelope [{lo}, {hi}] \
             (n_above {n_above}, n_below {n_below})"
        );
    }

    assert_eq!(
        qf.stats().vague_visits,
        0,
        "envelope assumed candidate residency"
    );
}

// ---------------------------------------------------------------------------
// Regime 3: invariants hold across every container under a mixed workload.
// ---------------------------------------------------------------------------

#[test]
fn invariants_hold_under_mixed_workload_across_containers() {
    let c = criteria(5.0, 0.9, 100.0);
    // Deliberately tiny candidate part so the vague path, elections, and
    // exchanges all run hot.
    let mut qf = QuantileFilterBuilder::new(c)
        .candidate_buckets(8)
        .bucket_len(2)
        .vague_dims(3, 128)
        .seed(3)
        .build();
    let mut epoch: EpochFilter<i8> = EpochFilter::new(c, 16 * 1024, 750, 5, FixedSize);
    let inner = QuantileFilterBuilder::new(c)
        .candidate_buckets(16)
        .bucket_len(2)
        .vague_dims(3, 128)
        .seed(9)
        .build();
    let mut multi = MultiCriteriaFilter::new(inner, vec![c, criteria(2.0, 0.5, 50.0)]);

    let mut rng = Rng(0xACE);
    for step in 0..6_000u64 {
        let key = format!("k{}", rng.below(300));
        let value = rng.below(200) as f64;
        qf.insert(key.as_str(), value);
        epoch.insert(key.as_str(), value);
        multi.insert(&key, value);
        if step % 37 == 0 {
            qf.delete(key.as_str());
            multi.delete(&key);
        }

        if step % 250 == 0 {
            if let Err(v) = qf.check_invariants() {
                panic!("step {step}: QuantileFilter violation: {v}");
            }
            if let Err(v) = epoch.check_invariants() {
                panic!("step {step}: EpochFilter violation: {v}");
            }
            if let Err(v) = multi.check_invariants() {
                panic!("step {step}: MultiCriteriaFilter violation: {v}");
            }
        }
    }

    assert!(
        epoch.epochs_completed() >= 7,
        "epoch filter should have rolled over"
    );
    assert!(
        qf.stats().vague_visits > 0,
        "stress regime should exercise the vague path"
    );
}
