//! Agreement tests: every approximate detector must converge to the exact
//! detector's behaviour when given effectively unlimited resources, and
//! their report *timing* must respect Definition 4's reset semantics.

use qf_repro::qf_baselines::{
    ExactDetector, HistSketchDetector, NaiveDetector, OutstandingDetector, QfDetector,
    SquadDetector,
};
use qf_repro::quantile_filter::Criteria;
use rand::prelude::*;

fn crit() -> Criteria {
    Criteria::new(5.0, 0.9, 100.0).unwrap()
}

/// A mixed single-key value pattern exercising crossings and resets.
fn pattern(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.4) {
                rng.gen_range(150.0..900.0)
            } else {
                rng.gen_range(1.0..90.0)
            }
        })
        .collect()
}

#[test]
fn qf_agrees_with_exact_on_isolated_keys() {
    // With ample memory and few keys, QF is exact: identical report
    // sequence, item by item.
    let mut qf = QfDetector::paper_default(crit(), 1 << 20, 1);
    let mut exact = ExactDetector::new(crit());
    for seed in 0..20u64 {
        for v in pattern(seed, 500) {
            let key = seed;
            assert_eq!(
                qf.insert(key, v),
                exact.insert(key, v),
                "divergence on key {key}"
            );
        }
    }
}

#[test]
fn naive_agrees_with_exact_on_isolated_keys() {
    // The naive dual-CS solution is also exact when collision-free: its
    // report rule F_b ≤ ⌊(F_a+F_b)·δ − ε⌋ is Definition 4 restated.
    let mut naive = NaiveDetector::new(crit(), 1 << 22, 2);
    let mut exact = ExactDetector::new(crit());
    for seed in 100..110u64 {
        for v in pattern(seed, 500) {
            assert_eq!(
                naive.insert(seed, v),
                exact.insert(seed, v),
                "divergence on key {seed}"
            );
        }
    }
}

#[test]
fn squad_matches_exact_report_count_within_gk_error() {
    // SQUAD's GK summary introduces ε_GK = 1% rank error; over a long hot
    // key its total report count must be within a few of exact.
    let mut squad = SquadDetector::new(crit(), 1 << 20, 3);
    let mut exact = ExactDetector::new(crit());
    let mut squad_reports = 0u32;
    let mut exact_reports = 0u32;
    for v in pattern(7, 3_000) {
        if squad.insert(5, v) {
            squad_reports += 1;
        }
        if exact.insert(5, v) {
            exact_reports += 1;
        }
    }
    let diff = squad_reports.abs_diff(exact_reports);
    assert!(
        diff <= exact_reports / 5 + 2,
        "squad {squad_reports} vs exact {exact_reports}"
    );
}

#[test]
fn histsketch_bucket_quantization_bounds_divergence() {
    // HistSketch quantizes values into power-of-two buckets, so its
    // report decisions match exact detection up to bucket-boundary
    // effects. Use values far from the T=100 boundary to eliminate them —
    // then behaviour must be identical.
    let c = crit();
    let mut hist = HistSketchDetector::new(c, 1 << 20, 4);
    let mut exact = ExactDetector::new(c);
    let mut rng = StdRng::seed_from_u64(9);
    let mut hist_r = 0;
    let mut exact_r = 0;
    for _ in 0..2_000 {
        // below: 1..64 (buckets ≤ 64-rep < 100); above: 256..900.
        let v = if rng.gen_bool(0.4) {
            rng.gen_range(256.0..900.0)
        } else {
            rng.gen_range(1.0..64.0)
        };
        if hist.insert(11, v) {
            hist_r += 1;
        }
        if exact.insert(11, v) {
            exact_r += 1;
        }
    }
    assert_eq!(hist_r, exact_r, "bucket-safe values must agree exactly");
}

#[test]
fn all_detectors_respect_reset_semantics() {
    // After any report, an immediate quiet stretch must not re-report
    // (the value set was reset — Definition 4's anti-spam property).
    let c = crit();
    let detectors: Vec<Box<dyn OutstandingDetector>> = vec![
        Box::new(QfDetector::paper_default(c, 1 << 18, 5)),
        Box::new(NaiveDetector::new(c, 1 << 18, 5)),
        Box::new(SquadDetector::new(c, 1 << 18, 5)),
        Box::new(HistSketchDetector::new(c, 1 << 18, 5)),
    ];
    for mut det in detectors {
        let name = det.name();
        // Drive to a report.
        let mut reported = false;
        for _ in 0..100 {
            if det.insert(1, 500.0) {
                reported = true;
                break;
            }
        }
        assert!(reported, "{name}: never reported");
        // Quiet values immediately after: no report may fire.
        for i in 0..50 {
            assert!(
                !det.insert(1, 5.0),
                "{name}: re-reported during quiet stretch at {i}"
            );
        }
    }
}

#[test]
fn report_rate_bounded_by_epsilon() {
    // Paper: "reports will occur less often than every ε values". Check
    // the exact detector and QF over a hot key.
    let eps = 10.0;
    let c = Criteria::new(eps, 0.9, 100.0).unwrap();
    let mut exact = ExactDetector::new(c);
    let mut last_report: Option<usize> = None;
    for i in 0..2_000 {
        if exact.insert(3, 500.0) {
            if let Some(prev) = last_report {
                assert!(
                    i - prev >= eps as usize,
                    "reports {prev} and {i} closer than epsilon"
                );
            }
            last_report = Some(i);
        }
    }
    assert!(last_report.is_some());
}
