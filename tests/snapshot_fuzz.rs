//! Snapshot decoder fuzzing: the restore path must be *total* — any byte
//! sequence, however hostile, produces `Err`, never a panic, never an
//! out-of-bounds read, and never a silently-wrong filter.
//!
//! Three attack surfaces, each across all three container tags:
//!
//! * **Arbitrary bytes** — decoding random garbage fails cleanly.
//! * **Mutated valid snapshots** — flip one byte of a genuine snapshot;
//!   the envelope (magic, version, length, digest, checksum) must catch
//!   it. Mutations that the decoder *accepts* are allowed only if they
//!   leave the restored filter equal to the original (the flipped byte
//!   was outside every validated field — impossible with the trailing
//!   checksum, so acceptance is a test failure here).
//! * **Appended garbage** — the self-delimiting envelope rejects trailing
//!   bytes (the crash-recovery double-write case).
//!
//! Runs under the vendored deterministic `proptest`; case counts stay
//! modest so the suite is Miri-friendly.

use proptest::prelude::*;
use proptest::{collection, prop_assert, proptest};

use qf_repro::quantile_filter::epoch::{EpochFilter, FixedSize};
use qf_repro::quantile_filter::{
    Criteria, MultiCriteriaFilter, QuantileFilter, QuantileFilterBuilder,
};

fn criteria() -> Criteria {
    match Criteria::new(5.0, 0.9, 100.0) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e}"),
    }
}

fn seeded_filter(seed: u64) -> QuantileFilter {
    let mut qf = QuantileFilterBuilder::new(criteria())
        .candidate_buckets(16)
        .bucket_len(2)
        .vague_dims(3, 64)
        .seed(seed)
        .build();
    for i in 0..200u64 {
        let key = format!("k{}", i % 37);
        qf.insert(key.as_str(), (i % 200) as f64);
    }
    qf
}

/// One genuine snapshot per container tag, with some accumulated state so
/// the config/state sections are non-trivial.
fn valid_snapshots() -> Vec<(&'static str, Vec<u8>)> {
    let filter = seeded_filter(11).snapshot();

    let mut ef: EpochFilter<i8> = EpochFilter::new(criteria(), 8 * 1024, 100, 7, FixedSize);
    for i in 0..250u64 {
        let key = format!("e{}", i % 23);
        ef.insert(key.as_str(), (i % 150) as f64);
    }
    let epoch = ef.snapshot();

    let mc = MultiCriteriaFilter::new(
        seeded_filter(13),
        vec![
            criteria(),
            match Criteria::new(2.0, 0.5, 50.0) {
                Ok(c) => c,
                Err(e) => panic!("criteria: {e}"),
            },
        ],
    );
    let multi = mc.snapshot();

    vec![("filter", filter), ("epoch", epoch), ("multi", multi)]
}

/// Decode `bytes` as every container type; return the tags that accepted.
fn restore_all(bytes: &[u8]) -> Vec<&'static str> {
    let mut accepted = Vec::new();
    if QuantileFilter::<qf_repro::qf_sketch::CountSketch<i8>>::restore(bytes).is_ok() {
        accepted.push("filter");
    }
    if EpochFilter::<i8, FixedSize>::restore(bytes, FixedSize).is_ok() {
        accepted.push("epoch");
    }
    if MultiCriteriaFilter::<qf_repro::qf_sketch::CountSketch<i8>>::restore(bytes).is_ok() {
        accepted.push("multi");
    }
    accepted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary byte soup never panics and never restores.
    #[test]
    fn arbitrary_bytes_never_restore(bytes in collection::vec(0u8..=255u8, 0..256usize)) {
        let accepted = restore_all(&bytes);
        prop_assert!(
            accepted.is_empty(),
            "random bytes decoded as {accepted:?}"
        );
    }

    /// A random prefix of random bytes grafted onto the real magic still
    /// fails cleanly (exercises the post-magic header parsing).
    #[test]
    fn magic_plus_garbage_never_restores(tail in collection::vec(0u8..=255u8, 0..128usize)) {
        let mut bytes = b"QFSN".to_vec();
        bytes.extend_from_slice(&tail);
        let accepted = restore_all(&bytes);
        prop_assert!(accepted.is_empty(), "magic+garbage decoded as {accepted:?}");
    }

    /// Single-byte corruption of a genuine snapshot is always detected.
    #[test]
    fn mutated_snapshots_never_restore(
        which in 0usize..3,
        pos_seed in 0usize..100_000,
        xor in 1u8..=255u8,
    ) {
        let snapshots = valid_snapshots();
        let (name, original) = &snapshots[which];
        let pos = pos_seed % original.len();
        let mut mutated = original.clone();
        mutated[pos] ^= xor; // xor != 0, so the byte really changes
        let accepted = restore_all(&mutated);
        prop_assert!(
            accepted.is_empty(),
            "{name} snapshot with byte {pos} xor {xor:#04x} still decoded as {accepted:?}"
        );
    }

    /// Truncation at any point is always detected.
    #[test]
    fn truncated_snapshots_never_restore(which in 0usize..3, keep_seed in 0usize..100_000) {
        let snapshots = valid_snapshots();
        let (name, original) = &snapshots[which];
        let keep = keep_seed % original.len(); // strictly shorter than full
        let accepted = restore_all(&original[..keep]);
        prop_assert!(
            accepted.is_empty(),
            "{name} snapshot truncated to {keep} bytes decoded as {accepted:?}"
        );
    }

    /// Appended garbage is rejected by the self-delimiting envelope with
    /// the dedicated trailing-garbage error.
    #[test]
    fn appended_garbage_never_restores(
        which in 0usize..3,
        junk in collection::vec(0u8..=255u8, 1..64usize),
    ) {
        let snapshots = valid_snapshots();
        let (name, original) = &snapshots[which];
        let mut padded = original.clone();
        padded.extend_from_slice(&junk);

        let err = match which {
            0 => QuantileFilter::<qf_repro::qf_sketch::CountSketch<i8>>::restore(&padded).err(),
            1 => EpochFilter::<i8, FixedSize>::restore(&padded, FixedSize).err(),
            _ => MultiCriteriaFilter::<qf_repro::qf_sketch::CountSketch<i8>>::restore(&padded).err(),
        };
        let err = match err {
            Some(e) => e,
            None => panic!("{name} snapshot accepted {} bytes of trailing garbage", junk.len()),
        };
        let msg = err.to_string();
        prop_assert!(
            msg.contains("trailing garbage"),
            "{name}: wrong rejection reason for appended junk: {msg}"
        );
    }
}

/// Sanity anchor for the fuzz properties: the unmutated snapshots *do*
/// restore, so the rejections above are discriminating, not vacuous.
#[test]
fn unmutated_snapshots_restore() {
    let snapshots = valid_snapshots();
    assert!(
        QuantileFilter::<qf_repro::qf_sketch::CountSketch<i8>>::restore(&snapshots[0].1).is_ok()
    );
    assert!(EpochFilter::<i8, FixedSize>::restore(&snapshots[1].1, FixedSize).is_ok());
    assert!(
        MultiCriteriaFilter::<qf_repro::qf_sketch::CountSketch<i8>>::restore(&snapshots[2].1)
            .is_ok()
    );
}
