//! Dataset → trace file → reload → identical detection results.

use qf_repro::qf_baselines::QfDetector;
use qf_repro::qf_datasets::{internet_like, trace, InternetConfig};
use qf_repro::qf_eval::run_detector;
use qf_repro::quantile_filter::Criteria;

#[test]
fn detection_identical_after_trace_roundtrip() {
    let mut cfg = InternetConfig::tiny();
    cfg.items = 20_000;
    let dataset = internet_like(&cfg);
    let criteria = Criteria::new(30.0, 0.95, dataset.threshold).unwrap();

    let dir = std::env::temp_dir().join("qf_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("internet.qftr");
    trace::write_file(&path, &dataset.items, dataset.threshold).unwrap();

    let (loaded, threshold) = trace::read_file(&path).unwrap();
    assert_eq!(threshold, dataset.threshold);
    assert_eq!(loaded.len(), dataset.items.len());

    let mut det_a = QfDetector::paper_default(criteria, 64 * 1024, 5);
    let mut det_b = QfDetector::paper_default(criteria, 64 * 1024, 5);
    let run_a = run_detector(&mut det_a, &dataset.items);
    let run_b = run_detector(&mut det_b, &loaded);
    assert_eq!(run_a.reported, run_b.reported);
    assert_eq!(run_a.report_events, run_b.report_events);

    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_export_row_count() {
    let mut cfg = InternetConfig::tiny();
    cfg.items = 1_000;
    let dataset = internet_like(&cfg);
    let mut out = Vec::new();
    trace::write_csv(&mut out, &dataset.items).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 1 + dataset.items.len());
}
