//! End-to-end detection accuracy across crates: generators → detectors →
//! metrics, checking the paper's qualitative claims at test scale.

use qf_repro::qf_baselines::{
    HistSketchDetector, NaiveDetector, OutstandingDetector, QfDetector, SketchPolymerDetector,
    SquadDetector,
};
use qf_repro::qf_datasets::{
    cloud_like, internet_like, zipf_dataset, CloudConfig, InternetConfig, ZipfConfig,
};
use qf_repro::qf_eval::{ground_truth, run_detector, Accuracy};
use qf_repro::quantile_filter::Criteria;

fn criteria_for(threshold: f64) -> Criteria {
    Criteria::new(30.0, 0.95, threshold).unwrap()
}

#[test]
fn qf_high_accuracy_on_internet_like_with_ample_memory() {
    let dataset = internet_like(&InternetConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);
    assert!(!truth.is_empty(), "workload must contain outstanding keys");

    let mut det = QfDetector::paper_default(criteria, 256 * 1024, 7);
    let result = run_detector(&mut det, &dataset.items);
    let acc = Accuracy::of(&result.reported, &truth);
    assert!(acc.f1() > 0.95, "QF F1 {acc} too low with ample memory");
}

#[test]
fn qf_precision_stays_high_under_tight_memory() {
    // §V-B: "our algorithm maintains a consistently high level of
    // precision irrespective of the space constraints".
    let dataset = internet_like(&InternetConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);
    let mut det = QfDetector::paper_default(criteria, 2 * 1024, 8);
    let result = run_detector(&mut det, &dataset.items);
    let acc = Accuracy::of(&result.reported, &truth);
    assert!(
        acc.precision() > 0.8,
        "QF precision must stay high at 2KB: {acc}"
    );
}

#[test]
fn qf_recall_improves_with_memory() {
    let dataset = internet_like(&InternetConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);
    let mut recalls = Vec::new();
    for memory in [1 << 11, 1 << 14, 1 << 18] {
        let mut det = QfDetector::paper_default(criteria, memory, 9);
        let result = run_detector(&mut det, &dataset.items);
        recalls.push(Accuracy::of(&result.reported, &truth).recall());
    }
    assert!(
        recalls[2] >= recalls[0],
        "recall must improve with memory: {recalls:?}"
    );
    assert!(recalls[2] > 0.9, "recall at 256KB too low: {recalls:?}");
}

#[test]
fn qf_beats_fixed_size_baselines_at_small_memory() {
    // The headline claim at test scale: at a small fixed budget QF's F1
    // tops every comparator that actually respects the budget. (The
    // growing structures — HistSketch, and SQUAD's GK summaries — are
    // compared at equal *live* bytes below.)
    let cfg = InternetConfig {
        items: 100_000,
        keys: 8_000,
        ..InternetConfig::default()
    };
    let dataset = internet_like(&cfg);
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);
    let memory = 4 * 1024;

    let mut f1s: Vec<(String, f64)> = Vec::new();
    let mut detectors: Vec<Box<dyn OutstandingDetector>> = vec![
        Box::new(QfDetector::paper_default(criteria, memory, 10)),
        Box::new(SquadDetector::new(criteria, memory, 10)),
        Box::new(SketchPolymerDetector::new(criteria, memory, 10)),
        Box::new(NaiveDetector::new(criteria, memory, 10)),
    ];
    for det in detectors.iter_mut() {
        let name = det.name();
        let result = run_detector(det.as_mut(), &dataset.items);
        f1s.push((name, Accuracy::of(&result.reported, &truth).f1()));
    }
    let qf = f1s[0].1;
    for (name, f1) in &f1s[1..] {
        assert!(
            qf >= *f1,
            "QF (F1={qf:.3}) must beat {name} (F1={f1:.3}); all: {f1s:?}"
        );
    }
}

#[test]
fn qf_matches_histsketch_at_equal_live_bytes() {
    // HistSketch's heavy part grows past any nominal budget; the fair
    // comparison gives QF the same number of *live* bytes HistSketch
    // actually consumed.
    let dataset = internet_like(&InternetConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);

    let mut hist = HistSketchDetector::new(criteria, 4 * 1024, 10);
    let hist_run = run_detector(&mut hist, &dataset.items);
    let hist_f1 = Accuracy::of(&hist_run.reported, &truth).f1();

    let mut qf = QfDetector::paper_default(criteria, hist_run.memory_bytes, 10);
    let qf_run = run_detector(&mut qf, &dataset.items);
    let qf_f1 = Accuracy::of(&qf_run.reported, &truth).f1();

    assert!(
        qf_f1 >= hist_f1 - 0.02,
        "QF F1 {qf_f1:.3} at {} live bytes must match HistSketch {hist_f1:.3}",
        hist_run.memory_bytes
    );
}

#[test]
fn cloud_workload_detection_works() {
    let dataset = cloud_like(&CloudConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);
    let mut det = QfDetector::paper_default(criteria, 128 * 1024, 11);
    let result = run_detector(&mut det, &dataset.items);
    let acc = Accuracy::of(&result.reported, &truth);
    assert!(acc.f1() > 0.8, "cloud F1 {acc}");
}

#[test]
fn zipf_workload_detection_works() {
    let dataset = zipf_dataset(&ZipfConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);
    let mut det = QfDetector::paper_default(criteria, 128 * 1024, 12);
    let result = run_detector(&mut det, &dataset.items);
    let acc = Accuracy::of(&result.reported, &truth);
    assert!(acc.f1() > 0.7, "zipf F1 {acc}");
}

#[test]
fn histsketch_memory_blows_up_on_cloud() {
    // §V-B: HistSketch "typically demands around 1GB" on the key-rich
    // cloud data irrespective of configuration — at test scale, its live
    // usage must far exceed its nominal budget.
    let dataset = cloud_like(&CloudConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let budget = 8 * 1024;
    let mut det = HistSketchDetector::new(criteria, budget, 13);
    let result = run_detector(&mut det, &dataset.items);
    assert!(
        result.memory_bytes > budget * 4,
        "HistSketch live bytes {} should dwarf budget {budget}",
        result.memory_bytes
    );
}

#[test]
fn sketchpolymer_low_memory_low_precision_high_recall() {
    // §V-B: "below a certain threshold, SketchPolymer becomes inefficient,
    // broadly misidentifying keys as outliers → very low precision but
    // high recall".
    let dataset = internet_like(&InternetConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let truth = ground_truth(&dataset.items, &criteria);
    let mut det = SketchPolymerDetector::new(criteria, 1024, 14);
    let result = run_detector(&mut det, &dataset.items);
    let acc = Accuracy::of(&result.reported, &truth);
    assert!(
        acc.recall() > 0.8,
        "tiny-memory SketchPolymer should over-report: {acc}"
    );
    assert!(
        acc.precision() < 0.5,
        "tiny-memory SketchPolymer precision should collapse: {acc}"
    );
}

#[test]
fn qf_faster_than_squad_at_comparable_accuracy() {
    // §V-C shape: QF's integrated insert+detect outruns SQUAD's
    // insert+query loop.
    let dataset = internet_like(&InternetConfig::tiny());
    let criteria = criteria_for(dataset.threshold);
    let memory = 256 * 1024;
    let mut qf = QfDetector::paper_default(criteria, memory, 15);
    let mut squad = SquadDetector::new(criteria, memory, 15);
    let qf_run = run_detector(&mut qf, &dataset.items);
    let squad_run = run_detector(&mut squad, &dataset.items);
    assert!(
        qf_run.mops() > squad_run.mops(),
        "QF {:.2} MOPS must beat SQUAD {:.2} MOPS",
        qf_run.mops(),
        squad_run.mops()
    );
}
