//! Fault-injection harness: damaged snapshots and poisoned value streams
//! must surface as *typed errors* — never a panic, never silent
//! corruption.
//!
//! Faults covered:
//! * single-bit flips at every position of a snapshot
//! * truncation at every length
//! * format version skew
//! * wrong-container restores (epoch bytes into a bare filter, ...)
//! * random garbage buffers
//! * NaN / ±∞ / subnormal-adjacent adversarial value streams

use qf_repro::qf_hash::SplitMix64;
use qf_repro::qf_sketch::CountSketch;
use qf_repro::quantile_filter::epoch::{EpochFilter, FixedSize};
use qf_repro::quantile_filter::snapshot::SNAPSHOT_VERSION;
use qf_repro::quantile_filter::{
    Criteria, MultiCriteriaFilter, QfError, QuantileFilter, QuantileFilterBuilder,
};

fn crit() -> Criteria {
    Criteria::new(5.0, 0.9, 100.0).unwrap()
}

/// A small but fully-populated filter: candidate entries, vague-part mass,
/// advanced RNG states, non-zero stats.
fn warm_filter(seed: u64) -> QuantileFilter {
    let mut qf = QuantileFilterBuilder::new(crit())
        .candidate_buckets(8)
        .bucket_len(2)
        .vague_dims(2, 32)
        .seed(seed)
        .build();
    for k in 0u64..200 {
        qf.insert(&k, if k % 7 == 0 { 500.0 } else { 10.0 });
    }
    qf
}

#[test]
fn every_bit_flip_yields_typed_error() {
    let bytes = warm_filter(1).snapshot();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut dam = bytes.clone();
            dam[byte] ^= 1 << bit;
            match QuantileFilter::<CountSketch<i8>>::restore(&dam) {
                Err(QfError::CorruptSnapshot { .. }) | Err(QfError::VersionMismatch { .. }) => {}
                Err(other) => panic!("unexpected error kind at byte {byte}: {other:?}"),
                Ok(_) => panic!("flip at byte {byte} bit {bit} silently accepted"),
            }
        }
    }
}

#[test]
fn every_truncation_yields_typed_error() {
    let bytes = warm_filter(2).snapshot();
    for len in 0..bytes.len() {
        assert!(
            matches!(
                QuantileFilter::<CountSketch<i8>>::restore(&bytes[..len]),
                Err(QfError::CorruptSnapshot { .. })
            ),
            "truncation to {len} bytes not rejected"
        );
    }
}

#[test]
fn version_skew_is_version_mismatch_not_corruption() {
    let mut bytes = warm_filter(3).snapshot();
    // 1 is the retired pre-length-field format; the rest are futures.
    for future in [1u32, 7, u32::MAX] {
        bytes[4..8].copy_from_slice(&future.to_le_bytes());
        assert_eq!(
            QuantileFilter::<CountSketch<i8>>::restore(&bytes).unwrap_err(),
            QfError::VersionMismatch {
                found: future,
                supported: SNAPSHOT_VERSION
            }
        );
    }
}

#[test]
fn wrong_container_restores_rejected() {
    let qf = warm_filter(4);
    let ef: EpochFilter = EpochFilter::new(crit(), 4096, 100, 4, FixedSize);
    let mc = MultiCriteriaFilter::new(warm_filter(5), vec![crit()]);

    // Filter bytes into the two wrappers, wrapper bytes into the filter,
    // and wrapper bytes into each other: all six cross-restores must fail.
    let filter_bytes = qf.snapshot();
    let epoch_bytes = ef.snapshot();
    let multi_bytes = mc.snapshot();

    assert!(EpochFilter::<i8, FixedSize>::restore(&filter_bytes, FixedSize).is_err());
    assert!(MultiCriteriaFilter::<CountSketch<i8>>::restore(&filter_bytes).is_err());
    assert!(QuantileFilter::<CountSketch<i8>>::restore(&epoch_bytes).is_err());
    assert!(MultiCriteriaFilter::<CountSketch<i8>>::restore(&epoch_bytes).is_err());
    assert!(QuantileFilter::<CountSketch<i8>>::restore(&multi_bytes).is_err());
    assert!(EpochFilter::<i8, FixedSize>::restore(&multi_bytes, FixedSize).is_err());
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(0xFA11);
    for len in [0usize, 1, 8, 21, 28, 29, 64, 300, 4096] {
        for _ in 0..50 {
            let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            assert!(QuantileFilter::<CountSketch<i8>>::restore(&garbage).is_err());
        }
    }
}

#[test]
fn garbage_behind_valid_header_never_panics() {
    // Keep the 4-byte magic and valid version so decoding proceeds past
    // the header checks into checksum validation.
    let mut rng = SplitMix64::new(0xFA12);
    for _ in 0..200 {
        let mut bytes = b"QFSN".to_vec();
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let tail = (rng.next_u64() % 600) as usize;
        bytes.extend((0..tail).map(|_| rng.next_u64() as u8));
        assert!(QuantileFilter::<CountSketch<i8>>::restore(&bytes).is_err());
    }
}

#[test]
fn poisoned_stream_detection_matches_clean_stream() {
    // Interleave NaN/±∞ poison into an otherwise identical stream: the
    // poisoned filter must emit exactly the clean filter's reports and
    // finish with identical per-key state — i.e. zero silent corruption.
    let poisons = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    let mut clean = warm_filter(6);
    let mut poisoned = warm_filter(6);
    let mut rng = SplitMix64::new(0x0150);
    for i in 0..5_000u64 {
        let key = i % 41;
        let value = if key == 3 { 400.0 } else { 20.0 };
        if rng.next_u64().is_multiple_of(4) {
            let p = poisons[(rng.next_u64() % 3) as usize];
            assert!(poisoned.insert(&key, p).is_none(), "poison reported");
        }
        assert_eq!(
            clean.insert(&key, value),
            poisoned.insert(&key, value),
            "item {i}"
        );
    }
    for k in 0u64..41 {
        assert_eq!(clean.query(&k), poisoned.query(&k), "key {k} corrupted");
    }
    assert_eq!(clean.stats().reports, poisoned.stats().reports);
    // And the end states snapshot to identical bytes.
    assert_eq!(clean.snapshot(), poisoned.snapshot());
}

#[test]
fn try_insert_surfaces_poison_as_typed_error() {
    let mut qf = warm_filter(7);
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        match qf.try_insert(&1u64, bad) {
            Err(QfError::NonFiniteValue { value }) => {
                assert!(value.is_nan() || value.is_infinite());
            }
            other => panic!("expected NonFiniteValue for {bad}, got {other:?}"),
        }
    }
    // The rejections left the filter usable.
    assert!(qf.try_insert(&1u64, 50.0).unwrap().is_none());
}

#[test]
fn wrappers_drop_poison_without_panic() {
    let mut ef: EpochFilter = EpochFilter::new(crit(), 8 * 1024, 10, 8, FixedSize);
    for _ in 0..50 {
        assert!(ef.insert(&1u64, f64::NAN).is_none());
    }
    // Dropped items must not consume epoch capacity.
    assert_eq!(ef.epochs_completed(), 0);
    assert_eq!(ef.remaining_in_epoch(), 10);

    let mut mc = MultiCriteriaFilter::new(warm_filter(9), vec![crit()]);
    for _ in 0..50 {
        assert!(mc.insert(&1u64, f64::NEG_INFINITY).is_empty());
    }
}

#[test]
fn extreme_finite_values_are_legal() {
    // f64::MAX / MIN_POSITIVE / −MAX are finite and must flow through the
    // normal Qweight paths, not be confused with poison.
    let mut qf = warm_filter(10);
    assert!(qf.try_insert(&2u64, f64::MAX).is_ok());
    assert!(qf.try_insert(&2u64, f64::MIN_POSITIVE).is_ok());
    assert!(qf.try_insert(&2u64, -f64::MAX).is_ok());
}

#[test]
fn restored_filter_snapshot_is_idempotent() {
    // snapshot(restore(snapshot(f))) == snapshot(f): nothing is lost or
    // invented across a round trip.
    let qf = warm_filter(11);
    let first = qf.snapshot();
    let restored: QuantileFilter = QuantileFilter::restore(&first).unwrap();
    assert_eq!(restored.snapshot(), first);
}
