//! Crash-safety acceptance tests: a filter restored from a snapshot must
//! behave *byte-identically* to the original from the resume point on —
//! same reports, same order, same estimated Qweights — across both vague
//! sketch families, all three election strategies, and the wrapper
//! containers.

use proptest::proptest;
use qf_repro::qf_datasets::{internet_like, InternetConfig};
use qf_repro::qf_sketch::{CountMinSketch, CountSketch};
use qf_repro::quantile_filter::epoch::{EpochFilter, GrowOnPressure};
use qf_repro::quantile_filter::{
    Criteria, ElectionStrategy, MultiCriteriaFilter, QuantileFilter, QuantileFilterBuilder, Report,
};

fn crit() -> Criteria {
    Criteria::new(5.0, 0.9, 100.0).unwrap()
}

fn cs_filter(strategy: ElectionStrategy, seed: u64) -> QuantileFilter {
    QuantileFilterBuilder::new(crit())
        .candidate_buckets(16)
        .bucket_len(3)
        .vague_dims(3, 128)
        .strategy(strategy)
        .seed(seed)
        .build()
}

fn cms_filter(strategy: ElectionStrategy, seed: u64) -> QuantileFilter<CountMinSketch<i16>> {
    QuantileFilterBuilder::new(crit())
        .candidate_buckets(16)
        .bucket_len(3)
        .strategy(strategy)
        .seed(seed)
        .build_with_sketch(CountMinSketch::new(3, 128, seed ^ 0xC5))
}

/// Feed `suffix` to the live filter and to its snapshot-restored twin;
/// every insert must return the identical Option<Report>.
fn assert_identical_resume<S>(mut live: QuantileFilter<S>, suffix: &[(u64, f64)])
where
    S: qf_repro::qf_sketch::WeightSketch + qf_repro::qf_sketch::snapshot::SketchState,
{
    let mut restored: QuantileFilter<S> = QuantileFilter::restore(&live.snapshot()).unwrap();
    for (i, &(key, value)) in suffix.iter().enumerate() {
        assert_eq!(
            live.insert(&key, value),
            restored.insert(&key, value),
            "divergence at suffix item {i}"
        );
    }
    assert_eq!(live.snapshot(), restored.snapshot(), "end states differ");
}

proptest! {
    /// snapshot → restore → insert(suffix) is report-identical for every
    /// election strategy with a CountSketch vague part.
    #[test]
    fn prop_cs_restore_resumes_identically(
        seed in 0u64..512,
        prefix in proptest::collection::vec((0u64..64, -50.0f64..600.0), 0..300),
        suffix in proptest::collection::vec((0u64..64, -50.0f64..600.0), 1..300),
    ) {
        for strategy in ElectionStrategy::ALL {
            let mut qf = cs_filter(strategy, seed);
            for &(k, v) in &prefix {
                qf.insert(&k, v);
            }
            assert_identical_resume(qf, &suffix);
        }
    }

    /// The same property with a CountMinSketch vague part.
    #[test]
    fn prop_cms_restore_resumes_identically(
        seed in 0u64..512,
        prefix in proptest::collection::vec((0u64..64, -50.0f64..600.0), 0..300),
        suffix in proptest::collection::vec((0u64..64, -50.0f64..600.0), 1..300),
    ) {
        for strategy in ElectionStrategy::ALL {
            let mut qf = cms_filter(strategy, seed);
            for &(k, v) in &prefix {
                qf.insert(&k, v);
            }
            assert_identical_resume(qf, &suffix);
        }
    }
}

/// The headline acceptance test: on an internet-like trace, a filter
/// snapshotted mid-stream and restored must emit a byte-identical report
/// sequence over the remainder of the trace.
#[test]
fn internet_trace_reports_identical_after_restore() {
    let mut cfg = InternetConfig::tiny();
    cfg.items = 60_000;
    let dataset = internet_like(&cfg);
    let criteria = Criteria::new(30.0, 0.95, dataset.threshold).unwrap();
    let split = dataset.items.len() / 2;

    let mut live: QuantileFilter = QuantileFilterBuilder::new(criteria)
        .memory_budget_bytes(32 * 1024)
        .seed(0xCAFE)
        .build();
    for item in &dataset.items[..split] {
        live.insert(&item.key, item.value);
    }

    // Simulated crash: only the snapshot bytes survive.
    let checkpoint = live.snapshot();
    let mut recovered: QuantileFilter = QuantileFilter::restore(&checkpoint).unwrap();

    let mut live_reports: Vec<(usize, u64, Report)> = Vec::new();
    let mut recovered_reports: Vec<(usize, u64, Report)> = Vec::new();
    for (i, item) in dataset.items[split..].iter().enumerate() {
        if let Some(r) = live.insert(&item.key, item.value) {
            live_reports.push((i, item.key, r));
        }
        if let Some(r) = recovered.insert(&item.key, item.value) {
            recovered_reports.push((i, item.key, r));
        }
    }
    assert!(
        !live_reports.is_empty(),
        "trace produced no reports; test is vacuous"
    );
    assert_eq!(live_reports, recovered_reports);
    assert_eq!(live.stats().reports, recovered.stats().reports);
    assert_eq!(live.snapshot(), recovered.snapshot());
}

/// EpochFilter checkpoints resume mid-epoch, across epoch rollovers and
/// pressure-driven resizes.
#[test]
fn epoch_filter_with_resize_policy_resumes_identically() {
    let policy = || GrowOnPressure {
        vague_visit_threshold: 0.2,
        factor: 2.0,
        max_bytes: 64 * 1024,
    };
    let mut ef: EpochFilter<i8, GrowOnPressure> = EpochFilter::new(crit(), 2048, 700, 21, policy());
    for i in 0..1_000u64 {
        ef.insert(&(i % 300), if i % 300 == 7 { 400.0 } else { 20.0 });
    }
    let mut restored: EpochFilter<i8, GrowOnPressure> =
        EpochFilter::restore(&ef.snapshot(), policy()).unwrap();
    for i in 0..1_500u64 {
        let key = i % 300;
        let v = if key == 7 { 400.0 } else { 20.0 };
        assert_eq!(ef.insert(&key, v), restored.insert(&key, v), "item {i}");
    }
    assert_eq!(ef.epochs_completed(), restored.epochs_completed());
    assert_eq!(ef.memory_bytes(), restored.memory_bytes());
}

/// MultiCriteriaFilter round-trips its criteria list and per-criterion
/// Qweight state.
#[test]
fn multi_criteria_filter_resumes_identically() {
    let filter = QuantileFilterBuilder::new(Criteria::default())
        .candidate_buckets(64)
        .vague_dims(3, 512)
        .seed(31)
        .build();
    let mut mc = MultiCriteriaFilter::new(
        filter,
        vec![crit(), Criteria::new(3.0, 0.5, 400.0).unwrap()],
    );
    for i in 0..400u64 {
        mc.insert(&(i % 13), if i % 13 < 4 { 450.0 } else { 30.0 });
    }
    let mut restored: MultiCriteriaFilter<CountSketch<i8>> =
        MultiCriteriaFilter::restore(&mc.snapshot()).unwrap();
    assert_eq!(restored.criteria(), mc.criteria());
    for i in 0..600u64 {
        let key = i % 13;
        let v = if key < 4 { 450.0 } else { 30.0 };
        assert_eq!(mc.insert(&key, v), restored.insert(&key, v), "item {i}");
    }
}
