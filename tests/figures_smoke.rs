//! Smoke-run every figure driver at Tiny scale: each must produce rows
//! with the expected schema and sane values. This guarantees
//! `figures all` works end to end before anyone pays for a full run.

use qf_repro::qf_eval::figures::{self, FigureOutput, Scale};

fn check(fig: &FigureOutput, min_rows: usize) {
    assert!(
        fig.rows.len() >= min_rows,
        "{}: only {} rows",
        fig.id,
        fig.rows.len()
    );
    for row in &fig.rows {
        assert_eq!(row.len(), fig.headers.len(), "{}: ragged row", fig.id);
    }
    let csv = fig.to_csv();
    assert!(csv.lines().count() == fig.rows.len() + 1);
}

fn f1_column(fig: &FigureOutput) -> Vec<f64> {
    let idx = fig
        .headers
        .iter()
        .position(|h| h == "f1")
        .expect("f1 column");
    fig.rows.iter().map(|r| r[idx].parse().unwrap()).collect()
}

#[test]
fn fig4_internet_accuracy() {
    let fig = figures::fig4(Scale::Tiny);
    check(&fig, 15);
    for f1 in f1_column(&fig) {
        assert!((0.0..=1.0).contains(&f1));
    }
}

#[test]
fn fig5_cloud_accuracy() {
    let fig = figures::fig5(Scale::Tiny);
    check(&fig, 15);
}

#[test]
fn fig6_threshold_sweep() {
    let fig = figures::fig6(Scale::Tiny);
    check(&fig, 9);
}

#[test]
fn fig7_delta_sweep() {
    let fig = figures::fig7(Scale::Tiny);
    check(&fig, 10);
}

#[test]
fn fig8_throughput() {
    let fig = figures::fig8(Scale::Tiny);
    check(&fig, 30);
    let mops_idx = fig.headers.iter().position(|h| h == "mops").unwrap();
    for row in &fig.rows {
        assert!(row[mops_idx].parse::<f64>().unwrap() > 0.0);
    }
}

#[test]
fn fig9_parameter_accuracy() {
    let fig = figures::fig9(Scale::Tiny);
    check(&fig, 5);
}

#[test]
fn fig10_parameter_throughput() {
    let fig = figures::fig10(Scale::Tiny);
    check(&fig, 5);
}

#[test]
fn fig11_memory_proportion() {
    let fig = figures::fig11(Scale::Tiny);
    check(&fig, 4);
}

#[test]
fn fig12_variants() {
    let fig = figures::fig12(Scale::Tiny);
    check(&fig, 2 * 3 * 7);
}

#[test]
fn fig13_dynamic_epsilon() {
    let fig = figures::fig13(Scale::Tiny);
    check(&fig, 4);
}

#[test]
fn fig14_dynamic_delta() {
    let fig = figures::fig14(Scale::Tiny);
    check(&fig, 4);
}

#[test]
fn fig15_dynamic_threshold() {
    let fig = figures::fig15(Scale::Tiny);
    check(&fig, 4);
}

#[test]
fn fig12_cs_variants_beat_cms_on_average() {
    // The paper's Fig. 12 finding: CS-vague variants are more accurate and
    // less strategy-sensitive than CMS-vague variants.
    let fig = figures::fig12(Scale::Tiny);
    let f1_idx = fig.headers.iter().position(|h| h == "f1").unwrap();
    let mean_of = |needle: &str| {
        let vals: Vec<f64> = fig
            .rows
            .iter()
            .filter(|r| r[2].contains(needle))
            .map(|r| r[f1_idx].parse().unwrap())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let cs = mean_of("+CS)");
    let cms = mean_of("+CMS)");
    assert!(
        cs >= cms,
        "CS variants (mean F1 {cs:.3}) must not lose to CMS ({cms:.3})"
    );
}

#[test]
fn spot1mb_has_qf_row() {
    let fig = figures::spot1mb(Scale::Tiny);
    check(&fig, 5);
    assert!(fig.rows.iter().any(|r| r[0] == "QuantileFilter"));
}
