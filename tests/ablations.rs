//! Ablation tests for the design choices DESIGN.md §5 calls out: counter
//! width, stochastic rounding, candidate election value, and saturation
//! (failure-injection) behaviour.

use qf_repro::qf_baselines::qf::Algorithm1Detector;
use qf_repro::qf_baselines::{OutstandingDetector, QfDetector};
use qf_repro::qf_datasets::{internet_like, InternetConfig};
use qf_repro::qf_eval::{ground_truth, run_detector, Accuracy};
use qf_repro::qf_sketch::{CountSketch, WeightSketch};
use qf_repro::quantile_filter::{Criteria, QuantileFilterBuilder};

fn workload() -> qf_repro::qf_datasets::Dataset {
    internet_like(&InternetConfig::tiny())
}

fn criteria(t: f64) -> Criteria {
    Criteria::new(30.0, 0.95, t).unwrap()
}

/// Candidate election must add accuracy over the vague-only Algorithm 1
/// (Theorem 3's raison d'être). Individual points are noisy (the tiny
/// workload has few truly outstanding keys), so compare the mean F1 over a
/// memory sweep — the two-part design must win on average and must win
/// decisively at the tightest budget, where vague-only collision noise is
/// worst.
#[test]
fn candidate_part_improves_over_algorithm1() {
    let dataset = workload();
    let c = criteria(dataset.threshold);
    let truth = ground_truth(&dataset.items, &c);

    let memories = [1 << 11, 1 << 12, 1 << 13, 1 << 15];
    let mut qf_f1s = Vec::new();
    let mut a1_f1s = Vec::new();
    for &memory in &memories {
        let mut qf = QfDetector::paper_default(c, memory, 1);
        let mut a1 = Algorithm1Detector::new(c, memory, 1);
        qf_f1s.push(Accuracy::of(&run_detector(&mut qf, &dataset.items).reported, &truth).f1());
        a1_f1s.push(Accuracy::of(&run_detector(&mut a1, &dataset.items).reported, &truth).f1());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&qf_f1s) >= mean(&a1_f1s),
        "two-part QF {qf_f1s:?} must not lose on average to vague-only {a1_f1s:?}"
    );
    assert!(
        qf_f1s[0] > a1_f1s[0],
        "at 2KB the candidate part must clearly help: QF {} vs A1 {}",
        qf_f1s[0],
        a1_f1s[0]
    );
}

/// Narrow counters (i16) at equal byte budget trade depth of range for
/// width; with the paper's sign-cancellation argument they must stay
/// competitive with i32 at the same memory.
#[test]
fn narrow_counters_competitive_at_equal_bytes() {
    let dataset = workload();
    let c = criteria(dataset.threshold);
    let truth = ground_truth(&dataset.items, &c);
    let memory = 16 * 1024;

    let run_with_counter = |f1s: &mut Vec<f64>, is16: bool| {
        let builder = QuantileFilterBuilder::new(c)
            .memory_budget_bytes(memory)
            .seed(7);
        let reported = if is16 {
            let mut filter = builder.build_with_counter::<i16>();
            let mut reported = std::collections::HashSet::new();
            for it in &dataset.items {
                if filter.insert(&it.key, it.value).is_some() {
                    reported.insert(it.key);
                }
            }
            reported
        } else {
            let mut filter = builder.build_with_counter::<i32>();
            let mut reported = std::collections::HashSet::new();
            for it in &dataset.items {
                if filter.insert(&it.key, it.value).is_some() {
                    reported.insert(it.key);
                }
            }
            reported
        };
        f1s.push(Accuracy::of(&reported, &truth).f1());
    };
    let mut f1s = Vec::new();
    run_with_counter(&mut f1s, false);
    run_with_counter(&mut f1s, true);
    let (f1_i32, f1_i16) = (f1s[0], f1s[1]);
    assert!(
        f1_i16 >= f1_i32 - 0.1,
        "i16 counters (F1={f1_i16:.3}) collapsed vs i32 (F1={f1_i32:.3})"
    );
}

/// Failure injection: drive i8 vague counters deep into saturation and
/// verify the filter still functions (no wrap-around false storm).
#[test]
fn saturated_vague_part_degrades_gracefully() {
    let c = Criteria::new(5.0, 0.9, 100.0).unwrap();
    // Tiny i8 vague part, tiny candidate part: saturation guaranteed.
    let mut filter = QuantileFilterBuilder::new(c)
        .candidate_buckets(2)
        .bucket_len(2)
        .vague_dims(1, 8)
        .seed(3)
        .build_with_counter::<i8>();
    // Hammer thousands of quiet keys: Qweights all −1 per item.
    let mut false_reports = 0;
    for i in 0..50_000u64 {
        if filter.insert(&(i % 1000), 5.0).is_some() {
            false_reports += 1;
        }
    }
    // Quiet keys must produce (almost) no reports even under saturation —
    // the overflow-reversal guard keeps counters pinned instead of
    // wrapping to huge positives.
    assert!(
        false_reports < 50,
        "saturation produced a false-report storm: {false_reports}"
    );
}

/// Stochastic rounding keeps fractional-δ detection timing close to the
/// f64 ideal: over many single-key trials, the mean report time must match
/// the exact Qweight crossing.
#[test]
fn stochastic_rounding_report_timing_unbiased() {
    // δ = 0.85 ⇒ +17/3 per above-T item; threshold 3/(0.15) = 20 ⇒ exact
    // crossing at item ⌈20/(17/3)⌉ = 4.
    let c = Criteria::new(3.0, 0.85, 100.0).unwrap();
    let mut total_first = 0usize;
    let trials = 200;
    for seed in 0..trials {
        let mut filter = QuantileFilterBuilder::new(c)
            .candidate_buckets(8)
            .vague_dims(3, 64)
            .seed(seed)
            .build();
        let mut first = 0usize;
        for i in 1..=40 {
            if filter.insert(&1u64, 500.0).is_some() {
                first = i;
                break;
            }
        }
        assert!(first > 0, "never reported under seed {seed}");
        total_first += first;
    }
    let mean = total_first as f64 / trials as f64;
    assert!(
        (3.6..=4.8).contains(&mean),
        "mean first-report item {mean} should be ~4"
    );
}

/// The overflow-reversal guard at the sketch level: an i8 cell pinned at
/// +127 must never flip sign no matter the further load.
#[test]
fn sketch_saturation_never_reverses() {
    let mut cs = CountSketch::<i8>::new(1, 1, 5);
    let sign = {
        cs.add(&1u64, 1);
        let s = cs.estimate(&1u64).signum();
        cs.clear();
        s
    };
    for _ in 0..10_000 {
        cs.add(&1u64, sign);
    }
    assert_eq!(cs.estimate(&1u64), sign * 127);
    // Opposite-direction updates still take effect immediately.
    cs.add(&1u64, -sign * 27);
    assert_eq!(cs.estimate(&1u64), sign * 100);
}

/// Memory budgeting across three orders of magnitude stays within budget
/// and actually uses most of it.
#[test]
fn memory_budgets_tight_across_sizes() {
    let c = criteria(300.0);
    for budget in [1 << 10, 1 << 14, 1 << 20] {
        let det = QfDetector::paper_default(c, budget, 2);
        let used = det.memory_bytes();
        assert!(used <= budget, "budget {budget} exceeded: {used}");
        assert!(
            used as f64 > budget as f64 * 0.75,
            "budget {budget} underused: {used}"
        );
    }
}
