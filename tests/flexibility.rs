//! Cross-crate tests of the §III-C flexibility features: per-key criteria,
//! dynamic modification, and multi-criteria monitoring.

use qf_repro::quantile_filter::{Criteria, MultiCriteriaFilter, QuantileFilterBuilder};

#[test]
fn per_key_criteria_distinct_report_rates() {
    // UDP flows (audio/video) get a tighter SLA than TCP flows — the
    // paper's own motivating example for per-key criteria.
    let tcp = Criteria::new(20.0, 0.95, 300.0).unwrap();
    let udp = Criteria::new(5.0, 0.95, 150.0).unwrap();
    let mut filter = QuantileFilterBuilder::new(tcp)
        .memory_budget_bytes(64 * 1024)
        .seed(1)
        .build();

    let mut udp_reports = 0;
    let mut tcp_reports = 0;
    // Both flows see identical 200ms latencies: above the UDP threshold,
    // below the TCP one.
    for _ in 0..5_000 {
        if filter.insert_with_criteria(&1u64, 200.0, &udp).is_some() {
            udp_reports += 1;
        }
        if filter.insert_with_criteria(&2u64, 200.0, &tcp).is_some() {
            tcp_reports += 1;
        }
    }
    assert!(udp_reports > 0, "UDP flow must be reported under tight SLA");
    assert_eq!(tcp_reports, 0, "TCP flow must stay quiet under lax SLA");
}

#[test]
fn dynamic_modification_resets_state() {
    let base = Criteria::new(5.0, 0.9, 100.0).unwrap();
    let mut filter = QuantileFilterBuilder::new(base)
        .memory_budget_bytes(32 * 1024)
        .seed(2)
        .build();

    // Accumulate 5 above-T items (Qweight 45 < 50, no report yet).
    for _ in 0..5 {
        assert!(filter.insert(&9u64, 500.0).is_none());
    }
    assert_eq!(filter.query(&9u64), 45);

    // Modify the key's criteria: state must reset (V_x empties).
    let removed = filter.modify_key_criteria(&9u64);
    assert_eq!(removed, 45);
    assert_eq!(filter.query(&9u64), 0);

    // Under the laxer criteria the same burst no longer reports.
    let lax = base.with_epsilon(50.0).unwrap(); // threshold 500
    for _ in 0..20 {
        assert!(filter.insert_with_criteria(&9u64, 500.0, &lax).is_none());
    }
    // But it eventually does once evidence is overwhelming.
    let mut reported = false;
    for _ in 0..60 {
        reported |= filter.insert_with_criteria(&9u64, 500.0, &lax).is_some();
    }
    assert!(reported);
}

#[test]
fn multi_criteria_composite_keys_do_not_interfere() {
    let c0 = Criteria::new(5.0, 0.9, 100.0).unwrap();
    let c1 = Criteria::new(5.0, 0.9, 1000.0).unwrap();
    let filter = QuantileFilterBuilder::new(c0)
        .memory_budget_bytes(64 * 1024)
        .seed(3)
        .build();
    let mut multi = MultiCriteriaFilter::new(filter, vec![c0, c1]);

    // Values at 500: above c0's T, below c1's.
    for _ in 0..100 {
        multi.insert(&5u64, 500.0);
    }
    // Criterion 0 accumulated positives (and reported/reset); criterion 1
    // must be deeply negative.
    assert!(multi.query(&5u64, 1) < -50);
}

#[test]
fn filter_wide_criteria_change() {
    let strict = Criteria::new(5.0, 0.9, 100.0).unwrap();
    let mut filter = QuantileFilterBuilder::new(strict)
        .memory_budget_bytes(32 * 1024)
        .seed(4)
        .build();
    // Change the global default to a laxer profile; future inserts follow.
    let lax = Criteria::new(500.0, 0.9, 100.0).unwrap();
    filter.set_default_criteria(lax);
    for _ in 0..200 {
        assert!(filter.insert(&1u64, 500.0).is_none());
    }
}

#[test]
fn reset_supports_resizing_epoch() {
    // §III-B: periodic reset; after reset the structure behaves fresh.
    let c = Criteria::new(5.0, 0.9, 100.0).unwrap();
    let mut filter = QuantileFilterBuilder::new(c)
        .memory_budget_bytes(16 * 1024)
        .seed(5)
        .build();
    for k in 0u64..500 {
        filter.insert(&k, 50.0);
    }
    filter.reset();
    assert_eq!(filter.query(&250u64), 0);
    // Fresh accumulation still detects.
    let mut reported = false;
    for _ in 0..10 {
        reported |= filter.insert(&250u64, 500.0).is_some();
    }
    assert!(reported);
}
