//! Empirical checks of the paper's §IV mathematical analysis.

use qf_repro::qf_hash::SplitMix64;
use qf_repro::qf_sketch::{CountSketch, WeightSketch};
use qf_repro::quantile_filter::qweight::{exact_qweight, quantile_exceeds};
use qf_repro::quantile_filter::Criteria;

/// Theorem 1 (unbiasedness): E[Q'_i] = Q_i for the vague part under
/// signed, weighted, colliding load.
#[test]
fn theorem1_unbiasedness() {
    let truth = 100i64;
    let trials = 400;
    let mut sum = 0i64;
    for seed in 0..trials {
        let mut cs = CountSketch::<i64>::new(1, 32, seed);
        cs.add(&0u64, truth);
        // Heavy background with mixed-sign weights (Qweights are signed).
        let mut rng = SplitMix64::new(seed ^ 0xBAC);
        for k in 1u64..300 {
            let w = (rng.next_u64() % 41) as i64 - 20;
            cs.add(&k, w);
        }
        sum += cs.estimate(&0u64);
    }
    let mean = sum as f64 / trials as f64;
    assert!(
        (mean - truth as f64).abs() < 8.0,
        "estimator biased: mean {mean} vs {truth}"
    );
}

/// Theorem 1 (error bound): with w = ⌈4/ε²⌉ and d = ⌈8·ln(1/γ)⌉ the error
/// exceeds ε·L2 with probability at most γ.
#[test]
fn theorem1_error_bound() {
    let eps = 0.25f64;
    let gamma = 0.05f64;
    let w = (4.0 / (eps * eps)).ceil() as usize; // 64
    let d = (8.0 * (1.0 / gamma).ln()).ceil() as usize; // 24
    let n_keys = 200u64;
    let weight = 10i64;
    let l2 = ((n_keys as f64) * (weight as f64).powi(2)).sqrt();

    let mut violations = 0;
    let trials = 200;
    for seed in 0..trials {
        let mut cs = CountSketch::<i64>::new(d, w, seed);
        for k in 0..n_keys {
            cs.add(&k, weight);
        }
        let err = (cs.estimate(&0u64) - weight).abs() as f64;
        if err >= eps * l2 {
            violations += 1;
        }
    }
    let rate = violations as f64 / trials as f64;
    assert!(
        rate <= gamma,
        "error-bound violation rate {rate} exceeds gamma {gamma}"
    );
}

/// Theorem 2 (shape): removing the top-k keys from the sketch reduces the
/// collision error of the remaining keys when Qweights are Zipf-skewed.
#[test]
fn theorem2_topk_removal_reduces_error() {
    let n_keys = 500u64;
    let alpha = 1.0;
    // Zipf-magnitude Qweights: key k has weight ∝ 1/(k+1)^α.
    let weights: Vec<i64> = (0..n_keys)
        .map(|k| (1000.0 / (k as f64 + 1.0).powf(alpha)) as i64)
        .collect();

    let err_with_top_k_removed = |k_removed: usize| -> f64 {
        let trials = 100;
        let mut total = 0.0;
        for seed in 0..trials {
            let mut cs = CountSketch::<i64>::new(1, 64, seed);
            for (k, &w) in weights.iter().enumerate().skip(k_removed) {
                cs.add(&(k as u64), w);
            }
            // Mean absolute error over a sample of small keys.
            let lo = k_removed as u64 + 50;
            let hi = k_removed as u64 + 80;
            let mut err = 0.0;
            for k in lo..hi {
                err += (cs.estimate(&k) - weights[k as usize]).abs() as f64;
            }
            total += err / (hi - lo) as f64;
        }
        total / trials as f64
    };

    let full = err_with_top_k_removed(0);
    let removed = err_with_top_k_removed(16);
    assert!(
        removed < full,
        "removing top-16 must shrink error: full {full} vs removed {removed}"
    );
}

/// The §III-A equivalence on a long adversarial value pattern (exactly at
/// the threshold boundary repeatedly).
#[test]
fn qweight_equivalence_boundary_pattern() {
    let c = Criteria::new(2.0, 0.75, 10.0).unwrap();
    let mut values = Vec::new();
    // 3:1 ratio of below:above keeps the quantile hovering at the
    // boundary.
    for i in 0..400 {
        values.push(if i % 4 == 0 { 20.0 } else { 5.0 });
        let lhs = quantile_exceeds(&values, &c);
        let qw = exact_qweight(&values, &c);
        let rhs = qw >= c.report_threshold() - 1e-9;
        assert_eq!(lhs, rhs, "divergence at n={} (qw={qw})", values.len());
    }
}

/// Technique 1 of §III-D: hashing the vague part on (fingerprint, bucket)
/// composites instead of raw keys loses no visible accuracy as long as
/// m·2^16 ≫ counters.
#[test]
fn fingerprint_composite_hashing_no_accuracy_loss() {
    use qf_repro::quantile_filter::vague::VagueKey;
    let trials = 60;
    let mut raw_err = 0.0;
    let mut composite_err = 0.0;
    for seed in 0..trials {
        // Raw-key sketch.
        let mut raw = CountSketch::<i64>::new(3, 256, seed);
        // Composite-key sketch: same dims, keys folded through (bucket,
        // fp) with 64 buckets — 64·65536 ≫ 768 counters.
        let mut comp = CountSketch::<i64>::new(3, 256, seed);
        for k in 0u64..500 {
            let w = if k == 0 { 200 } else { 3 };
            raw.add(&k, w);
            let vk = VagueKey::new((k % 64) as usize, (k >> 6) as u16);
            comp.add(&vk, w);
        }
        raw_err += (raw.estimate(&0u64) - 200).abs() as f64;
        let vk0 = VagueKey::new(0, 0);
        composite_err += (comp.estimate(&vk0) - 200).abs() as f64;
    }
    let raw_mean = raw_err / trials as f64;
    let comp_mean = composite_err / trials as f64;
    // Same order of magnitude — composite hashing must not visibly hurt.
    assert!(
        comp_mean <= raw_mean * 2.0 + 10.0,
        "composite error {comp_mean} vs raw {raw_mean}"
    );
}
