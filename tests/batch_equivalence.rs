//! Differential replay: `insert_batch` must be indistinguishable from
//! sequential `insert` — bit for bit.
//!
//! Same replay discipline as `differential_oracle.rs`: deterministic
//! SplitMix64 traces, identically-seeded twin structures, and assertions
//! on *every* observable — the full report sequence (index, source,
//! Qweight), the running statistics, both RNG states (stochastic rounder
//! and election), and a final point-query sweep. Any divergence in hash
//! reuse, RNG draw order, or control flow between the batch and scalar
//! paths fails here with the first diverging item index.
//!
//! Regimes:
//! 1. **Integer weights** (δ = 0.75): the rounder never draws randomness,
//!    so this isolates control-flow and hashing equivalence.
//! 2. **Fractional weights** (δ = 0.6): every above-`T` item draws from
//!    the rounder's RNG, so this pins the batch path to the exact same
//!    per-item draw order.
//! 3. **Chunked feeding with poisoned values**: the same trace split into
//!    uneven chunks (including singleton and whole-trace chunks) with NaN
//!    and ±∞ sprinkled in must drop them exactly like scalar `insert`.
//! 4. **Boundary geometry**: batch lengths straddling the internal
//!    `INGEST_CHUNK` (and non-multiples of the 4-lane SWAR width), plus a
//!    batch whose final item lands in the candidate array's *last* bucket
//!    — the corner where the one-ahead prefetch has no successor and the
//!    SWAR probe window reads the tail padding.
//! 5. **Vague-depth sweep**: every supported sketch depth for both
//!    CountSketch and Count-Min, including `d > MAX_LANES` where lane
//!    precomputation falls back to per-call hashing.
//! 6. **Interleaved deletes**: turnstile traffic between batches must
//!    leave the twins in identical state.

use proptest::prelude::*;
use proptest::{prop_assert_eq, proptest};
use qf_repro::qf_hash::MAX_LANES;
use qf_repro::qf_sketch::{CountMinSketch, CountSketch};
use qf_repro::quantile_filter::{Criteria, QuantileFilter, QuantileFilterBuilder, Report};

/// Minimal deterministic RNG (SplitMix64), as in the differential oracle.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn criteria(epsilon: f64, delta: f64, threshold: f64) -> Criteria {
    match Criteria::new(epsilon, delta, threshold) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e}"),
    }
}

/// Small, collision-heavy filter so the vague path, elections, and
/// reports are all exercised hard.
fn build(c: Criteria, seed: u64) -> QuantileFilter {
    QuantileFilterBuilder::new(c)
        .candidate_buckets(8)
        .bucket_len(2)
        .vague_dims(3, 256)
        .seed(seed)
        .build()
}

fn trace(seed: u64, len: usize, keys: u64, hot_pct: u64) -> Vec<(u64, f64)> {
    let mut rng = Rng(seed);
    (0..len)
        .map(|_| {
            let key = rng.below(keys);
            let value = if rng.below(100) < hot_pct { 500.0 } else { 5.0 };
            (key, value)
        })
        .collect()
}

/// Feed `items` through the scalar path and return the report log.
fn scalar_reports<S: qf_repro::qf_sketch::WeightSketch>(
    qf: &mut QuantileFilter<S>,
    items: &[(u64, f64)],
) -> Vec<(usize, Report)> {
    let mut log = Vec::new();
    for (i, &(k, v)) in items.iter().enumerate() {
        if let Some(r) = qf.insert(&k, v) {
            log.push((i, r));
        }
    }
    log
}

/// Feed `items` through `insert_batch` in chunks of `chunk` and return the
/// report log with *global* item indices.
fn batch_reports<S: qf_repro::qf_sketch::WeightSketch>(
    qf: &mut QuantileFilter<S>,
    items: &[(u64, f64)],
    chunk: usize,
) -> Vec<(usize, Report)> {
    let mut log = Vec::new();
    for (c, chunk_items) in items.chunks(chunk.max(1)).enumerate() {
        let base = c * chunk.max(1);
        qf.insert_batch(chunk_items, &mut |i, r| log.push((base + i, r)));
    }
    log
}

fn assert_twins_agree<S: qf_repro::qf_sketch::WeightSketch>(
    scalar: &QuantileFilter<S>,
    batched: &QuantileFilter<S>,
    keys: u64,
    regime: &str,
) {
    let (s, b) = (scalar.stats(), batched.stats());
    assert_eq!(
        s.candidate_hits, b.candidate_hits,
        "{regime}: candidate_hits"
    );
    assert_eq!(
        s.candidate_inserts, b.candidate_inserts,
        "{regime}: inserts"
    );
    assert_eq!(s.vague_visits, b.vague_visits, "{regime}: vague_visits");
    assert_eq!(s.exchanges, b.exchanges, "{regime}: exchanges");
    assert_eq!(s.reports, b.reports, "{regime}: reports");
    for k in 0..keys {
        assert_eq!(
            scalar.query(&k),
            batched.query(&k),
            "{regime}: post-trace Qweight differs for key {k}"
        );
    }
}

#[test]
fn integer_weight_replay_is_bit_identical() {
    // δ = 0.75 ⇒ +3/−1 exactly: the rounder is deterministic, so this
    // regime isolates control-flow and hashing equivalence.
    let c = criteria(5.0, 0.75, 100.0);
    let items = trace(0xABCD, 30_000, 300, 55);
    let mut scalar = build(c, 0x11);
    let mut batched = build(c, 0x11);
    let want = scalar_reports(&mut scalar, &items);
    let got = batch_reports(&mut batched, &items, 256);
    assert!(
        want.len() > 30,
        "only {} reports — trace too tame",
        want.len()
    );
    assert_eq!(got, want, "integer regime: report sequences diverge");
    assert_twins_agree(&scalar, &batched, 300, "integer");
}

#[test]
fn fractional_weight_replay_consumes_rng_identically() {
    // δ = 0.6 ⇒ +1.5 above T: every above-item draws from the rounder's
    // RNG. The batch path must make exactly the same draws in the same
    // order, or the report log and final state drift immediately.
    let c = criteria(5.0, 0.6, 100.0);
    let items = trace(0xF00D, 30_000, 200, 60);
    let mut scalar = build(c, 0x22);
    let mut batched = build(c, 0x22);
    let want = scalar_reports(&mut scalar, &items);
    let got = batch_reports(&mut batched, &items, 512);
    assert!(!want.is_empty(), "fractional trace produced no reports");
    assert_eq!(got, want, "fractional regime: report sequences diverge");
    assert_twins_agree(&scalar, &batched, 200, "fractional");
}

#[test]
fn every_chunking_matches_scalar() {
    // Chunk size must be invisible: singleton chunks, odd sizes, and one
    // whole-trace batch all replay to the same log as scalar insert.
    let c = criteria(5.0, 0.75, 100.0);
    let items = trace(0x5EED, 12_000, 150, 55);
    let mut scalar = build(c, 0x33);
    let want = scalar_reports(&mut scalar, &items);
    for chunk in [1usize, 2, 3, 7, 64, 1000, items.len()] {
        let mut batched = build(c, 0x33);
        let got = batch_reports(&mut batched, &items, chunk);
        assert_eq!(got, want, "chunk size {chunk} diverges from scalar");
        assert_twins_agree(&scalar, &batched, 150, "chunked");
    }
}

#[test]
fn chunk_boundary_lengths_replay_identically() {
    // The internal ingest chunk is 64 items: batch lengths straddling it,
    // and lengths that are not multiples of the 4-lane SWAR width, must be
    // invisible in the replay.
    let c = criteria(5.0, 0.6, 100.0);
    for len in [1usize, 3, 63, 64, 65, 67, 127, 128, 129] {
        let items = trace(0xA11 + len as u64, len, 40, 60);
        let mut scalar = build(c, 0x66);
        let mut batched = build(c, 0x66);
        let want = scalar_reports(&mut scalar, &items);
        let got = batch_reports(&mut batched, &items, items.len());
        assert_eq!(got, want, "batch length {len} diverges from scalar");
        assert_twins_agree(&scalar, &batched, 40, "boundary length");
    }
}

#[test]
fn batch_tail_in_last_bucket_matches_scalar() {
    // The chunked ingest prefetches one item ahead; the final item of a
    // batch has no successor, and when its key hashes to the candidate
    // array's last bucket the SWAR probe window reads the tail padding.
    // Pin that corner: batches around the chunk size whose final key lands
    // in the last bucket, with that bucket crowded by earlier plants.
    let c = criteria(5.0, 0.75, 100.0);
    let probe = build(c, 0x55);
    let buckets = probe.candidate_part().buckets();
    let last_bucket_keys: Vec<u64> = (0..1_000_000u64)
        .filter(|k| probe.candidate_part().bucket_of(k) == buckets - 1)
        .take(8)
        .collect();
    assert_eq!(last_bucket_keys.len(), 8, "key search exhausted");
    for len in [1usize, 63, 64, 65] {
        let mut items = trace(0x600D + len as u64, len - 1, 64, 55);
        // Crowd the 2-slot last bucket so the tail item walks a full
        // window (match-miss over padding, then election).
        for (i, &k) in last_bucket_keys.iter().take(4).enumerate() {
            if i < items.len() {
                items[i] = (k, 500.0);
            }
        }
        items.push((last_bucket_keys[7], 500.0));
        let mut scalar = build(c, 0x55);
        let mut batched = build(c, 0x55);
        let want = scalar_reports(&mut scalar, &items);
        let got = batch_reports(&mut batched, &items, items.len());
        assert_eq!(got, want, "len {len}: tail-in-last-bucket diverges");
        assert_twins_agree(&scalar, &batched, 64, "last-bucket tail");
        for &k in &last_bucket_keys {
            assert_eq!(scalar.query(&k), batched.query(&k), "planted key {k}");
        }
    }
}

#[test]
fn depth_sweep_cs_and_cms_batch_matches_scalar() {
    // Every vague depth regime for both sketch families, including
    // d > MAX_LANES where RowLanes precomputation yields the empty marker
    // and the filter serves keys per call — batch must stay bit-identical
    // through the fallback too.
    let c = criteria(5.0, 0.75, 100.0);
    let items = trace(0xD00D, 6_000, 120, 55);
    for d in [1usize, 2, 3, 5, MAX_LANES, MAX_LANES + 1] {
        let build_cs = || {
            QuantileFilterBuilder::new(c)
                .candidate_buckets(8)
                .bucket_len(2)
                .seed(0x77)
                .build_with_sketch(CountSketch::<i64>::new(d, 256, 0x77AA))
        };
        let (mut scalar, mut batched) = (build_cs(), build_cs());
        let want = scalar_reports(&mut scalar, &items);
        let got = batch_reports(&mut batched, &items, 96);
        assert!(!want.is_empty(), "CS d={d}: trace produced no reports");
        assert_eq!(got, want, "CS d={d}: report sequences diverge");
        assert_twins_agree(&scalar, &batched, 120, "CS depth sweep");

        let build_cms = || {
            QuantileFilterBuilder::new(c)
                .candidate_buckets(8)
                .bucket_len(2)
                .seed(0x77)
                .build_with_sketch(CountMinSketch::<i64>::new(d, 256, 0x77AA))
        };
        let (mut scalar, mut batched) = (build_cms(), build_cms());
        let want = scalar_reports(&mut scalar, &items);
        let got = batch_reports(&mut batched, &items, 96);
        assert_eq!(got, want, "CMS d={d}: report sequences diverge");
        assert_twins_agree(&scalar, &batched, 120, "CMS depth sweep");
    }
}

#[test]
fn interleaved_deletes_replay_identically() {
    // Turnstile traffic: deletes between batches must drain the same mass
    // from both twins and leave later report indices untouched.
    let c = criteria(5.0, 0.75, 100.0);
    let items = trace(0xDE1, 9_000, 90, 55);
    let mut scalar = build(c, 0x88);
    let mut batched = build(c, 0x88);
    let mut want = Vec::new();
    let mut got = Vec::new();
    for (seg_idx, seg) in items.chunks(300).enumerate() {
        let base = seg_idx * 300;
        for (i, &(k, v)) in seg.iter().enumerate() {
            if let Some(r) = scalar.insert(&k, v) {
                want.push((base + i, r));
            }
        }
        batched.insert_batch(seg, &mut |i, r| got.push((base + i, r)));
        let victim = (seg_idx as u64 * 7) % 90;
        assert_eq!(
            scalar.delete(&victim),
            batched.delete(&victim),
            "segment {seg_idx}: delete estimate diverges"
        );
    }
    assert_eq!(got, want, "deletes disturbed the replay");
    assert_twins_agree(&scalar, &batched, 90, "interleaved deletes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_unaligned_lengths_and_chunks_replay_identically(
        len in 1usize..180,
        chunk in 1usize..80,
        seed in 0u64..1_000,
    ) {
        // Random (batch length, chunk size) pairs — most are unaligned to
        // both the 64-item ingest chunk and the 4-lane SWAR width. The
        // fractional δ keeps the rounder RNG in play.
        let c = criteria(5.0, 0.6, 100.0);
        let items = trace(seed ^ 0xC0FF_EE00, len, 48, 60);
        let mut scalar = build(c, seed);
        let mut batched = build(c, seed);
        let want = scalar_reports(&mut scalar, &items);
        let got = batch_reports(&mut batched, &items, chunk);
        prop_assert_eq!(got, want);
        let (s, b) = (scalar.stats(), batched.stats());
        prop_assert_eq!(s.reports, b.reports);
        prop_assert_eq!(s.vague_visits, b.vague_visits);
        prop_assert_eq!(s.candidate_hits, b.candidate_hits);
    }
}

#[test]
fn poisoned_values_are_dropped_identically() {
    // NaN/±∞ sprinkled through the trace: scalar insert drops them
    // silently; insert_batch must drop the same items and nothing else
    // (in particular the item *indices* of later reports must still match).
    let c = criteria(5.0, 0.75, 100.0);
    let mut items = trace(0xBAD, 8_000, 100, 55);
    let mut rng = Rng(0xDEAD);
    for _ in 0..400 {
        let at = rng.below(items.len() as u64) as usize;
        let poison = match rng.below(3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        items[at].1 = poison;
    }
    let mut scalar = build(c, 0x44);
    let mut batched = build(c, 0x44);
    let want = scalar_reports(&mut scalar, &items);
    let got = batch_reports(&mut batched, &items, 333);
    assert_eq!(got, want, "poisoned trace: report sequences diverge");
    assert_twins_agree(&scalar, &batched, 100, "poisoned");
}
