//! Differential replay: `insert_batch` must be indistinguishable from
//! sequential `insert` — bit for bit.
//!
//! Same replay discipline as `differential_oracle.rs`: deterministic
//! SplitMix64 traces, identically-seeded twin structures, and assertions
//! on *every* observable — the full report sequence (index, source,
//! Qweight), the running statistics, both RNG states (stochastic rounder
//! and election), and a final point-query sweep. Any divergence in hash
//! reuse, RNG draw order, or control flow between the batch and scalar
//! paths fails here with the first diverging item index.
//!
//! Three regimes:
//! 1. **Integer weights** (δ = 0.75): the rounder never draws randomness,
//!    so this isolates control-flow and hashing equivalence.
//! 2. **Fractional weights** (δ = 0.6): every above-`T` item draws from
//!    the rounder's RNG, so this pins the batch path to the exact same
//!    per-item draw order.
//! 3. **Chunked feeding with poisoned values**: the same trace split into
//!    uneven chunks (including singleton and whole-trace chunks) with NaN
//!    and ±∞ sprinkled in must drop them exactly like scalar `insert`.

use qf_repro::quantile_filter::{Criteria, QuantileFilter, QuantileFilterBuilder, Report};

/// Minimal deterministic RNG (SplitMix64), as in the differential oracle.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn criteria(epsilon: f64, delta: f64, threshold: f64) -> Criteria {
    match Criteria::new(epsilon, delta, threshold) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e}"),
    }
}

/// Small, collision-heavy filter so the vague path, elections, and
/// reports are all exercised hard.
fn build(c: Criteria, seed: u64) -> QuantileFilter {
    QuantileFilterBuilder::new(c)
        .candidate_buckets(8)
        .bucket_len(2)
        .vague_dims(3, 256)
        .seed(seed)
        .build()
}

fn trace(seed: u64, len: usize, keys: u64, hot_pct: u64) -> Vec<(u64, f64)> {
    let mut rng = Rng(seed);
    (0..len)
        .map(|_| {
            let key = rng.below(keys);
            let value = if rng.below(100) < hot_pct { 500.0 } else { 5.0 };
            (key, value)
        })
        .collect()
}

/// Feed `items` through the scalar path and return the report log.
fn scalar_reports(qf: &mut QuantileFilter, items: &[(u64, f64)]) -> Vec<(usize, Report)> {
    let mut log = Vec::new();
    for (i, &(k, v)) in items.iter().enumerate() {
        if let Some(r) = qf.insert(&k, v) {
            log.push((i, r));
        }
    }
    log
}

/// Feed `items` through `insert_batch` in chunks of `chunk` and return the
/// report log with *global* item indices.
fn batch_reports(
    qf: &mut QuantileFilter,
    items: &[(u64, f64)],
    chunk: usize,
) -> Vec<(usize, Report)> {
    let mut log = Vec::new();
    for (c, chunk_items) in items.chunks(chunk.max(1)).enumerate() {
        let base = c * chunk.max(1);
        qf.insert_batch(chunk_items, &mut |i, r| log.push((base + i, r)));
    }
    log
}

fn assert_twins_agree(scalar: &QuantileFilter, batched: &QuantileFilter, keys: u64, regime: &str) {
    let (s, b) = (scalar.stats(), batched.stats());
    assert_eq!(
        s.candidate_hits, b.candidate_hits,
        "{regime}: candidate_hits"
    );
    assert_eq!(
        s.candidate_inserts, b.candidate_inserts,
        "{regime}: inserts"
    );
    assert_eq!(s.vague_visits, b.vague_visits, "{regime}: vague_visits");
    assert_eq!(s.exchanges, b.exchanges, "{regime}: exchanges");
    assert_eq!(s.reports, b.reports, "{regime}: reports");
    for k in 0..keys {
        assert_eq!(
            scalar.query(&k),
            batched.query(&k),
            "{regime}: post-trace Qweight differs for key {k}"
        );
    }
}

#[test]
fn integer_weight_replay_is_bit_identical() {
    // δ = 0.75 ⇒ +3/−1 exactly: the rounder is deterministic, so this
    // regime isolates control-flow and hashing equivalence.
    let c = criteria(5.0, 0.75, 100.0);
    let items = trace(0xABCD, 30_000, 300, 55);
    let mut scalar = build(c, 0x11);
    let mut batched = build(c, 0x11);
    let want = scalar_reports(&mut scalar, &items);
    let got = batch_reports(&mut batched, &items, 256);
    assert!(
        want.len() > 30,
        "only {} reports — trace too tame",
        want.len()
    );
    assert_eq!(got, want, "integer regime: report sequences diverge");
    assert_twins_agree(&scalar, &batched, 300, "integer");
}

#[test]
fn fractional_weight_replay_consumes_rng_identically() {
    // δ = 0.6 ⇒ +1.5 above T: every above-item draws from the rounder's
    // RNG. The batch path must make exactly the same draws in the same
    // order, or the report log and final state drift immediately.
    let c = criteria(5.0, 0.6, 100.0);
    let items = trace(0xF00D, 30_000, 200, 60);
    let mut scalar = build(c, 0x22);
    let mut batched = build(c, 0x22);
    let want = scalar_reports(&mut scalar, &items);
    let got = batch_reports(&mut batched, &items, 512);
    assert!(!want.is_empty(), "fractional trace produced no reports");
    assert_eq!(got, want, "fractional regime: report sequences diverge");
    assert_twins_agree(&scalar, &batched, 200, "fractional");
}

#[test]
fn every_chunking_matches_scalar() {
    // Chunk size must be invisible: singleton chunks, odd sizes, and one
    // whole-trace batch all replay to the same log as scalar insert.
    let c = criteria(5.0, 0.75, 100.0);
    let items = trace(0x5EED, 12_000, 150, 55);
    let mut scalar = build(c, 0x33);
    let want = scalar_reports(&mut scalar, &items);
    for chunk in [1usize, 2, 3, 7, 64, 1000, items.len()] {
        let mut batched = build(c, 0x33);
        let got = batch_reports(&mut batched, &items, chunk);
        assert_eq!(got, want, "chunk size {chunk} diverges from scalar");
        assert_twins_agree(&scalar, &batched, 150, "chunked");
    }
}

#[test]
fn poisoned_values_are_dropped_identically() {
    // NaN/±∞ sprinkled through the trace: scalar insert drops them
    // silently; insert_batch must drop the same items and nothing else
    // (in particular the item *indices* of later reports must still match).
    let c = criteria(5.0, 0.75, 100.0);
    let mut items = trace(0xBAD, 8_000, 100, 55);
    let mut rng = Rng(0xDEAD);
    for _ in 0..400 {
        let at = rng.below(items.len() as u64) as usize;
        let poison = match rng.below(3) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        items[at].1 = poison;
    }
    let mut scalar = build(c, 0x44);
    let mut batched = build(c, 0x44);
    let want = scalar_reports(&mut scalar, &items);
    let got = batch_reports(&mut batched, &items, 333);
    assert_eq!(got, want, "poisoned trace: report sequences diverge");
    assert_twins_agree(&scalar, &batched, 100, "poisoned");
}
