//! The zero-error detector: ground truth for every accuracy experiment.
//!
//! Definition 4 only needs, per key, the pair `(n, n_above)` since the
//! `(ε, δ)`-quantile-vs-T test reduces to a rank comparison
//! (see [`quantile_filter::qweight::QweightTracker`]). That makes exact
//! detection O(1) per item — at the cost of a hash map entry per live key,
//! which is precisely the per-key state explosion sketches exist to avoid.

use crate::OutstandingDetector;
use quantile_filter::qweight::QweightTracker;
use quantile_filter::Criteria;
use std::collections::HashMap;

/// Exact detector over `(n, n_above)` per key.
#[derive(Debug, Clone)]
pub struct ExactDetector {
    criteria: Criteria,
    keys: HashMap<u64, QweightTracker>,
}

impl ExactDetector {
    /// Build with the detection criteria.
    pub fn new(criteria: Criteria) -> Self {
        Self {
            criteria,
            keys: HashMap::new(),
        }
    }

    /// The criteria in force.
    pub fn criteria(&self) -> Criteria {
        self.criteria
    }

    /// Number of live keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Exact current Qweight of a key.
    pub fn qweight(&self, key: u64) -> f64 {
        self.keys
            .get(&key)
            .map(|t| t.qweight(&self.criteria))
            .unwrap_or(0.0)
    }
}

impl OutstandingDetector for ExactDetector {
    fn insert(&mut self, key: u64, value: f64) -> bool {
        let tracker = self.keys.entry(key).or_default();
        tracker.observe(value, &self.criteria);
        if tracker.quantile_exceeds(&self.criteria) {
            tracker.reset();
            return true;
        }
        false
    }

    fn memory_bytes(&self) -> usize {
        // Entry payload (8B key + 16B tracker) plus nominal map overhead.
        self.keys.len() * (8 + 16 + 8)
    }

    fn name(&self) -> String {
        "Exact".into()
    }

    fn reset(&mut self) {
        self.keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn detects_figure1_style_key() {
        // δ = 0.5, T = 3, ε = 0 (Figure 1): user A {1, 5, 9} reported at
        // the third item.
        let c = Criteria::new(0.0, 0.5, 3.0).unwrap();
        let mut d = ExactDetector::new(c);
        assert!(!d.insert(1, 1.0));
        assert!(d.insert(1, 5.0) || d.insert(1, 9.0));
    }

    #[test]
    fn reset_after_report() {
        let mut d = ExactDetector::new(crit());
        let mut reports = 0;
        for _ in 0..12 {
            if d.insert(7, 500.0) {
                reports += 1;
            }
        }
        // +9/item with reset at ≥50 crossing: reports at items 6 and 12.
        assert_eq!(reports, 2);
        assert_eq!(d.qweight(7), 0.0);
    }

    #[test]
    fn independent_keys() {
        let mut d = ExactDetector::new(crit());
        for _ in 0..6 {
            d.insert(1, 500.0);
            d.insert(2, 5.0);
        }
        assert_eq!(d.key_count(), 2);
        assert!(d.qweight(2) < 0.0);
    }

    #[test]
    fn memory_grows_per_key() {
        let mut d = ExactDetector::new(crit());
        for k in 0..1000 {
            d.insert(k, 1.0);
        }
        assert!(d.memory_bytes() >= 1000 * 24);
        d.reset();
        assert_eq!(d.memory_bytes(), 0);
    }

    #[test]
    fn matches_batch_definition_on_random_stream() {
        use rand::prelude::*;
        let c = Criteria::new(2.0, 0.8, 50.0).unwrap();
        let mut d = ExactDetector::new(c);
        let mut rng = StdRng::seed_from_u64(3);
        // Replay against a literal Vec<values> implementation.
        let mut values: HashMap<u64, Vec<f64>> = HashMap::new();
        for _ in 0..20_000 {
            let key = rng.gen_range(0..50u64);
            let v = if rng.gen_bool(0.2) {
                rng.gen_range(60.0..200.0)
            } else {
                rng.gen_range(0.0..40.0)
            };
            let got = d.insert(key, v);
            let vs = values.entry(key).or_default();
            vs.push(v);
            let want = quantile_filter::qweight::quantile_exceeds(vs, &c);
            assert_eq!(got, want, "divergence for key {key} at n={}", vs.len());
            if want {
                vs.clear();
            }
        }
    }
}
