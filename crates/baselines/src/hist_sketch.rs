//! HistSketch-style detector (after He, Zhu & Huang, "HistSketch: A
//! Compact Data Structure for Accurate Per-Key Distribution Monitoring",
//! ICDE 2023).
//!
//! Mechanism reproduced: per-key *compact histograms* over logarithmic
//! value buckets. Keys are promoted into an exact heavy part (a hash map of
//! full histograms) once a shared light sketch estimates them hot; cold
//! keys live only in the light part. Queries reconstruct the histogram and
//! walk it.
//!
//! Faithfully reproduced wart: the heavy part grows with the promoted-key
//! population regardless of the configured budget — on key-rich workloads
//! its real footprint dwarfs the nominal budget, which is the "unbounded
//! and unpredictable space usage … typically demands around 1GB on the
//! Cloud dataset" behaviour in §V-B. [`OutstandingDetector::memory_bytes`]
//! reports the true live usage so the accuracy-vs-memory plots show it.

use crate::value_buckets::{bucket_of, bucket_value, rank_to_bucket, BUCKETS};
use crate::OutstandingDetector;
use qf_hash::{HashFamily, StreamKey};
use quantile_filter::Criteria;
use std::collections::HashMap;

/// Light-part estimated count at which a key is promoted to the heavy part.
const PROMOTION_THRESHOLD: u64 = 4;

/// Depth of the light sketch.
const DEPTH: usize = 2;

/// Per-key exact histogram in the heavy part.
#[derive(Debug, Clone)]
struct Hist {
    counts: [u32; BUCKETS],
    total: u64,
}

impl Hist {
    fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

#[derive(Clone, Copy)]
struct Coord(u64);

impl StreamKey for Coord {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        self.0.hash_with_seed(seed)
    }
}

/// HistSketch-style detector.
pub struct HistSketchDetector {
    criteria: Criteria,
    heavy: HashMap<u64, Hist>,
    light: Vec<u32>,
    width: usize,
    family: HashFamily,
}

impl HistSketchDetector {
    /// Build with a nominal budget sizing the *light* part only; the heavy
    /// part grows with promoted keys (see module docs).
    pub fn new(criteria: Criteria, memory_bytes: usize, seed: u64) -> Self {
        let width = (memory_bytes / (DEPTH * 4)).max(16);
        Self {
            criteria,
            heavy: HashMap::new(),
            light: vec![0u32; DEPTH * width],
            width,
            family: HashFamily::new(DEPTH, width, seed ^ 0x4157),
        }
    }

    /// Number of heavy (promoted) keys.
    pub fn heavy_keys(&self) -> usize {
        self.heavy.len()
    }

    #[inline]
    fn coord(key: u64, bucket: usize) -> Coord {
        Coord((key << 8) ^ bucket as u64)
    }

    #[inline]
    fn light_add(&mut self, key: u64, bucket: usize, delta: i64) {
        let c = Self::coord(key, bucket);
        for row in 0..DEPTH {
            let col = self.family.column(row, &c);
            let cell = &mut self.light[row * self.width + col];
            let v = i64::from(*cell) + delta;
            *cell = v.clamp(0, i64::from(u32::MAX)) as u32;
        }
    }

    #[inline]
    fn light_estimate(&self, key: u64, bucket: usize) -> u64 {
        let c = Self::coord(key, bucket);
        let mut min = u64::MAX;
        for row in 0..DEPTH {
            let col = self.family.column(row, &c);
            min = min.min(u64::from(self.light[row * self.width + col]));
        }
        min
    }

    fn light_histogram(&self, key: u64) -> [u64; BUCKETS] {
        let mut h = [0u64; BUCKETS];
        for (b, slot) in h.iter_mut().enumerate() {
            *slot = self.light_estimate(key, b);
        }
        h
    }

    /// Evaluate the Definition-3 test over a histogram; reports reset it.
    fn check(&self, hist: &[u64; BUCKETS]) -> bool {
        let n: u64 = hist.iter().sum();
        if n == 0 {
            return false;
        }
        let idx = (self.criteria.delta() * n as f64 - self.criteria.epsilon()).floor();
        if idx < 0.0 {
            return false;
        }
        match rank_to_bucket(hist, idx as u64) {
            Some(b) => bucket_value(b) > self.criteria.threshold(),
            None => false,
        }
    }
}

impl OutstandingDetector for HistSketchDetector {
    fn insert(&mut self, key: u64, value: f64) -> bool {
        let bucket = bucket_of(value);

        // The borrow of the heavy entry ends before `check` re-borrows
        // `self`, so the histogram is copied out first.
        let updated: Option<[u64; BUCKETS]> = self.heavy.get_mut(&key).map(|h| {
            h.counts[bucket] += 1;
            h.total += 1;
            std::array::from_fn(|b| u64::from(h.counts[b]))
        });
        if let Some(hist) = updated {
            if self.check(&hist) {
                if let Some(h) = self.heavy.get_mut(&key) {
                    h.counts = [0; BUCKETS];
                    h.total = 0;
                }
                return true;
            }
            return false;
        }

        // Cold key: record in the light part, maybe promote.
        self.light_add(key, bucket, 1);
        let hist = self.light_histogram(key);
        let n: u64 = hist.iter().sum();
        if n >= PROMOTION_THRESHOLD {
            // Promote: move the estimated histogram into an exact one and
            // subtract it from the light part.
            let mut h = Hist::new();
            for (b, &c) in hist.iter().enumerate() {
                h.counts[b] = c.min(u64::from(u32::MAX)) as u32;
                h.total += c;
                if c > 0 {
                    self.light_add(key, b, -(c as i64));
                }
            }
            self.heavy.insert(key, h);
        }
        if self.check(&hist) {
            // Reset the key's light state.
            if let Some(h) = self.heavy.get_mut(&key) {
                h.counts = [0; BUCKETS];
                h.total = 0;
            } else {
                for (b, &c) in hist.iter().enumerate() {
                    if c > 0 {
                        self.light_add(key, b, -(c as i64));
                    }
                }
            }
            return true;
        }
        false
    }

    fn memory_bytes(&self) -> usize {
        // True live usage: light counters + heavy histograms (+ map
        // overhead), the quantity that blows up on key-rich workloads.
        self.light.len() * 4 + self.heavy.len() * (8 + BUCKETS * 4 + 16)
    }

    fn name(&self) -> String {
        "HistSketch".into()
    }

    fn reset(&mut self) {
        self.heavy.clear();
        self.light.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn hot_outstanding_key_detected() {
        let mut d = HistSketchDetector::new(crit(), 64 * 1024, 1);
        let mut reported = false;
        for _ in 0..100 {
            reported |= d.insert(1, 500.0);
        }
        assert!(reported);
    }

    #[test]
    fn promotion_moves_key_to_heavy() {
        let mut d = HistSketchDetector::new(crit(), 64 * 1024, 2);
        for _ in 0..10 {
            d.insert(5, 50.0);
        }
        assert_eq!(d.heavy_keys(), 1);
    }

    #[test]
    fn memory_grows_with_key_population() {
        let mut d = HistSketchDetector::new(crit(), 16 * 1024, 3);
        let base = d.memory_bytes();
        for k in 0..5_000u64 {
            for _ in 0..PROMOTION_THRESHOLD + 1 {
                d.insert(k, 50.0);
            }
        }
        let grown = d.memory_bytes();
        assert!(
            grown > base * 10,
            "heavy part failed to blow up: {base} → {grown}"
        );
    }

    #[test]
    fn quiet_key_not_reported() {
        let mut d = HistSketchDetector::new(crit(), 64 * 1024, 4);
        for _ in 0..500 {
            assert!(!d.insert(9, 5.0));
        }
    }

    #[test]
    fn reset_clears_both_parts() {
        let mut d = HistSketchDetector::new(crit(), 16 * 1024, 5);
        for _ in 0..10 {
            d.insert(1, 500.0);
        }
        d.reset();
        assert_eq!(d.heavy_keys(), 0);
        assert!(!d.insert(1, 5.0));
    }

    #[test]
    fn report_resets_histogram() {
        let mut d = HistSketchDetector::new(crit(), 64 * 1024, 6);
        let mut reports = 0;
        for _ in 0..40 {
            if d.insert(2, 500.0) {
                reports += 1;
            }
        }
        // Multiple reports require the reset to work (otherwise one).
        assert!(reports >= 2, "reports {reports}");
    }
}
