//! SketchPolymer-style detector (after Guo et al., "SketchPolymer:
//! Estimate Per-Item Tail Quantile Using One Sketch", KDD 2023).
//!
//! Mechanism reproduced:
//!
//! * Values are discretized into logarithmic buckets
//!   ([`crate::value_buckets`]); per-(key, bucket) counts live in a shared
//!   Count-Min-style counter matrix, so a quantile query walks
//!   `log(value range)` counters — the paper's stated query cost.
//! * **Early-value discard**: SketchPolymer only records an item's value
//!   once the key has been seen enough times (its design filters the first
//!   arrivals of each key to save space on cold items). We reproduce this
//!   with a per-key admission count; it causes the *systematic recall
//!   ceiling* the QuantileFilter paper observes — bursts confined to a
//!   key's earliest items are never recorded.
//! * Under tight memory, colliding counters inflate every bucket, the
//!   estimated quantile rises and the detector reports nearly everything:
//!   "very low precision but high recall" (§V-B).

use crate::value_buckets::{bucket_of, bucket_value, rank_to_bucket, BUCKETS};
use crate::OutstandingDetector;
use qf_hash::{HashFamily, StreamKey};
use quantile_filter::Criteria;

/// Items of a key skipped before values are recorded (the early-discard).
const ADMISSION_THRESHOLD: u32 = 4;

/// Depth of the shared counter matrix.
const DEPTH: usize = 3;

/// SketchPolymer-style detector.
pub struct SketchPolymerDetector {
    criteria: Criteria,
    /// `DEPTH × width` counters of (key, bucket) counts.
    cells: Vec<u32>,
    width: usize,
    family: HashFamily,
    /// Small admission filter: per-key early counts (CM-min over rows).
    admission: Vec<u8>,
    admission_family: HashFamily,
}

/// Composite (key, bucket) coordinate hashed into the shared matrix.
#[derive(Clone, Copy)]
struct Coord(u64);

impl StreamKey for Coord {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        self.0.hash_with_seed(seed)
    }
}

impl SketchPolymerDetector {
    /// Build inside a byte budget: 7/8 to the value matrix, 1/8 to the
    /// admission filter.
    pub fn new(criteria: Criteria, memory_bytes: usize, seed: u64) -> Self {
        let matrix_bytes = memory_bytes * 7 / 8;
        let width = (matrix_bytes / (DEPTH * 4)).max(1);
        let adm = (memory_bytes / 8).max(16);
        Self {
            criteria,
            cells: vec![0u32; DEPTH * width],
            width,
            family: HashFamily::new(DEPTH, width, seed ^ 0x5B01),
            admission: vec![0u8; adm],
            admission_family: HashFamily::new(2, adm, seed ^ 0x5B02),
        }
    }

    #[inline]
    fn coord(key: u64, bucket: usize) -> Coord {
        Coord((key << 8) ^ bucket as u64 ^ 0xA5A5_0000_0000_0000)
    }

    #[inline]
    fn add(&mut self, key: u64, bucket: usize, delta: i64) {
        let c = Self::coord(key, bucket);
        for row in 0..DEPTH {
            let col = self.family.column(row, &c);
            let cell = &mut self.cells[row * self.width + col];
            let v = i64::from(*cell) + delta;
            *cell = v.clamp(0, i64::from(u32::MAX)) as u32;
        }
    }

    #[inline]
    fn estimate(&self, key: u64, bucket: usize) -> u64 {
        let c = Self::coord(key, bucket);
        let mut min = u64::MAX;
        for row in 0..DEPTH {
            let col = self.family.column(row, &c);
            min = min.min(u64::from(self.cells[row * self.width + col]));
        }
        min
    }

    /// Admission count for the early-discard filter (min over 2 rows,
    /// saturating at `u8::MAX`).
    fn admit(&mut self, key: u64) -> u32 {
        let mut min = u8::MAX;
        for row in 0..2 {
            let col = self.admission_family.column(row, &key);
            let cell = &mut self.admission[col];
            *cell = cell.saturating_add(1);
            min = min.min(*cell);
        }
        u32::from(min)
    }

    /// Reconstruct the key's estimated bucket histogram.
    fn histogram(&self, key: u64) -> [u64; BUCKETS] {
        let mut h = [0u64; BUCKETS];
        for (b, slot) in h.iter_mut().enumerate() {
            *slot = self.estimate(key, b);
        }
        h
    }
}

impl OutstandingDetector for SketchPolymerDetector {
    fn insert(&mut self, key: u64, value: f64) -> bool {
        // Early-value discard: the first ADMISSION_THRESHOLD items of a key
        // bump the admission filter but are never recorded in the matrix.
        if self.admit(key) <= ADMISSION_THRESHOLD {
            return false;
        }
        let bucket = bucket_of(value);
        self.add(key, bucket, 1);

        // Quantile query: walk the log-bucket histogram.
        let hist = self.histogram(key);
        let n: u64 = hist.iter().sum();
        if n == 0 {
            return false;
        }
        let idx = (self.criteria.delta() * n as f64 - self.criteria.epsilon()).floor();
        if idx < 0.0 {
            return false;
        }
        let Some(qb) = rank_to_bucket(&hist, idx as u64) else {
            return false;
        };
        // Report without mutating the matrix: SketchPolymer is a
        // continuous estimator, and subtracting a key's min-estimate
        // histogram from the shared counters would wipe colliding keys'
        // counts under tight memory (collapsing recall, the opposite of
        // the over-reporting regime §V-B describes). Duplicate reports of
        // a key are deduplicated by the evaluation harness.
        bucket_value(qb) > self.criteria.threshold()
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * 4 + self.admission.len()
    }

    fn name(&self) -> String {
        "SketchPolymer".into()
    }

    fn reset(&mut self) {
        self.cells.fill(0);
        self.admission.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn hot_outstanding_key_detected_with_ample_memory() {
        let mut d = SketchPolymerDetector::new(crit(), 1024 * 1024, 1);
        let mut reported = false;
        for _ in 0..100 {
            reported |= d.insert(1, 500.0);
        }
        assert!(reported);
    }

    #[test]
    fn early_values_are_discarded() {
        // A key whose anomaly is confined to its first items is missed —
        // the systematic recall error.
        let mut d = SketchPolymerDetector::new(crit(), 1024 * 1024, 2);
        let mut reported = false;
        for _ in 0..ADMISSION_THRESHOLD {
            reported |= d.insert(7, 500.0);
        }
        assert!(!reported, "early burst must be invisible");
        // Later items below T keep it unreported forever.
        for _ in 0..50 {
            reported |= d.insert(7, 5.0);
        }
        assert!(!reported);
    }

    #[test]
    fn quiet_key_not_reported_with_memory() {
        let mut d = SketchPolymerDetector::new(crit(), 1024 * 1024, 3);
        for _ in 0..500 {
            assert!(!d.insert(2, 5.0));
        }
    }

    #[test]
    fn tiny_memory_over_reports() {
        // Severe collisions inflate histograms: precision collapses (the
        // paper's low-memory SketchPolymer regime). Feed many quiet keys
        // and count false reports.
        let mut d = SketchPolymerDetector::new(crit(), 512, 4);
        let mut hot = 0;
        for i in 0..20_000u64 {
            let key = i % 200;
            // 10% of items above T spread over all keys — no key is truly
            // outstanding (δ = 0.9 needs ~>10%+slack above T).
            let v = if i % 43 == 0 { 500.0 } else { 5.0 };
            if d.insert(key, v) {
                hot += 1;
            }
        }
        assert!(hot > 20, "expected rampant false reports, got {hot}");
    }

    #[test]
    fn memory_accounting_fixed() {
        let d = SketchPolymerDetector::new(crit(), 64 * 1024, 5);
        assert!(d.memory_bytes() <= 64 * 1024);
        assert!(d.memory_bytes() > 32 * 1024);
    }

    #[test]
    fn reset_clears() {
        let mut d = SketchPolymerDetector::new(crit(), 64 * 1024, 6);
        for _ in 0..20 {
            d.insert(1, 500.0);
        }
        d.reset();
        assert_eq!(d.histogram(1).iter().sum::<u64>(), 0);
    }
}
