//! SQUAD-style detector: heavy-hitter tracking + per-key quantile
//! summaries (after Shahout, Friedman & Ben Basat, "Together is Better:
//! Heavy Hitters Quantile Estimation", SIGMOD 2023).
//!
//! Mechanism reproduced: a [`qf_sketch::SpaceSaving`] table identifies the
//! heavy keys; each tracked key carries a GK summary of its values.
//! Answering the online detection task then requires querying the GK
//! summary after every insert — a binary-search "offline query" per item,
//! the cost the paper's §V-C throughput comparison highlights. Accuracy
//! converges to 100% as memory admits more tracked keys (Fig. 4/5
//! behaviour); untracked (cold) keys are invisible, which bounds recall at
//! small memory.

use crate::OutstandingDetector;
use qf_quantiles::{GkSummary, QuantileSummary};
use qf_sketch::SpaceSaving;
use quantile_filter::Criteria;
use std::collections::HashMap;

/// Estimated steady-state bytes per tracked key (SpaceSaving entry + GK
/// summary); used to derive capacity from a byte budget.
const EST_BYTES_PER_KEY: usize = 512;

/// GK rank-error parameter for the per-key summaries.
const GK_EPSILON: f64 = 0.01;

/// SQUAD-style detector.
pub struct SquadDetector {
    criteria: Criteria,
    heavy: SpaceSaving,
    summaries: HashMap<u64, GkSummary>,
}

impl SquadDetector {
    /// Build with a byte budget; the budget determines how many keys can be
    /// tracked.
    pub fn new(criteria: Criteria, memory_bytes: usize, _seed: u64) -> Self {
        let capacity = (memory_bytes / EST_BYTES_PER_KEY).max(1);
        Self {
            criteria,
            heavy: SpaceSaving::new(capacity),
            summaries: HashMap::with_capacity(capacity),
        }
    }

    /// Number of currently tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.heavy.len()
    }

    /// SpaceSaving count over-estimation bound for a tracked key.
    pub fn count_error(&self, key: u64) -> Option<u64> {
        self.heavy.estimate(key).map(|e| e.err)
    }
}

impl OutstandingDetector for SquadDetector {
    fn insert(&mut self, key: u64, value: f64) -> bool {
        // Heavy-hitter admission: an eviction drops the victim's summary.
        if let Some(victim) = self.heavy.observe(key) {
            self.summaries.remove(&victim);
        }
        let summary = self
            .summaries
            .entry(key)
            .or_insert_with(|| GkSummary::new(GK_EPSILON));
        summary.insert(value);

        // The per-item "online" answer requires an offline-style GK query:
        // the (ε, δ)-quantile of the summary vs T.
        let n = summary.count();
        if n == 0 {
            return false;
        }
        let idx = (self.criteria.delta() * n as f64 - self.criteria.epsilon()).floor();
        if idx < 0.0 {
            return false;
        }
        let q = idx / n as f64;
        match summary.query(q) {
            Some(v) if v > self.criteria.threshold() => {
                // Report and reset the value set (Definition 4); the
                // SpaceSaving frequency is retained so the key stays hot.
                summary.clear();
                true
            }
            _ => false,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.heavy.memory_bytes()
            + self
                .summaries
                .values()
                .map(|s| 8 + s.memory_bytes() + 16)
                .sum::<usize>()
    }

    fn name(&self) -> String {
        "SQUAD".into()
    }

    fn reset(&mut self) {
        self.heavy.clear();
        self.summaries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn tracked_hot_key_detected() {
        let mut d = SquadDetector::new(crit(), 256 * 1024, 1);
        let mut reported = false;
        for _ in 0..100 {
            reported |= d.insert(1, 500.0);
        }
        assert!(reported);
    }

    #[test]
    fn quiet_key_not_reported() {
        let mut d = SquadDetector::new(crit(), 256 * 1024, 2);
        for _ in 0..500 {
            assert!(!d.insert(2, 5.0));
        }
    }

    #[test]
    fn report_timing_close_to_exact() {
        // With only above-T values the first report should come at item 6
        // (⌊0.9n − 5⌋ ≥ 0 ⇒ n = 6), exactly as the exact detector.
        let mut d = SquadDetector::new(crit(), 256 * 1024, 3);
        let mut first = None;
        for i in 1..=10 {
            if d.insert(3, 500.0) && first.is_none() {
                first = Some(i);
            }
        }
        assert_eq!(first, Some(6));
    }

    #[test]
    fn capacity_evicts_cold_keys() {
        let c = crit();
        let mut d = SquadDetector::new(c, 2 * EST_BYTES_PER_KEY, 4); // capacity 2
        d.insert(1, 5.0);
        d.insert(2, 5.0);
        d.insert(3, 5.0); // evicts one of the first two
        assert_eq!(d.tracked_keys(), 2);
        // Evicted summaries are dropped with their keys.
        assert_eq!(d.summaries.len(), 2);
    }

    #[test]
    fn small_memory_misses_spread_keys() {
        // 1 tracked key; alternate two hot outstanding keys — SpaceSaving
        // churn must cost detections relative to ample memory.
        let c = crit();
        let mut small = SquadDetector::new(c, EST_BYTES_PER_KEY, 5);
        let mut big = SquadDetector::new(c, 64 * EST_BYTES_PER_KEY, 5);
        let mut small_reports = 0;
        let mut big_reports = 0;
        for i in 0..200 {
            let key = (i % 2) as u64;
            if small.insert(key, 500.0) {
                small_reports += 1;
            }
            if big.insert(key, 500.0) {
                big_reports += 1;
            }
        }
        assert!(
            big_reports > small_reports,
            "big {big_reports} vs small {small_reports}"
        );
    }

    #[test]
    fn memory_reporting_grows_with_keys() {
        let mut d = SquadDetector::new(crit(), 1024 * 1024, 6);
        let empty = d.memory_bytes();
        for k in 0..100 {
            for _ in 0..20 {
                d.insert(k, 50.0);
            }
        }
        assert!(d.memory_bytes() > empty);
        d.reset();
        assert_eq!(d.tracked_keys(), 0);
    }

    #[test]
    fn count_error_exposed() {
        let mut d = SquadDetector::new(crit(), EST_BYTES_PER_KEY, 7); // capacity 1
        d.insert(1, 5.0);
        d.insert(1, 5.0);
        d.insert(2, 5.0); // evicts key 1, inherits err = 2
        assert_eq!(d.count_error(2), Some(2));
        assert_eq!(d.count_error(1), None);
    }
}
