//! Shared logarithmic value-bucket layout used by the SketchPolymer- and
//! HistSketch-style detectors.
//!
//! Both systems discretize values into `log(value range)` buckets; queries
//! then walk the per-key bucket counts to locate a rank. Base-2 buckets
//! over `[2^MIN_EXP, 2^MAX_EXP)` match SketchPolymer's "log(value range)
//! number of counters" query cost.

/// Lowest bucket exponent: values below `2^MIN_EXP` land in bucket 0.
pub const MIN_EXP: i32 = -10;
/// Highest bucket exponent: values at or above `2^MAX_EXP` land in the top
/// bucket.
pub const MAX_EXP: i32 = 40;
/// Number of buckets.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize + 1;

/// Map a value to its bucket index in `[0, BUCKETS)`.
#[inline]
pub fn bucket_of(value: f64) -> usize {
    if value <= 0.0 {
        return 0;
    }
    let e = value.log2().ceil() as i32;
    (e.clamp(MIN_EXP, MAX_EXP) - MIN_EXP) as usize
}

/// Representative value of a bucket: the geometric midpoint of its range.
#[inline]
pub fn bucket_value(bucket: usize) -> f64 {
    let e = bucket as i32 + MIN_EXP;
    // Bucket holds (2^(e-1), 2^e]; midpoint ≈ 2^e / √2.
    2f64.powi(e) / std::f64::consts::SQRT_2
}

/// Given per-bucket counts and a 0-based target rank, return the bucket
/// holding that rank (or the top non-empty bucket if the rank exceeds the
/// total).
pub fn rank_to_bucket(counts: &[u64; BUCKETS], rank: u64) -> Option<usize> {
    let mut acc = 0u64;
    let mut last_nonempty = None;
    for (b, &c) in counts.iter().enumerate() {
        if c > 0 {
            last_nonempty = Some(b);
        }
        acc += c;
        if acc > rank {
            return Some(b);
        }
    }
    last_nonempty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_monotone_in_value() {
        let mut prev = 0;
        for v in [0.001, 0.5, 1.0, 2.0, 100.0, 1e6, 1e12] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket not monotone at {v}");
            prev = b;
        }
    }

    #[test]
    fn zero_and_negative_in_bottom() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-5.0), 0);
    }

    #[test]
    fn huge_values_clamped() {
        assert_eq!(bucket_of(1e300), BUCKETS - 1);
    }

    #[test]
    fn representative_within_bucket_range() {
        for v in [0.5, 3.0, 100.0, 5e4] {
            let b = bucket_of(v);
            let rep = bucket_value(b);
            // Representative within a factor 2 of any member value.
            assert!(rep / v < 2.0 && v / rep < 2.0, "v={v} rep={rep}");
        }
    }

    #[test]
    fn rank_walk_finds_bucket() {
        let mut counts = [0u64; BUCKETS];
        counts[3] = 5;
        counts[10] = 5;
        assert_eq!(rank_to_bucket(&counts, 0), Some(3));
        assert_eq!(rank_to_bucket(&counts, 4), Some(3));
        assert_eq!(rank_to_bucket(&counts, 5), Some(10));
        assert_eq!(rank_to_bucket(&counts, 9), Some(10));
        // Rank past the total: top non-empty bucket.
        assert_eq!(rank_to_bucket(&counts, 100), Some(10));
    }

    #[test]
    fn empty_counts_give_none() {
        let counts = [0u64; BUCKETS];
        assert_eq!(rank_to_bucket(&counts, 0), None);
    }
}
