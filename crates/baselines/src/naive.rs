//! Adapter exposing the §II-D naive dual-Csketch solution as an
//! [`OutstandingDetector`].

use crate::OutstandingDetector;
use quantile_filter::{Criteria, NaiveDualCsketch};

/// The naive two-sketch detector.
pub struct NaiveDetector {
    inner: NaiveDualCsketch<i32>,
}

impl NaiveDetector {
    /// Build inside a byte budget, splitting 3:1 in favour of the below-`T`
    /// sketch (below-threshold traffic dominates at the paper's ~5%
    /// abnormal-item rate).
    pub fn new(criteria: Criteria, memory_bytes: usize, seed: u64) -> Self {
        Self {
            inner: NaiveDualCsketch::with_memory_budget(criteria, 3, memory_bytes, 0.75, seed),
        }
    }
}

impl OutstandingDetector for NaiveDetector {
    #[inline]
    fn insert(&mut self, key: u64, value: f64) -> bool {
        self.inner.insert(&key, value)
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn name(&self) -> String {
        "NaiveDualCS".into()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_detects_hot_outstanding_key() {
        let c = Criteria::new(5.0, 0.9, 100.0).unwrap();
        let mut d = NaiveDetector::new(c, 64 * 1024, 1);
        let mut reported = false;
        for _ in 0..50 {
            reported |= d.insert(3, 500.0);
        }
        assert!(reported);
        d.reset();
        assert!(!d.insert(3, 5.0));
    }

    #[test]
    fn budget_respected() {
        let c = Criteria::new(5.0, 0.9, 100.0).unwrap();
        let d = NaiveDetector::new(c, 48 * 1024, 2);
        assert!(d.memory_bytes() <= 48 * 1024);
    }
}
