//! [`OutstandingDetector`] adapters for QuantileFilter and its variants, so
//! the eval harness can sweep all structures through one interface.

use crate::OutstandingDetector;
use qf_sketch::{CountMinSketch, CountSketch, WeightSketch};
use quantile_filter::{
    Criteria, ElectionStrategy, QuantileFilter, QuantileFilterBuilder, QweightSketch,
};

/// QuantileFilter as an [`OutstandingDetector`], with a configurable vague
/// sketch (CS default, CMS for the Fig. 12 ablation).
pub struct QfDetector<S: WeightSketch = CountSketch<i8>> {
    inner: QuantileFilter<S>,
    label: String,
}

impl QfDetector<CountSketch<i8>> {
    /// Paper-default configuration inside a byte budget: b = 6, d = 3,
    /// candidate:vague = 4:1, comparative election, CS vague part.
    pub fn paper_default(criteria: Criteria, memory_bytes: usize, seed: u64) -> Self {
        Self {
            inner: QuantileFilterBuilder::new(criteria)
                .memory_budget_bytes(memory_bytes)
                .seed(seed)
                .build(),
            label: "QuantileFilter".into(),
        }
    }

    /// Fully parameterized CS-vague variant (used by the Fig. 9–12 sweeps).
    #[allow(clippy::too_many_arguments)]
    pub fn with_params(
        criteria: Criteria,
        memory_bytes: usize,
        bucket_len: usize,
        vague_depth: usize,
        candidate_fraction: f64,
        strategy: ElectionStrategy,
        seed: u64,
    ) -> Self {
        Self {
            inner: QuantileFilterBuilder::new(criteria)
                .memory_budget_bytes(memory_bytes)
                .bucket_len(bucket_len)
                .vague_depth(vague_depth)
                .candidate_fraction(candidate_fraction)
                .strategy(strategy)
                .seed(seed)
                .build(),
            label: format!("QF({}+CS)", strategy.label()),
        }
    }
}

impl QfDetector<CountMinSketch<i32>> {
    /// CMS-vague variant for the Fig. 12 ablation.
    pub fn with_cms(
        criteria: Criteria,
        memory_bytes: usize,
        vague_depth: usize,
        candidate_fraction: f64,
        strategy: ElectionStrategy,
        seed: u64,
    ) -> Self {
        let vague_bytes = ((memory_bytes as f64 * (1.0 - candidate_fraction)) as usize).max(16);
        let sketch = CountMinSketch::with_memory_budget(vague_depth, vague_bytes, seed ^ 0x7A63);
        Self {
            inner: QuantileFilterBuilder::new(criteria)
                .memory_budget_bytes(memory_bytes)
                .candidate_fraction(candidate_fraction)
                .strategy(strategy)
                .seed(seed)
                .build_with_sketch(sketch),
            label: format!("QF({}+CMS)", strategy.label()),
        }
    }
}

impl<S: WeightSketch> QfDetector<S> {
    /// Borrow the wrapped filter.
    pub fn filter(&self) -> &QuantileFilter<S> {
        &self.inner
    }

    /// Mutable access (e.g. for dynamic criteria experiments).
    pub fn filter_mut(&mut self) -> &mut QuantileFilter<S> {
        &mut self.inner
    }
}

impl<S: WeightSketch> OutstandingDetector for QfDetector<S> {
    #[inline]
    fn insert(&mut self, key: u64, value: f64) -> bool {
        self.inner.insert(&key, value).is_some()
    }

    fn insert_batch(&mut self, items: &[(u64, f64)], reported: &mut Vec<u64>) {
        self.inner
            .insert_batch(items, &mut |i, _report| reported.push(items[i].0));
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// The Algorithm-1 (vague-only) estimator as a detector — quantifies what
/// candidate election adds.
pub struct Algorithm1Detector {
    inner: QweightSketch<i32>,
}

impl Algorithm1Detector {
    /// Build within a byte budget at depth `d = 3`.
    pub fn new(criteria: Criteria, memory_bytes: usize, seed: u64) -> Self {
        Self {
            inner: QweightSketch::with_memory_budget(criteria, 3, memory_bytes, seed),
        }
    }
}

impl OutstandingDetector for Algorithm1Detector {
    #[inline]
    fn insert(&mut self, key: u64, value: f64) -> bool {
        self.inner.insert(&key, value).is_some()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn name(&self) -> String {
        "Algorithm1(CS only)".into()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactDetector;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn qf_detector_reports_like_exact_on_hot_key() {
        let mut qf = QfDetector::paper_default(crit(), 64 * 1024, 1);
        let mut exact = ExactDetector::new(crit());
        for i in 0..100 {
            let v = if i % 2 == 0 { 500.0 } else { 5.0 };
            let a = qf.insert(42, v);
            let b = exact.insert(42, v);
            assert_eq!(a, b, "divergence at item {i}");
        }
    }

    #[test]
    fn memory_within_budget() {
        let qf = QfDetector::paper_default(crit(), 32 * 1024, 2);
        assert!(qf.memory_bytes() <= 32 * 1024);
        assert!(qf.memory_bytes() > 16 * 1024, "budget badly underused");
    }

    #[test]
    fn cms_variant_constructs_and_detects() {
        let mut qf = QfDetector::with_cms(crit(), 32 * 1024, 3, 0.8, ElectionStrategy::Forceful, 3);
        let mut reported = false;
        for _ in 0..100 {
            reported |= qf.insert(1, 500.0);
        }
        assert!(reported);
        assert!(qf.name().contains("CMS"));
    }

    #[test]
    fn algorithm1_detector_works() {
        let mut a1 = Algorithm1Detector::new(crit(), 16 * 1024, 4);
        let mut reported = false;
        for _ in 0..100 {
            reported |= a1.insert(9, 500.0);
        }
        assert!(reported);
    }
}
