//! Baseline detectors for the QuantileFilter evaluation (§V comparators).
//!
//! Every detector implements [`OutstandingDetector`]: stream in items,
//! get back per-item "report this key now" decisions, exactly the online
//! task of Definition 4. The set:
//!
//! * [`exact::ExactDetector`] — zero-error ground truth via two counters
//!   per key (the oracle all accuracy metrics compare against).
//! * [`qf::QfDetector`] — adapter over [`quantile_filter::QuantileFilter`].
//! * [`naive::NaiveDetector`] — the §II-D dual-Csketch strawman.
//! * [`squad::SquadDetector`] — SQUAD-style: SpaceSaving heavy-hitter
//!   tracking with a per-tracked-key GK summary, queried after every
//!   insert (the "offline query" cost model).
//! * [`sketch_polymer::SketchPolymerDetector`] — SketchPolymer-style:
//!   shared log-bucket histograms in a counter matrix, with the
//!   early-value discard that causes its systematic recall ceiling.
//! * [`hist_sketch::HistSketchDetector`] — HistSketch-style: exact per-key
//!   compact histograms for promoted keys over a shared light sketch; its
//!   heavy part grows with the key population (the "unbounded and
//!   unpredictable space usage" the paper observes).
//!
//! The SOTA detectors are re-implementations of each system's *mechanism*
//! from the published descriptions, not line-by-line ports; DESIGN.md §4
//! records the correspondence argument.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod exact;
pub mod hist_sketch;
pub mod naive;
pub mod qf;
pub mod sketch_polymer;
pub mod squad;
pub mod value_buckets;

pub use exact::ExactDetector;
pub use hist_sketch::HistSketchDetector;
pub use naive::NaiveDetector;
pub use qf::QfDetector;
pub use sketch_polymer::SketchPolymerDetector;
pub use squad::SquadDetector;

/// An online quantile-outstanding-key detector (Definition 4).
pub trait OutstandingDetector {
    /// Process one item; `true` means "key reported now" (and the
    /// detector's state for the key has been reset per Definition 4).
    fn insert(&mut self, key: u64, value: f64) -> bool;

    /// Process a batch of items in order, appending each reported key to
    /// `reported` (one entry per report, in report order — duplicates are
    /// the caller's to handle, matching the per-item `insert` contract).
    ///
    /// The default simply loops [`Self::insert`]; detectors with a native
    /// batch path (QuantileFilter's prefetching `insert_batch`) override it
    /// with a behaviorally identical but faster implementation. The method
    /// is object-safe, so `Box<dyn OutstandingDetector>` banks keep working.
    fn insert_batch(&mut self, items: &[(u64, f64)], reported: &mut Vec<u64>) {
        for &(key, value) in items {
            if self.insert(key, value) {
                reported.push(key);
            }
        }
    }

    /// Current structure size in bytes (the paper's memory axis). For
    /// fixed-size sketches this is the configured budget; for growing
    /// structures (exact, SQUAD, HistSketch heavy part) it is live usage.
    fn memory_bytes(&self) -> usize;

    /// Display name for experiment logs.
    fn name(&self) -> String;

    /// Clear all state.
    fn reset(&mut self);
}
