//! Litmus tests for the qf-model explorer (model builds only).
//!
//! Each test is a tiny concurrency kernel with a known verdict under
//! the C11 memory model: the explorer must find the weak-memory
//! outcome when the orderings permit it, and must prove its absence
//! when they forbid it. Together these pin the semantics the three
//! protocol harnesses (ring / seqlock / generation fencing) rely on.
//!
//! Run with `RUSTFLAGS='--cfg qf_model' cargo test -p qf-model`.
#![cfg(qf_model)]

use qf_model::sync::atomic::{fence, AtomicU64, Ordering};
use qf_model::sync::cell::RaceCell;
use qf_model::sync::thread;
use qf_model::sync::Mutex;
use qf_model::{model, try_model, Checker};
use std::sync::Arc;

/// Message passing with Relaxed publish: the reader may observe the
/// flag yet still read stale data. The explorer must find that
/// interleaving-plus-visibility and report the seeded assertion.
#[test]
fn mp_relaxed_publish_is_caught() {
    let v = try_model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(1, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 1, "stale data past flag");
        }
        t.join().unwrap();
    });
    let v = v.expect_err("relaxed message passing must be refutable");
    assert!(v.message.contains("stale data past flag"), "{}", v.message);
}

/// The same kernel with a Release store / Acquire load pair is
/// correct: the explorer must exhaust every interleaving without
/// finding a stale read.
#[test]
fn mp_release_acquire_verified() {
    let stats = Checker::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(1, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 1);
            }
            t.join().unwrap();
        })
        .expect("release/acquire message passing is correct");
    // The racy flag read must have been explored both ways.
    assert!(
        stats.executions > 1,
        "explored {} executions",
        stats.executions
    );
}

/// Store buffering: with only Release/Acquire both threads may read
/// zero (the classic non-SC outcome). The explorer must find it.
#[test]
fn sb_without_sc_fences_is_caught() {
    let v = try_model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Release);
            y2.load(Ordering::Acquire)
        });
        y.store(1, Ordering::Release);
        let r1 = x.load(Ordering::Acquire);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "both threads read zero");
    });
    let v = v.expect_err("store buffering must exhibit the non-SC outcome");
    assert!(
        v.message.contains("both threads read zero"),
        "{}",
        v.message
    );
}

/// Store buffering sealed with SeqCst fences (the ring's park/wake
/// Dekker handshake): at least one side must see the other's store,
/// in *every* interleaving.
#[test]
fn sb_with_sc_fences_verified() {
    model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let r1 = x.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "SC fences forbid both-zero");
    });
}

/// An unsynchronized plain-memory write/read pair is a data race and
/// must be reported as one, independent of any assertion.
#[test]
fn unsynchronized_cell_race_is_caught() {
    let v = try_model(|| {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            // Safety: deliberately racy — the model must intervene.
            unsafe { c2.with_mut(|p| *p = 7) };
        });
        // Safety: deliberately racy — the model must intervene.
        let _ = unsafe { cell.with(|p| *p) };
        t.join().unwrap();
    });
    let v = v.expect_err("unsynchronized cell access must race");
    assert!(v.message.contains("data race"), "{}", v.message);
}

/// The same cell published through a Release/Acquire flag is race-free
/// — the acquire edge must carry the writer's clock.
#[test]
fn release_acquire_publication_is_race_free() {
    model(|| {
        let cell = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            // Safety: exclusive until the Release store below.
            unsafe { c2.with_mut(|p| *p = 7) };
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            // Safety: ordered after the write by the acquire edge.
            let got = unsafe { cell.with(|p| *p) };
            assert_eq!(got, 7);
        }
        t.join().unwrap();
    });
}

/// Two RMWs on one location never lose an update (RMW atomicity:
/// each reads the newest store).
#[test]
fn rmw_increments_never_lost() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost increment");
    });
}

/// A park with no pending unpark and no future waker is a lost-wakeup
/// deadlock; the explorer must report it rather than hang.
#[test]
fn lost_wakeup_deadlock_is_caught() {
    let v = try_model(|| {
        let t = thread::spawn(|| {
            thread::park();
        });
        t.join().unwrap();
    });
    let v = v.expect_err("parking with no waker must deadlock");
    assert!(v.message.contains("deadlock"), "{}", v.message);
}

/// Unpark-then-park consumes the token and completes: the model keeps
/// `std::thread::park`'s token semantics.
#[test]
fn unpark_token_prevents_deadlock() {
    model(|| {
        let me = thread::current();
        me.unpark();
        thread::park();
    });
}

/// Mutual exclusion: increments under the model mutex never race and
/// never lose updates, and the lock edges order the plain-memory
/// accesses (no data-race report either).
#[test]
fn mutex_provides_exclusion_and_ordering() {
    model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        t.join().unwrap();
        assert_eq!(*m.lock(), 2);
    });
}

/// A spin loop waiting on a flag terminates under the yield-fairness
/// rule (the spinner cannot starve the writer), so the exploration is
/// finite and succeeds.
#[test]
fn spin_wait_terminates_under_fairness() {
    model(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            qf_model::sync::hint::spin_loop();
        }
        t.join().unwrap();
    });
}

/// The preemption bound caps the schedule search without losing the
/// seeded bug here (it needs zero preemptions beyond blocking).
#[test]
fn preemption_bound_still_finds_bugs() {
    let v = Checker::new().preemption_bound(2).check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(1, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 1, "stale data past flag");
        }
        t.join().unwrap();
    });
    assert!(v.is_err(), "bounded search must still catch the MP bug");
}

/// Three-thread independent-writer kernel: state hashing must prune
/// the commuting interleavings, keeping the execution count well
/// under the naive factorial bound while still verifying the result.
#[test]
fn state_hashing_prunes_commuting_schedules() {
    let stats = Checker::new()
        .check(|| {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || a2.store(1, Ordering::Relaxed));
            let t2 = thread::spawn(move || b2.store(1, Ordering::Relaxed));
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed), 2);
        })
        .expect("independent writers are correct");
    assert!(
        stats.pruned_duplicate > 0,
        "expected duplicate-state pruning to fire (stats: {stats:?})"
    );
}
