//! Observational equivalence of the qf-sync shim in real builds.
//!
//! The ISSUE-8 satellite: in `cfg(not(qf_model))` builds the shim must
//! be indistinguishable from `std::sync::atomic` — same results, same
//! final state, for arbitrary single-threaded op sequences (the
//! multi-threaded case is exactly what the model build explores; here
//! we pin the pass-through). Also covers `RaceCell` and the
//! poison-tolerant `Mutex` wrapper.
#![cfg(not(qf_model))]

use proptest::collection;
use proptest::prop_assert_eq;
use qf_model::sync::atomic::{AtomicU64, Ordering};
use qf_model::sync::cell::RaceCell;
use qf_model::sync::Mutex;

/// Decode one generated `(kind, a, b)` triple into an atomic op, apply
/// it, and return the observable result.
fn apply_shim(at: &AtomicU64, kind: u64, a: u64, b: u64) -> Result<u64, u64> {
    match kind % 7 {
        0 => Ok(at.load(Ordering::SeqCst)),
        1 => {
            at.store(a, Ordering::SeqCst);
            Ok(0)
        }
        2 => Ok(at.swap(a, Ordering::SeqCst)),
        3 => Ok(at.fetch_add(a, Ordering::SeqCst)),
        4 => Ok(at.fetch_sub(a, Ordering::SeqCst)),
        5 => at.compare_exchange(a, b, Ordering::SeqCst, Ordering::SeqCst),
        _ => at.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |x| x.checked_add(a)),
    }
}

fn apply_std(at: &std::sync::atomic::AtomicU64, kind: u64, a: u64, b: u64) -> Result<u64, u64> {
    use std::sync::atomic::Ordering::SeqCst;
    match kind % 7 {
        0 => Ok(at.load(SeqCst)),
        1 => {
            at.store(a, SeqCst);
            Ok(0)
        }
        2 => Ok(at.swap(a, SeqCst)),
        3 => Ok(at.fetch_add(a, SeqCst)),
        4 => Ok(at.fetch_sub(a, SeqCst)),
        5 => at.compare_exchange(a, b, SeqCst, SeqCst),
        _ => at.fetch_update(SeqCst, SeqCst, |x| x.checked_add(a)),
    }
}

proptest::proptest! {
    /// Every op sequence yields identical results and final state on
    /// the shim atomic and the std atomic it claims to be.
    #[test]
    fn atomic_u64_matches_std(
        init in 0u64..=u64::MAX,
        ops in collection::vec((0u64..7, 0u64..=u64::MAX, 0u64..=u64::MAX), 0..64),
    ) {
        let shim = AtomicU64::new(init);
        let real = std::sync::atomic::AtomicU64::new(init);
        for (kind, a, b) in &ops {
            prop_assert_eq!(
                apply_shim(&shim, *kind, *a, *b),
                apply_std(&real, *kind, *a, *b)
            );
        }
        prop_assert_eq!(
            shim.load(Ordering::SeqCst),
            real.load(std::sync::atomic::Ordering::SeqCst)
        );
    }

    /// RaceCell round-trips arbitrary values through `with_mut`/`with`
    /// exactly like a plain value (single-threaded pass-through).
    #[test]
    fn race_cell_round_trips(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let cell = RaceCell::new(a);
        // Safety: single-threaded test — exclusive by construction.
        let read = unsafe { cell.with(|p| *p) };
        prop_assert_eq!(read, a);
        // Safety: as above.
        unsafe { cell.with_mut(|p| *p = b) };
        // Safety: as above.
        let read = unsafe { cell.with(|p| *p) };
        prop_assert_eq!(read, b);
    }

    /// The shim mutex agrees with `std::sync::Mutex` over a sequence
    /// of guarded mutations.
    #[test]
    fn mutex_matches_std(
        init in 0u64..=u64::MAX,
        deltas in collection::vec(0u64..=u64::MAX, 0..32),
    ) {
        let shim = Mutex::new(init);
        let real = std::sync::Mutex::new(init);
        for d in &deltas {
            let mut g = shim.lock();
            *g = g.wrapping_add(*d);
            drop(g);
            let mut g = real.lock().unwrap();
            *g = g.wrapping_add(*d);
            drop(g);
            prop_assert_eq!(*shim.lock(), *real.lock().unwrap());
        }
    }
}

/// The shim mutex recovers the inner value after a poisoning panic
/// instead of propagating the poison — the policy `ShardRecovery`
/// depends on.
#[test]
fn mutex_lock_survives_poison() {
    let m = std::sync::Arc::new(Mutex::new(41u64));
    let m2 = std::sync::Arc::clone(&m);
    let _ = std::thread::spawn(move || {
        let _guard = m2.lock();
        panic!("poison the lock");
    })
    .join();
    *m.lock() += 1;
    assert_eq!(*m.lock(), 42);
}
