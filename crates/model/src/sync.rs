//! The qf-sync shim: the one `use` surface the lock-free protocols
//! compile against.
//!
//! Real builds (`cfg(not(qf_model))`): every item is a zero-cost
//! re-export of, or `#[inline(always)]` transparent wrapper over, the
//! `std` primitive — no behavior or codegen change (see the
//! `shim_equiv` proptest suite). Model builds (`--cfg qf_model`): the
//! same names resolve to the instrumented primitives in [`crate::rt`],
//! so the *unchanged* protocol source is explored exhaustively.

/// Atomic integers, `Ordering`, and `fence`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(qf_model))]
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(qf_model)]
    pub use crate::rt::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
}

/// Spin-wait hint.
pub mod hint {
    /// `std::hint::spin_loop`, or a model yield point under `qf_model`
    /// (a spin that the scheduler can deprioritize, so busy-wait loops
    /// don't explode the interleaving tree).
    #[cfg(not(qf_model))]
    #[inline(always)]
    pub fn spin_loop() {
        std::hint::spin_loop();
    }

    #[cfg(qf_model)]
    pub use crate::rt::thread::spin_loop;
}

/// Non-atomic payload cells whose cross-thread handoff is protected by
/// the surrounding atomic protocol.
pub mod cell {
    #[cfg(not(qf_model))]
    use std::cell::UnsafeCell;

    /// An `UnsafeCell` whose accesses the model checker race-checks
    /// with vector clocks (the analog of `loom::cell::UnsafeCell`).
    ///
    /// In real builds this is `#[repr(transparent)]` over
    /// `UnsafeCell<T>` and both accessors compile to a bare pointer
    /// pass-through. In model builds every access is checked for a
    /// happens-before edge against all prior conflicting accesses, so
    /// a protocol that publishes the cell with too-weak an ordering
    /// fails with a reported data race instead of silent tearing.
    #[cfg(not(qf_model))]
    #[repr(transparent)]
    pub struct RaceCell<T>(UnsafeCell<T>);

    // Safety: RaceCell is a raw shared-mutability cell. Callers
    // promise, via the `unsafe` contract on `with`/`with_mut`, that
    // their protocol synchronizes conflicting accesses — the same
    // argument an `unsafe impl Sync` on a hand-rolled `UnsafeCell`
    // wrapper would make, centralized here once.
    #[cfg(not(qf_model))]
    unsafe impl<T: Send> Send for RaceCell<T> {}
    // SAFETY: as for Send above — shared access is sound only under the
    // caller-promised protocol, which is the `with`/`with_mut` contract.
    #[cfg(not(qf_model))]
    unsafe impl<T: Send> Sync for RaceCell<T> {}

    #[cfg(not(qf_model))]
    impl<T> RaceCell<T> {
        /// Wrap a value.
        #[inline(always)]
        pub const fn new(value: T) -> Self {
            RaceCell(UnsafeCell::new(value))
        }

        /// Immutable (read) access.
        ///
        /// # Safety
        /// Caller must guarantee no concurrent mutable access, exactly
        /// as for dereferencing `UnsafeCell::get` — the surrounding
        /// protocol's happens-before edges are the argument.
        #[inline(always)]
        pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable (write) access.
        ///
        /// # Safety
        /// Caller must guarantee exclusive access for the duration of
        /// `f`, exactly as for dereferencing `UnsafeCell::get`.
        #[inline(always)]
        pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }

    #[cfg(qf_model)]
    pub use crate::rt::cell::RaceCell;
}

/// Thread parking, yielding, spawn, and the `Thread` unpark handle.
pub mod thread {
    #[cfg(not(qf_model))]
    pub use std::thread::{current, park, spawn, yield_now, JoinHandle, Thread};

    #[cfg(qf_model)]
    pub use crate::rt::thread::{current, park, spawn, yield_now, JoinHandle, Thread};
}

#[cfg(not(qf_model))]
mod mutex_real {
    use std::sync::Mutex as StdMutex;

    pub use std::sync::MutexGuard;

    /// A `std::sync::Mutex` whose `lock` tolerates poisoning by
    /// continuing with the inner data (`PoisonError::into_inner`).
    ///
    /// Every mutex in the supervised pipeline wants exactly this
    /// policy: a worker panic that lands mid-commit must not wedge the
    /// router — the recovery data under the lock is still the best
    /// information available (see `ShardRecovery::lock`). Centralizing
    /// it here also gives the model build one lock type to instrument.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(StdMutex<T>);

    impl<T> Mutex<T> {
        /// Wrap a value.
        #[inline(always)]
        pub const fn new(value: T) -> Self {
            Mutex(StdMutex::new(value))
        }

        /// Lock, continuing through poisoning.
        #[inline(always)]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            match self.0.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }
}

#[cfg(not(qf_model))]
pub use mutex_real::{Mutex, MutexGuard};

#[cfg(qf_model)]
pub use crate::rt::mutex::{Mutex, MutexGuard};
