//! Race-checked payload cell (model builds only).

use crate::rt::with_ctx;
use std::cell::UnsafeCell;

/// Model-instrumented `UnsafeCell`: every access is a schedule point
/// and is checked, via vector clocks, for a happens-before edge
/// against all prior conflicting accesses. A protocol that publishes
/// the cell with too weak an ordering shows up as a reported data race
/// — the model's stand-in for real-world tearing.
#[derive(Debug)]
pub struct RaceCell<T>(UnsafeCell<T>);

// Safety: RaceCell is a raw shared-mutability cell. Callers promise,
// via the `unsafe` contract on `with`/`with_mut`, that their protocol
// synchronizes conflicting accesses — and in model builds every access
// is additionally race-checked by the explorer.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as for Send above — shared access is sound only under the
// caller-promised protocol, and the explorer race-checks every access.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RaceCell(UnsafeCell::new(value))
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Immutable (read) access.
    ///
    /// # Safety
    /// As for `UnsafeCell::get`: the caller's protocol must exclude
    /// concurrent mutable access. The model *checks* that claim.
    pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let _ = with_ctx(|ex, tid| {
            ex.op(tid, |g| g.cell_access(tid, self.addr(), false));
        });
        f(self.0.get())
    }

    /// Mutable (write) access.
    ///
    /// # Safety
    /// As for `UnsafeCell::get`: the caller's protocol must guarantee
    /// exclusivity. The model *checks* that claim.
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let _ = with_ctx(|ex, tid| {
            ex.op(tid, |g| g.cell_access(tid, self.addr(), true));
        });
        f(self.0.get())
    }
}

impl<T> Drop for RaceCell<T> {
    fn drop(&mut self) {
        let addr = self.addr();
        let _ = with_ctx(|ex, _tid| {
            ex.raw_inner(|g| g.forget_cell(addr));
        });
    }
}
