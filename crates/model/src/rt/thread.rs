//! Model threads: spawn/join, park/unpark, yield (model builds only).
//!
//! Model threads are real OS threads serialized by the explorer's
//! turnstile. Spawn registers the child with the scheduler (inheriting
//! the parent's view and clock — the spawn edge); join is a blocking
//! schedule point that absorbs the child's final view/clock (the join
//! edge). Park/unpark use a token exactly like `std::thread::park`,
//! with an unpark→park-return happens-before edge, and a thread parked
//! with no outstanding token is *blocked* — which is how lost-wakeup
//! bugs surface as reported deadlocks.

use crate::rt::{with_ctx, Block, ExecAbort, Execution, CTX};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

/// Unpark handle for a thread (model or OS).
#[derive(Debug, Clone)]
pub struct Thread {
    inner: ThreadInner,
}

#[derive(Debug, Clone)]
enum ThreadInner {
    Model { exec: Arc<Execution>, tid: usize },
    Os(std::thread::Thread),
}

impl Thread {
    /// Wake (or pre-token) the thread, as `std::thread::Thread::unpark`.
    pub fn unpark(&self) {
        match &self.inner {
            ThreadInner::Model { exec, tid } => {
                let target = *tid;
                let modeled = with_ctx(|ex, me| {
                    debug_assert!(Arc::ptr_eq(ex, exec), "unpark across executions");
                    ex.op(me, |g| g.unpark(me, target));
                });
                // During teardown unwind there is nothing to wake.
                let _ = modeled;
            }
            ThreadInner::Os(t) => t.unpark(),
        }
    }
}

/// Handle for the calling thread, as `std::thread::current`.
pub fn current() -> Thread {
    let model = CTX.with(|c| c.borrow().as_ref().map(|(ex, tid)| (Arc::clone(ex), *tid)));
    match model {
        Some((exec, tid)) => Thread {
            inner: ThreadInner::Model { exec, tid },
        },
        None => Thread {
            inner: ThreadInner::Os(std::thread::current()),
        },
    }
}

/// Block until unparked, as `std::thread::park` (no spurious wakeups
/// in the model — code must not rely on them, only tolerate them).
pub fn park() {
    let modeled = with_ctx(|ex, tid| {
        ex.blocking_op(tid, |g| g.try_park(tid));
    });
    if modeled.is_none() {
        std::thread::park();
    }
}

/// Yield: a schedule point at which the explorer must run another
/// thread (if any is runnable) before this one continues.
pub fn yield_now() {
    let modeled = with_ctx(|ex, tid| {
        ex.op(tid, |g| g.note_yield(tid));
    });
    if modeled.is_none() {
        std::thread::yield_now();
    }
}

/// Spin hint: same scheduling treatment as [`yield_now`] — a spin
/// iteration must let the other thread make progress, or the DFS
/// would explore unbounded self-spins.
pub fn spin_loop() {
    let modeled = with_ctx(|ex, tid| {
        ex.op(tid, |g| g.note_yield(tid));
    });
    if modeled.is_none() {
        std::hint::spin_loop();
    }
}

/// Join handle, as `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: JoinInner<T>,
}

enum JoinInner<T> {
    Model {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
        os: Option<std::thread::JoinHandle<()>>,
    },
    Os(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Wait (in model time) for the thread and take its result.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            JoinInner::Model {
                exec,
                tid,
                result,
                os,
            } => {
                let target = tid;
                let modeled = with_ctx(|ex, me| {
                    debug_assert!(Arc::ptr_eq(ex, &exec), "join across executions");
                    ex.blocking_op(me, |g| {
                        if g.is_finished(target) {
                            g.absorb_finished(me, target);
                            Ok(())
                        } else {
                            Err(Block::Join(target))
                        }
                    });
                });
                if modeled.is_some() {
                    // The model thread has finished; its OS thread is
                    // exiting — reap it so threads don't accumulate
                    // across the many executions of an exploration.
                    if let Some(h) = os {
                        let _ = h.join();
                    }
                }
                let taken = {
                    let mut slot = match result.lock() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                    slot.take()
                };
                match taken {
                    Some(r) => r,
                    // Aborted execution: the child unwound without
                    // storing a result. Propagate the abort.
                    None => std::panic::panic_any(ExecAbort),
                }
            }
            JoinInner::Os(h) => h.join(),
        }
    }
}

/// Spawn a thread, as `std::thread::spawn`. On a model thread this
/// registers a model thread with the explorer; elsewhere it is the
/// real `std` spawn.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let model = CTX.with(|c| c.borrow().as_ref().map(|(ex, tid)| (Arc::clone(ex), *tid)));
    let Some((exec, parent)) = model else {
        return JoinHandle {
            inner: JoinInner::Os(std::thread::spawn(f)),
        };
    };
    // Registering the child is itself an operation of the parent (a
    // schedule point): the child becomes runnable once registered.
    let tid = exec.op(parent, |g| g.register_thread(parent));
    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::default();
    let os = {
        let exec = Arc::clone(&exec);
        let result = Arc::clone(&result);
        std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
            let r = catch_unwind(AssertUnwindSafe(f));
            let panic_msg = match &r {
                Ok(_) => None,
                Err(p) if p.downcast_ref::<ExecAbort>().is_some() => None,
                Err(p) => Some(
                    p.downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&'static str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "<non-string panic payload>".to_string()),
                ),
            };
            {
                let mut slot = match result.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                *slot = r.ok().map(Ok);
            }
            exec.finish_thread(tid, panic_msg);
        })
    };
    JoinHandle {
        inner: JoinInner::Model {
            exec,
            tid,
            result,
            os: Some(os),
        },
    }
}
