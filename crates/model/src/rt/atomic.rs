//! Instrumented atomics (model builds only).
//!
//! Each type wraps a *real* `std` atomic: outside a model execution
//! (or on non-model threads) every operation falls through to it with
//! full `std` semantics, so ordinary unit tests keep working under
//! `--cfg qf_model`. Inside an execution the real value is read once
//! as the location's initial value and all traffic goes through the
//! explorer — which also means statics like the trace crate's
//! `GLOBAL_SEQ` reset to their pre-execution value at the start of
//! every explored interleaving.

use crate::rt::{with_ctx, ExecInner};
use std::sync::atomic::Ordering;

/// `std::sync::atomic::fence`, instrumented.
pub fn fence(order: Ordering) {
    let modeled = with_ctx(|ex, tid| {
        ex.op(tid, |g| g.fence(tid, order));
    });
    if modeled.is_none() {
        std::sync::atomic::fence(order);
    }
}

macro_rules! model_atomic {
    ($name:ident, $real:ty, $prim:ty) => {
        /// Model-instrumented drop-in for the `std` atomic of the same
        /// name. See the module docs for in/out-of-execution routing.
        #[derive(Debug, Default)]
        pub struct $name {
            real: std::sync::atomic::$name,
        }

        impl $name {
            /// Wrap an initial value.
            pub const fn new(v: $prim) -> Self {
                Self {
                    real: std::sync::atomic::$name::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            fn init(&self) -> u64 {
                self.real.load(Ordering::Relaxed) as u64
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                with_ctx(|ex, tid| {
                    ex.op(tid, |g| g.atomic_load(tid, self.addr(), self.init(), order)) as $prim
                })
                .unwrap_or_else(|| self.real.load(order))
            }

            /// Atomic store.
            pub fn store(&self, val: $prim, order: Ordering) {
                let modeled = with_ctx(|ex, tid| {
                    ex.op(tid, |g| {
                        g.atomic_store(tid, self.addr(), self.init(), val as u64, order)
                    });
                });
                if modeled.is_none() {
                    self.real.store(val, order);
                }
            }

            /// Atomic swap.
            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                with_ctx(|ex, tid| {
                    ex.op(tid, |g| {
                        self.rmw(g, tid, order, order, &mut |_| Some(val as u64)).0
                    }) as $prim
                })
                .unwrap_or_else(|| self.real.swap(val, order))
            }

            /// Atomic compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                with_ctx(|ex, tid| {
                    ex.op(tid, |g| {
                        let (prev, wrote) = self.rmw(g, tid, success, failure, &mut |v| {
                            (v == current as u64).then_some(new as u64)
                        });
                        if wrote {
                            Ok(prev as $prim)
                        } else {
                            Err(prev as $prim)
                        }
                    })
                })
                .unwrap_or_else(|| self.real.compare_exchange(current, new, success, failure))
            }

            /// Atomic compare-and-exchange (spurious failure allowed in
            /// `std`; the model uses the strong form, a sound subset).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Atomic fetch-then-update loop, as `std::fetch_update`.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$prim, $prim>
            where
                F: FnMut($prim) -> Option<$prim>,
            {
                with_ctx(|ex, tid| {
                    ex.op(tid, |g| {
                        let (prev, wrote) = self.rmw(g, tid, set_order, fetch_order, &mut |v| {
                            f(v as $prim).map(|n| n as u64)
                        });
                        if wrote {
                            Ok(prev as $prim)
                        } else {
                            Err(prev as $prim)
                        }
                    })
                })
                .unwrap_or_else(|| self.real.fetch_update(set_order, fetch_order, f))
            }

            fn rmw(
                &self,
                g: &mut ExecInner,
                tid: usize,
                ord: Ordering,
                ord_fail: Ordering,
                f: &mut dyn FnMut(u64) -> Option<u64>,
            ) -> (u64, bool) {
                g.atomic_rmw(tid, self.addr(), self.init(), ord, ord_fail, f)
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                // Unregister so a later allocation reusing this address
                // within the same execution is not aliased to our
                // history.
                let addr = self.addr();
                let _ = with_ctx(|ex, _tid| {
                    ex.raw_inner(|g| g.forget_loc(addr));
                });
            }
        }
    };
}

macro_rules! model_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Atomic wrapping add; returns the previous value.
            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                with_ctx(|ex, tid| {
                    ex.op(tid, |g| {
                        self.rmw(g, tid, order, order, &mut |v| {
                            Some((v as $prim).wrapping_add(val) as u64)
                        })
                        .0
                    }) as $prim
                })
                .unwrap_or_else(|| self.real.fetch_add(val, order))
            }

            /// Atomic wrapping subtract; returns the previous value.
            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                with_ctx(|ex, tid| {
                    ex.op(tid, |g| {
                        self.rmw(g, tid, order, order, &mut |v| {
                            Some((v as $prim).wrapping_sub(val) as u64)
                        })
                        .0
                    }) as $prim
                })
                .unwrap_or_else(|| self.real.fetch_sub(val, order))
            }
        }
    };
}

model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic_arith!(AtomicU64, u64);
model_atomic_arith!(AtomicU32, u32);
model_atomic_arith!(AtomicUsize, usize);

/// Model-instrumented `AtomicBool` (stored as 0/1 in the explorer).
#[derive(Debug, Default)]
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Wrap an initial value.
    pub const fn new(v: bool) -> Self {
        Self {
            real: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn init(&self) -> u64 {
        self.real.load(Ordering::Relaxed) as u64
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        with_ctx(|ex, tid| ex.op(tid, |g| g.atomic_load(tid, self.addr(), self.init(), order)) != 0)
            .unwrap_or_else(|| self.real.load(order))
    }

    /// Atomic store.
    pub fn store(&self, val: bool, order: Ordering) {
        let modeled = with_ctx(|ex, tid| {
            ex.op(tid, |g| {
                g.atomic_store(tid, self.addr(), self.init(), val as u64, order)
            });
        });
        if modeled.is_none() {
            self.real.store(val, order);
        }
    }

    /// Atomic swap.
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        with_ctx(|ex, tid| {
            ex.op(tid, |g| {
                g.atomic_rmw(tid, self.addr(), self.init(), order, order, &mut |_| {
                    Some(val as u64)
                })
                .0
            }) != 0
        })
        .unwrap_or_else(|| self.real.swap(val, order))
    }
}

impl Drop for AtomicBool {
    fn drop(&mut self) {
        let addr = self.addr();
        let _ = with_ctx(|ex, _tid| {
            ex.raw_inner(|g| g.forget_loc(addr));
        });
    }
}
