//! The exhaustive interleaving explorer (compiled only under
//! `--cfg qf_model`).
//!
//! ## Execution model
//!
//! [`Checker::check`] re-runs the harness closure once per explored
//! interleaving. Model threads are real OS threads serialized by a
//! turnstile: exactly one is active at a time, and every instrumented
//! operation (atomic op, fence, cell access, mutex op, park/unpark,
//! spawn/join, yield) is a *schedule point*. The choice tree has two
//! kinds of branches: which runnable thread performs the next
//! operation, and — for atomic loads — which store in the location's
//! history the load reads. DFS over that tree is driven by replaying a
//! recorded choice prefix and taking the next untried alternative at
//! the deepest branch point.
//!
//! ## Memory model
//!
//! A view-based operational semantics of the C11 fragment the
//! workspace uses (the same fragment loom models):
//!
//! * every atomic location keeps its full, timestamped store history;
//! * every thread keeps a *view* (location → minimum timestamp it may
//!   read); a load may read any store at or above the view, which is
//!   exactly how stale reads and store buffering are explored;
//! * `Release` stores attach the writer's view (and vector clock) to
//!   the message; `Acquire` loads join them — the synchronizes-with
//!   edge. RMWs read the newest store and extend release sequences.
//! * release fences arm subsequent relaxed stores with the fence-point
//!   view; acquire fences promote the views of previously relaxed
//!   loads; `SeqCst` fences additionally join a global SC view both
//!   ways, which totally orders them — the store-buffering guarantee
//!   the ring's park/wake handshake relies on. (Modelling SeqCst via a
//!   global view join is an approximation — the same one loom makes —
//!   that is exact for fence-based handshakes like ours.)
//!
//! Data races on [`cell::RaceCell`] payloads are detected with vector
//! clocks (spawn/join, mutexes, park/unpark, and acquire loads all
//! propagate clocks). A schedule point with no runnable thread and an
//! unfinished blocked thread is reported as a deadlock — this is the
//! lost-wakeup check.
//!
//! ## Pruning
//!
//! At every schedule point the checker hashes the canonical global
//! state: per-thread operation-history hashes (which capture each
//! thread's local continuation, since harness closures are
//! deterministic), canonical views (timestamps replaced by per-location
//! store indices so independent reorderings converge), store histories,
//! mutex/park/yield state, and the SC view. A state whose hash matches
//! a fully-explored node is pruned (duplicate), and a state repeating
//! along the current path is pruned as a cycle — safety bugs reachable
//! through a cycle are reachable without it. Pruning is sound up to
//! 64-bit hash collisions, the usual stateful-model-checking trade.
//! An optional preemption bound (loom-style) caps how many times the
//! scheduler may switch away from a runnable thread per execution;
//! voluntary switches (block, finish, yield, spin) are free.

pub mod atomic;
pub mod cell;
pub mod mutex;
pub mod thread;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Serializes explorations process-wide: two `#[test]`s exploring at
/// once would interleave real threads against two model schedulers.
static EXPLORATION_LOCK: StdMutex<()> = StdMutex::new(());

thread_local! {
    /// (execution, tid) of the current model thread; `None` on
    /// ordinary threads, which makes every shim op fall back to the
    /// real `std` primitive.
    pub(crate) static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Run `f` with the current model context, or return `None` when the
/// calling thread is not a model thread — or when it is *unwinding*.
/// The latter is the teardown path: once an execution aborts, every
/// model thread unwinds through its Drop impls (ring drains, mutex
/// guards), and re-entering the scheduler from a destructor would
/// panic inside a panic. Falling back to the real primitives is safe:
/// the real atomics still hold their pre-execution values, so e.g. a
/// ring drain sees head == tail and touches no slot (payloads written
/// during the aborted execution leak, which is acceptable for a
/// checker).
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> Option<R> {
    if std::thread::panicking() {
        return None;
    }
    CTX.with(|c| c.borrow().as_ref().map(|(ex, tid)| f(ex, *tid)))
}

/// Sentinel panic payload used to unwind model threads when the
/// execution is aborted (violation found or branch pruned).
pub(crate) struct ExecAbort;

/// A property violation found by exploration.
#[derive(Debug)]
pub struct Violation {
    /// What went wrong: a harness assertion, a data race, a deadlock,
    /// or the step cap (livelock).
    pub message: String,
    /// Executions completed before the violating one.
    pub executions: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model violation after {} executions: {}",
            self.executions, self.message
        )
    }
}

/// Exploration statistics for a fully verified harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Interleavings executed to completion.
    pub executions: u64,
    /// Branches pruned because the state hash matched a fully-explored
    /// node.
    pub pruned_duplicate: u64,
    /// Branches pruned because the state repeated along the current
    /// path (spin cycle).
    pub pruned_cycle: u64,
    /// Deepest choice stack observed.
    pub max_depth: usize,
}

/// Explorer configuration.
#[derive(Debug, Clone, Copy)]
pub struct Checker {
    max_preemptions: Option<u32>,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_preemptions: None,
            max_steps: 50_000,
        }
    }
}

impl Checker {
    /// Unbounded exhaustive exploration with the default step cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound involuntary context switches per execution (loom-style).
    /// Exploration is then exhaustive over all schedules with at most
    /// `k` preemptions — the bound every published ordering bug of
    /// this protocol class falls within — which tames harnesses whose
    /// unbounded tree is astronomically large.
    pub fn preemption_bound(mut self, k: u32) -> Self {
        self.max_preemptions = Some(k);
        self
    }

    /// Abort an execution after this many schedule points (livelock
    /// backstop; harness loops must otherwise be bounded).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Explore every interleaving of `f`, returning stats on success
    /// or the first violation found.
    pub fn check<F>(&self, f: F) -> Result<Stats, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let _guard = match EXPLORATION_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let f = Arc::new(f);
        let explored: Arc<StdMutex<HashSet<u64>>> = Arc::default();
        let mut stats = Stats::default();
        let mut replay: Vec<usize> = Vec::new();
        loop {
            let exec = Arc::new(Execution::new(replay.clone(), Arc::clone(&explored), *self));
            let root = {
                let exec = Arc::clone(&exec);
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
                    let result = catch_unwind(AssertUnwindSafe(|| f()));
                    exec.finish_thread(0, panic_message(result));
                })
            };
            exec.wait_done();
            let _ = root.join();
            let (choices, abort) = exec.take_outcome();
            stats.max_depth = stats.max_depth.max(choices.len());
            match abort {
                Some(Abort::Failure(message)) => {
                    return Err(Violation {
                        message,
                        executions: stats.executions,
                    })
                }
                Some(Abort::PruneCycle) => stats.pruned_cycle += 1,
                Some(Abort::PruneDuplicate) => stats.pruned_duplicate += 1,
                None => stats.executions += 1,
            }
            // DFS backtrack: deepest choice with an untried alternative.
            let mut next = None;
            for (i, c) in choices.iter().enumerate().rev() {
                if c.taken + 1 < c.total {
                    next = Some(i);
                    break;
                }
            }
            let Some(i) = next else { return Ok(stats) };
            // Every node past the backtrack point just finished its
            // last child: its subtree is fully explored. Remember the
            // state hashes so re-converging interleavings are pruned.
            {
                let mut ex = match explored.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                for c in &choices[i + 1..] {
                    ex.insert(c.state_hash);
                }
            }
            replay.clear();
            replay.extend(choices[..i].iter().map(|c| c.taken));
            replay.push(choices[i].taken + 1);
        }
    }
}

/// Explore every interleaving of `f`; panic (failing the test) on the
/// first violation.
///
/// # Panics
///
/// Panics with the violation report (message plus execution count) when
/// any interleaving fails — that *is* the test-harness contract. Use
/// [`try_model`] to inspect the violation instead.
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) {
    match Checker::new().check(f) {
        Ok(_) => {}
        Err(v) => panic!("{v}"),
    }
}

/// Explore every interleaving of `f`, returning the violation instead
/// of panicking — the entry point for seeded-bug self-tests.
pub fn try_model<F: Fn() + Send + Sync + 'static>(f: F) -> Result<Stats, Violation> {
    Checker::new().check(f)
}

fn panic_message(r: std::thread::Result<()>) -> Option<String> {
    let payload = match r {
        Ok(()) => return None,
        Err(p) => p,
    };
    if payload.downcast_ref::<ExecAbort>().is_some() {
        return None; // abort already recorded by whoever triggered it
    }
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| (*s).to_string())
        })
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    Some(msg)
}

// ---------------------------------------------------------------------
// Views, vector clocks, store histories
// ---------------------------------------------------------------------

/// Location view: location id → minimum store timestamp readable.
pub(crate) type View = BTreeMap<usize, u64>;

fn join_view(into: &mut View, other: &View) {
    for (&loc, &ts) in other {
        let e = into.entry(loc).or_insert(0);
        *e = (*e).max(ts);
    }
}

/// Per-thread vector clock (index = tid).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }
    fn set(&mut self, tid: usize, v: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }
    fn tick(&mut self, tid: usize) {
        let v = self.get(tid) + 1;
        self.set(tid, v);
    }
    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }
    /// `self ⊑ other` (every component ≤).
    fn dominated_by(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

/// One store message in a location's history.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    ts: u64,
    writer: usize,
    val: u64,
    /// Release view: joined into an acquiring reader's view. `None`
    /// for plain relaxed stores with no armed release fence.
    view: Option<View>,
    /// Happens-before clock carried alongside `view`.
    clock: Option<VClock>,
}

#[derive(Debug, Default)]
pub(crate) struct Loc {
    stores: Vec<Msg>,
}

#[derive(Debug, Default)]
pub(crate) struct CellState {
    /// Per-thread epoch of the last write / read.
    write_vc: VClock,
    read_vc: VClock,
}

#[derive(Debug, Default)]
pub(crate) struct MutexState {
    locked_by: Option<usize>,
    view: View,
    clock: VClock,
}

/// Why a thread is not runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    Park,
    Mutex(usize),
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThState {
    Ready,
    Blocked(Block),
    Finished,
}

#[derive(Debug)]
struct Th {
    state: ThState,
    view: View,
    clock: VClock,
    /// Armed by a release fence: subsequent relaxed stores publish it.
    rel_fence: Option<(View, VClock)>,
    /// Accumulated by relaxed loads; promoted by an acquire fence.
    acq_pending_view: View,
    acq_pending_clock: VClock,
    park_token: bool,
    park_view: View,
    park_clock: VClock,
    yielded: bool,
    /// Rolling hash of this thread's operation history — a digest of
    /// its local continuation (deterministic closures). Invariant:
    /// every *completed* operation mixes a distinct tag in, so two
    /// schedule points of the same thread never hash alike unless the
    /// continuation really is the same. (An op that left no trace —
    /// e.g. a join absorb with empty views — would otherwise make the
    /// next schedule point look like a state revisit and falsely
    /// cycle-prune the path.) Failed blocking attempts are exempt:
    /// their retry only happens after another thread makes a
    /// hash-visible mutation.
    hist: u64,
}

impl Th {
    fn new(view: View, clock: VClock) -> Self {
        Th {
            state: ThState::Ready,
            view,
            clock,
            rel_fence: None,
            acq_pending_view: View::new(),
            acq_pending_clock: VClock::default(),
            park_token: false,
            park_view: View::new(),
            park_clock: VClock::default(),
            yielded: false,
            hist: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Abort {
    Failure(String),
    PruneCycle,
    PruneDuplicate,
}

#[derive(Debug, Clone, Copy)]
struct Choice {
    taken: usize,
    total: usize,
    state_hash: u64,
}

pub(crate) struct ExecInner {
    threads: Vec<Th>,
    active: usize,
    replay: Vec<usize>,
    choices: Vec<Choice>,
    addr_to_loc: HashMap<usize, usize>,
    locs: Vec<Loc>,
    addr_to_cell: HashMap<usize, usize>,
    cells: Vec<CellState>,
    addr_to_mutex: HashMap<usize, usize>,
    mutexes: Vec<MutexState>,
    next_ts: u64,
    sc_view: View,
    sc_clock: VClock,
    preemptions: u32,
    steps: usize,
    abort: Option<Abort>,
    /// State hash at each schedule point along the current path.
    path_hashes: Vec<u64>,
    /// Hash at the point the *current* op entered (choices made during
    /// the op are attributed to it).
    pending_hash: u64,
    cfg: Checker,
}

pub(crate) struct Execution {
    inner: StdMutex<ExecInner>,
    cv: Condvar,
    explored: Arc<StdMutex<HashSet<u64>>>,
}

impl fmt::Debug for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Execution").finish_non_exhaustive()
    }
}

impl Execution {
    fn new(replay: Vec<usize>, explored: Arc<StdMutex<HashSet<u64>>>, cfg: Checker) -> Self {
        Execution {
            inner: StdMutex::new(ExecInner {
                threads: vec![Th::new(View::new(), {
                    let mut c = VClock::default();
                    c.tick(0);
                    c
                })],
                active: 0,
                replay,
                choices: Vec::new(),
                addr_to_loc: HashMap::new(),
                locs: Vec::new(),
                addr_to_cell: HashMap::new(),
                cells: Vec::new(),
                addr_to_mutex: HashMap::new(),
                mutexes: Vec::new(),
                next_ts: 1,
                sc_view: View::new(),
                sc_clock: VClock::default(),
                preemptions: 0,
                steps: 0,
                abort: None,
                path_hashes: Vec::new(),
                pending_hash: 0,
                cfg,
            }),
            cv: Condvar::new(),
            explored,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Block the driver until every model thread has finished. Waiting
    /// for *all* threads (even after an abort, which makes each of them
    /// unwind promptly) keeps executions hermetic: no thread from an
    /// aborted execution is still mutating its `ExecInner` — or holding
    /// allocations — once the checker moves on to the next execution.
    fn wait_done(&self) {
        let mut g = self.lock();
        loop {
            if g.threads.iter().all(|t| t.state == ThState::Finished) {
                return;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Registry access that is *not* a schedule point (used by Drop
    /// impls to unregister addresses).
    pub(crate) fn raw_inner<R>(&self, f: impl FnOnce(&mut ExecInner) -> R) -> R {
        let mut g = self.lock();
        f(&mut g)
    }

    fn take_outcome(&self) -> (Vec<Choice>, Option<Abort>) {
        let mut g = self.lock();
        (std::mem::take(&mut g.choices), g.abort.take())
    }

    /// Perform one non-blocking instrumented operation for `tid`:
    /// wait for the turnstile, run `f` under the lock (it may consume
    /// value choices), then choose the next runner.
    pub(crate) fn op<R>(&self, tid: usize, f: impl FnOnce(&mut ExecInner) -> R) -> R {
        let mut g = self.wait_active(tid);
        g.enter_point(tid, &self.explored);
        self.bail_if_aborted(&g);
        let r = f(&mut g);
        self.bail_if_aborted(&g);
        g.schedule_next(tid);
        self.cv.notify_all();
        self.bail_if_aborted(&g);
        r
    }

    /// Perform a possibly-blocking operation: `try_fn` either completes
    /// or names what it blocks on; the thread then sleeps until another
    /// thread unblocks it and the scheduler picks it again.
    pub(crate) fn blocking_op<R>(
        &self,
        tid: usize,
        mut try_fn: impl FnMut(&mut ExecInner) -> Result<R, Block>,
    ) -> R {
        let mut g = self.wait_active(tid);
        loop {
            g.enter_point(tid, &self.explored);
            self.bail_if_aborted(&g);
            match try_fn(&mut g) {
                Ok(r) => {
                    self.bail_if_aborted(&g);
                    g.schedule_next(tid);
                    self.cv.notify_all();
                    self.bail_if_aborted(&g);
                    return r;
                }
                Err(block) => {
                    self.bail_if_aborted(&g);
                    g.threads[tid].state = ThState::Blocked(block);
                    g.schedule_next(tid);
                    self.cv.notify_all();
                    self.bail_if_aborted(&g);
                    g = self.wait_active_locked(g, tid);
                }
            }
        }
    }

    /// Thread completion. A clean finish is a *scheduled* event: the
    /// thread waits for the turnstile before transitioning to
    /// `Finished`, exactly like any other operation. This matters for
    /// determinism — after a thread's last op the scheduler still sees
    /// it as `Ready` (the model cannot know an op was the last), and if
    /// the finish transition instead landed whenever the OS thread
    /// happened to exit its closure, it would race other threads' ops
    /// for the lock and change runnable-set sizes between a recording
    /// run and its replay (observed as "replay divergence").
    ///
    /// Panicking finishes (a recorded violation) and finishes that
    /// abort while waiting for their slot skip the scheduling and just
    /// record completion: the execution is already being torn down.
    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        if panic_msg.is_none() {
            let scheduled = catch_unwind(AssertUnwindSafe(|| {
                let mut g = self.wait_active(tid);
                g.enter_point(tid, &self.explored);
                self.bail_if_aborted(&g);
                g.mark_finished(tid);
                g.schedule_next(tid);
                self.cv.notify_all();
            }));
            if scheduled.is_ok() {
                return;
            }
            // Fell out with ExecAbort: record completion below so
            // `wait_done` can drain the execution.
        }
        let mut g = self.lock();
        if let Some(msg) = panic_msg {
            if g.abort.is_none() {
                g.abort = Some(Abort::Failure(format!("thread {tid} panicked: {msg}")));
            }
        }
        g.mark_finished(tid);
        if g.abort.is_none() {
            g.schedule_next(tid);
        }
        self.cv.notify_all();
    }

    fn wait_active(&self, tid: usize) -> std::sync::MutexGuard<'_, ExecInner> {
        let g = self.lock();
        self.wait_active_locked(g, tid)
    }

    fn wait_active_locked<'a>(
        &'a self,
        mut g: std::sync::MutexGuard<'a, ExecInner>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, ExecInner> {
        loop {
            if g.abort.is_some() {
                drop(g);
                std::panic::panic_any(ExecAbort);
            }
            if g.active == tid && g.threads[tid].state == ThState::Ready {
                g.threads[tid].yielded = false;
                return g;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    fn bail_if_aborted(&self, g: &std::sync::MutexGuard<'_, ExecInner>) {
        if g.abort.is_some() {
            self.cv.notify_all();
            std::panic::panic_any(ExecAbort);
        }
    }
}

impl ExecInner {
    /// Record a violation and abort the execution.
    pub(crate) fn fail(&mut self, message: String) {
        if self.abort.is_none() {
            self.abort = Some(Abort::Failure(message));
        }
    }

    /// Mark `tid` finished and ready its joiners (they re-check their
    /// condition once scheduled).
    fn mark_finished(&mut self, tid: usize) {
        self.threads[tid].state = ThState::Finished;
        for t in self.threads.iter_mut() {
            if t.state == ThState::Blocked(Block::Join(tid)) {
                t.state = ThState::Ready;
            }
        }
    }

    /// Consume one branch choice with `total` alternatives.
    pub(crate) fn choose(&mut self, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        let depth = self.choices.len();
        let taken = if depth < self.replay.len() {
            self.replay[depth]
        } else {
            0
        };
        if taken >= total {
            // Replay is only sound if an execution is a pure function
            // of its choice sequence; a recorded alternative that no
            // longer exists means the explorer itself leaked
            // nondeterminism. Fail loudly rather than mis-explore.
            self.fail(format!(
                "internal error: replay diverged at choice {depth} \
                 (recorded alternative {taken}, only {total} available)"
            ));
            return 0;
        }
        self.choices.push(Choice {
            taken,
            total,
            state_hash: self.pending_hash,
        });
        taken
    }

    /// Schedule-point entry: step accounting, clock tick, state hash,
    /// cycle/duplicate pruning.
    fn enter_point(&mut self, tid: usize, explored: &Arc<StdMutex<HashSet<u64>>>) {
        self.steps += 1;
        if self.steps > self.cfg.max_steps {
            self.fail(format!(
                "step cap ({}) exceeded — unbounded spin loop in the harness?",
                self.cfg.max_steps
            ));
            return;
        }
        let own = self.threads[tid].clock.get(tid) + 1;
        self.threads[tid].clock.set(tid, own);
        let h = self.state_hash(tid);
        self.pending_hash = h;
        if std::env::var_os("QF_MODEL_DEBUG").is_some() && self.replay.is_empty() {
            let states: Vec<String> = self
                .threads
                .iter()
                .map(|t| format!("{:?}/y{}/h{:x}", t.state, t.yielded as u8, t.hist & 0xffff))
                .collect();
            eprintln!(
                "[qf-model] step {} tid {} h {:#018x} threads=[{}]",
                self.steps,
                tid,
                h,
                states.join(" ")
            );
        }
        // Only prune at the frontier: the replayed prefix must be
        // traversed verbatim to reach the branch under exploration.
        if self.choices.len() >= self.replay.len() {
            if self.path_hashes.contains(&h) {
                if std::env::var_os("QF_MODEL_DEBUG").is_some() {
                    let at = self.path_hashes.iter().position(|&p| p == h);
                    eprintln!(
                        "[qf-model] cycle prune: step {} tid {} h {:#018x} first seen at path idx {:?}",
                        self.steps, tid, h, at
                    );
                }
                self.abort = Some(Abort::PruneCycle);
                return;
            }
            let seen = {
                let ex = match explored.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                ex.contains(&h)
            };
            if seen {
                self.abort = Some(Abort::PruneDuplicate);
                return;
            }
        }
        self.path_hashes.push(h);
    }

    /// Pick the next active thread (the scheduling branch).
    fn schedule_next(&mut self, cur: usize) {
        // One op by `cur` just completed: every *other* thread that
        // yielded has now seen another thread make progress.
        for (i, t) in self.threads.iter_mut().enumerate() {
            if i != cur {
                t.yielded = false;
            }
        }
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThState::Ready)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.state {
                    ThState::Blocked(b) => Some(format!("thread {i} blocked on {b:?}")),
                    _ => None,
                })
                .collect();
            if !blocked.is_empty() {
                self.fail(format!("deadlock: {}", blocked.join(", ")));
            }
            return; // all finished: execution complete
        }
        // Yield fairness: a freshly-yielded thread is not eligible
        // while any other thread can run.
        let mut cands: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&i| !self.threads[i].yielded)
            .collect();
        if cands.is_empty() {
            cands = runnable;
        }
        // Preemption bound: once the budget is spent, a still-runnable
        // current thread must keep running.
        let cur_ready = self.threads[cur].state == ThState::Ready && !self.threads[cur].yielded;
        if let Some(maxp) = self.cfg.max_preemptions {
            if self.preemptions >= maxp && cur_ready && cands.contains(&cur) {
                cands = vec![cur];
            }
        }
        let pick = cands[self.choose(cands.len())];
        if pick != cur && cur_ready {
            self.preemptions += 1;
        }
        self.active = pick;
    }

    /// Register a model thread spawned by `parent`; returns its tid.
    pub(crate) fn register_thread(&mut self, parent: usize) -> usize {
        let tid = self.threads.len();
        let view = self.threads[parent].view.clone();
        let mut clock = self.threads[parent].clock.clone();
        clock.tick(tid);
        self.threads.push(Th::new(view, clock));
        self.mix_hist(parent, &[10, tid as u64]);
        tid
    }

    /// Join edge: fold the finished thread's view/clock into `tid`.
    pub(crate) fn absorb_finished(&mut self, tid: usize, target: usize) {
        let (tview, tclock) = {
            let t = &self.threads[target];
            (t.view.clone(), t.clock.clone())
        };
        join_view(&mut self.threads[tid].view, &tview);
        self.threads[tid].clock.join(&tclock);
        self.mix_hist(tid, &[11, target as u64]);
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.threads[tid].state == ThState::Finished
    }

    /// Mark the current thread as having voluntarily yielded.
    ///
    /// Deliberately does NOT advance `hist`: a yield/spin hint declares
    /// "no local progress", so a spin iteration that changes nothing
    /// hashes identically to the previous one and the path is cycle-
    /// pruned — this is what bounds `while !flag { spin_loop() }`
    /// exploration. (The cost: a *counted* yield loop with an otherwise
    /// empty body is indistinguishable from an unbounded spin.)
    pub(crate) fn note_yield(&mut self, tid: usize) {
        self.threads[tid].yielded = true;
    }

    // -- location / cell / mutex registries ---------------------------

    fn loc_id(&mut self, addr: usize, init: u64) -> usize {
        if let Some(&id) = self.addr_to_loc.get(&addr) {
            return id;
        }
        let id = self.locs.len();
        self.locs.push(Loc {
            stores: vec![Msg {
                ts: 0,
                writer: usize::MAX,
                val: init,
                view: None,
                clock: None,
            }],
        });
        self.addr_to_loc.insert(addr, id);
        id
    }

    pub(crate) fn forget_loc(&mut self, addr: usize) {
        self.addr_to_loc.remove(&addr);
    }

    fn cell_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.addr_to_cell.get(&addr) {
            return id;
        }
        let id = self.cells.len();
        self.cells.push(CellState::default());
        self.addr_to_cell.insert(addr, id);
        id
    }

    pub(crate) fn forget_cell(&mut self, addr: usize) {
        self.addr_to_cell.remove(&addr);
    }

    fn mutex_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.addr_to_mutex.get(&addr) {
            return id;
        }
        let id = self.mutexes.len();
        self.mutexes.push(MutexState::default());
        self.addr_to_mutex.insert(addr, id);
        id
    }

    pub(crate) fn forget_mutex(&mut self, addr: usize) {
        self.addr_to_mutex.remove(&addr);
    }

    fn mix_hist(&mut self, tid: usize, parts: &[u64]) {
        let mut h = self.threads[tid].hist;
        for &p in parts {
            h = mix64(h ^ p);
        }
        self.threads[tid].hist = h;
    }

    // -- the memory model ---------------------------------------------

    fn is_release(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_acquire(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// The release payload a store by `tid` publishes: its own view and
    /// clock for Release-or-stronger, the armed fence view for relaxed
    /// stores after a release fence, nothing otherwise.
    fn release_payload(
        &self,
        tid: usize,
        ord: Ordering,
        lid: usize,
        ts: u64,
    ) -> (Option<View>, Option<VClock>) {
        let t = &self.threads[tid];
        if Self::is_release(ord) {
            let mut v = t.view.clone();
            v.insert(lid, ts);
            (Some(v), Some(t.clock.clone()))
        } else if let Some((fv, fc)) = &t.rel_fence {
            let mut v = fv.clone();
            v.insert(lid, ts);
            (Some(v), Some(fc.clone()))
        } else {
            (None, None)
        }
    }

    /// Fold an acquired (or pending-acquire) message into the reader.
    fn absorb_msg(
        &mut self,
        tid: usize,
        msg_view: Option<View>,
        msg_clock: Option<VClock>,
        acquire: bool,
    ) {
        let t = &mut self.threads[tid];
        if acquire {
            if let Some(v) = &msg_view {
                join_view(&mut t.view, v);
            }
            if let Some(c) = &msg_clock {
                t.clock.join(c);
            }
        } else {
            if let Some(v) = &msg_view {
                join_view(&mut t.acq_pending_view, v);
            }
            if let Some(c) = &msg_clock {
                t.acq_pending_clock.join(c);
            }
        }
    }

    pub(crate) fn atomic_store(
        &mut self,
        tid: usize,
        addr: usize,
        init: u64,
        val: u64,
        ord: Ordering,
    ) {
        let lid = self.loc_id(addr, init);
        let ts = self.next_ts;
        self.next_ts += 1;
        let (view, clock) = self.release_payload(tid, ord, lid, ts);
        self.locs[lid].stores.push(Msg {
            ts,
            writer: tid,
            val,
            view,
            clock,
        });
        self.threads[tid].view.insert(lid, ts);
        if ord == Ordering::SeqCst {
            self.sc_view.insert(lid, ts);
        }
        let idx = self.locs[lid].stores.len() as u64 - 1;
        self.mix_hist(tid, &[1, lid as u64, idx, val]);
    }

    pub(crate) fn atomic_load(&mut self, tid: usize, addr: usize, init: u64, ord: Ordering) -> u64 {
        let lid = self.loc_id(addr, init);
        let mut min = self.threads[tid].view.get(&lid).copied().unwrap_or(0);
        if ord == Ordering::SeqCst {
            min = min.max(self.sc_view.get(&lid).copied().unwrap_or(0));
        }
        // Every store at or above the thread's view is readable; stores
        // indistinguishable in value and sync payload are one choice.
        let loc = &self.locs[lid];
        let mut eligible: Vec<usize> = Vec::new();
        for (i, m) in loc.stores.iter().enumerate() {
            if m.ts < min {
                continue;
            }
            let dup = eligible.iter().any(|&j| {
                let o = &loc.stores[j];
                o.val == m.val && o.view == m.view && o.clock == m.clock
            });
            if !dup {
                eligible.push(i);
            }
        }
        debug_assert!(!eligible.is_empty(), "no eligible store for load");
        let pick = eligible[self.choose(eligible.len())];
        let msg = &self.locs[lid].stores[pick];
        let (ts, val, mview, mclock) = (msg.ts, msg.val, msg.view.clone(), msg.clock.clone());
        let e = self.threads[tid].view.entry(lid).or_insert(0);
        *e = (*e).max(ts);
        self.absorb_msg(tid, mview, mclock, Self::is_acquire(ord));
        self.mix_hist(tid, &[2, lid as u64, pick as u64, val]);
        val
    }

    /// One atomic read-modify-write step: reads the *newest* store
    /// (RMW atomicity), writes `f(prev)` if `Some`, extending the
    /// release sequence. `ord` governs the successful exchange,
    /// `ord_fail` the failed (load-only) case, exactly as for
    /// `compare_exchange`. Returns the previous value and whether a
    /// write happened.
    pub(crate) fn atomic_rmw(
        &mut self,
        tid: usize,
        addr: usize,
        init: u64,
        ord: Ordering,
        ord_fail: Ordering,
        f: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> (u64, bool) {
        let lid = self.loc_id(addr, init);
        let last = match self.locs[lid].stores.last() {
            Some(m) => m.clone(),
            None => return (init, false), // unreachable: init store exists
        };
        let prev = last.val;
        let new = f(prev);
        let eff = if new.is_some() { ord } else { ord_fail };
        self.absorb_msg(
            tid,
            last.view.clone(),
            last.clock.clone(),
            Self::is_acquire(eff),
        );
        let wrote = if let Some(new) = new {
            let ts = self.next_ts;
            self.next_ts += 1;
            let (rel_view, rel_clock) = self.release_payload(tid, ord, lid, ts);
            // RMWs continue the release sequence of the store they
            // replace: carry the old payload forward, joined with any
            // release contribution of this RMW itself.
            let mut view = last.view.clone();
            if let Some(rv) = rel_view {
                match &mut view {
                    Some(v) => join_view(v, &rv),
                    None => view = Some(rv),
                }
            }
            let mut clock = last.clock.clone();
            if let Some(rc) = rel_clock {
                match &mut clock {
                    Some(c) => c.join(&rc),
                    None => clock = Some(rc),
                }
            }
            self.locs[lid].stores.push(Msg {
                ts,
                writer: tid,
                val: new,
                view,
                clock,
            });
            self.threads[tid].view.insert(lid, ts);
            if ord == Ordering::SeqCst {
                self.sc_view.insert(lid, ts);
            }
            true
        } else {
            let e = self.threads[tid].view.entry(lid).or_insert(0);
            *e = (*e).max(last.ts);
            false
        };
        let idx = self.locs[lid].stores.len() as u64 - 1;
        self.mix_hist(tid, &[3, lid as u64, idx, prev, wrote as u64]);
        (prev, wrote)
    }

    pub(crate) fn fence(&mut self, tid: usize, ord: Ordering) {
        if Self::is_acquire(ord) {
            let (pv, pc) = {
                let t = &mut self.threads[tid];
                (
                    std::mem::take(&mut t.acq_pending_view),
                    std::mem::take(&mut t.acq_pending_clock),
                )
            };
            join_view(&mut self.threads[tid].view, &pv);
            self.threads[tid].clock.join(&pc);
        }
        if ord == Ordering::SeqCst {
            // Total SC order = the model's serialized execution order:
            // whichever fence runs later sees the earlier one's world.
            let tview = self.threads[tid].view.clone();
            let tclock = self.threads[tid].clock.clone();
            join_view(&mut self.sc_view, &tview);
            join_view(&mut self.threads[tid].view, &self.sc_view.clone());
            self.sc_clock.join(&tclock);
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        if Self::is_release(ord) {
            let t = &mut self.threads[tid];
            t.rel_fence = Some((t.view.clone(), t.clock.clone()));
        }
        self.mix_hist(tid, &[4, ord as u64]);
    }

    /// Race-checked non-atomic access to a [`cell::RaceCell`].
    pub(crate) fn cell_access(&mut self, tid: usize, addr: usize, is_write: bool) {
        let cid = self.cell_id(addr);
        let clock = self.threads[tid].clock.clone();
        let cell = &mut self.cells[cid];
        if !cell.write_vc.dominated_by(&clock) {
            self.fail(format!(
                "data race: thread {tid} {} a cell concurrently with a prior write",
                if is_write { "writes" } else { "reads" }
            ));
            return;
        }
        if is_write {
            if !cell.read_vc.dominated_by(&clock) {
                self.fail(format!(
                    "data race: thread {tid} writes a cell concurrently with a prior read"
                ));
                return;
            }
            let own = clock.get(tid);
            cell.write_vc.set(tid, own);
        } else {
            let own = clock.get(tid);
            cell.read_vc.set(tid, own);
        }
        self.mix_hist(tid, &[5, cid as u64, is_write as u64]);
    }

    /// Try to take a mutex; `Err` names the block.
    pub(crate) fn mutex_try_lock(&mut self, tid: usize, addr: usize) -> Result<(), Block> {
        let mid = self.mutex_id(addr);
        if let Some(owner) = self.mutexes[mid].locked_by {
            debug_assert_ne!(owner, tid, "model mutex is not reentrant");
            return Err(Block::Mutex(mid));
        }
        self.mutexes[mid].locked_by = Some(tid);
        let (mv, mc) = (
            self.mutexes[mid].view.clone(),
            self.mutexes[mid].clock.clone(),
        );
        join_view(&mut self.threads[tid].view, &mv);
        self.threads[tid].clock.join(&mc);
        self.mix_hist(tid, &[6, mid as u64]);
        Ok(())
    }

    pub(crate) fn mutex_unlock(&mut self, tid: usize, addr: usize) {
        let mid = self.mutex_id(addr);
        debug_assert_eq!(self.mutexes[mid].locked_by, Some(tid));
        let (tv, tc) = (
            self.threads[tid].view.clone(),
            self.threads[tid].clock.clone(),
        );
        let m = &mut self.mutexes[mid];
        m.locked_by = None;
        join_view(&mut m.view, &tv);
        m.clock.join(&tc);
        for t in self.threads.iter_mut() {
            if t.state == ThState::Blocked(Block::Mutex(mid)) {
                t.state = ThState::Ready;
            }
        }
        self.mix_hist(tid, &[7, mid as u64]);
    }

    /// Park: consume the token (with the unparker's release payload) or
    /// block.
    pub(crate) fn try_park(&mut self, tid: usize) -> Result<(), Block> {
        if self.threads[tid].park_token {
            let t = &mut self.threads[tid];
            t.park_token = false;
            let pv = std::mem::take(&mut t.park_view);
            let pc = std::mem::take(&mut t.park_clock);
            join_view(&mut self.threads[tid].view, &pv);
            self.threads[tid].clock.join(&pc);
            self.mix_hist(tid, &[8]);
            Ok(())
        } else {
            Err(Block::Park)
        }
    }

    pub(crate) fn unpark(&mut self, tid: usize, target: usize) {
        let (tv, tc) = (
            self.threads[tid].view.clone(),
            self.threads[tid].clock.clone(),
        );
        let t = &mut self.threads[target];
        t.park_token = true;
        join_view(&mut t.park_view, &tv);
        t.park_clock.join(&tc);
        if t.state == ThState::Blocked(Block::Park) {
            t.state = ThState::Ready;
        }
        self.mix_hist(tid, &[9, target as u64]);
    }

    // -- canonical state hashing --------------------------------------

    /// Canonicalize a view for hashing: timestamps become per-location
    /// store indices, so interleavings of independent operations that
    /// reach the same semantic state collide (and prune).
    fn hash_view(&self, h: &mut u64, v: &View) {
        for (&lid, &ts) in v {
            let idx = self.locs[lid]
                .stores
                .binary_search_by_key(&ts, |m| m.ts)
                .map(|i| i as u64)
                .unwrap_or(u64::MAX);
            *h = mix64(*h ^ lid as u64);
            *h = mix64(*h ^ idx);
        }
    }

    fn state_hash(&self, entering: usize) -> u64 {
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        h = mix64(h ^ entering as u64);
        h = mix64(h ^ self.preemptions as u64);
        for (i, t) in self.threads.iter().enumerate() {
            h = mix64(h ^ i as u64);
            let st = match t.state {
                ThState::Ready => 0u64,
                ThState::Blocked(Block::Park) => 1,
                ThState::Blocked(Block::Mutex(m)) => 2 + ((m as u64) << 8),
                ThState::Blocked(Block::Join(j)) => 3 + ((j as u64) << 8),
                ThState::Finished => 4,
            };
            h = mix64(h ^ st);
            h = mix64(h ^ ((t.yielded as u64) | ((t.park_token as u64) << 1)));
            h = mix64(h ^ t.hist);
            self.hash_view(&mut h, &t.view);
            self.hash_view(&mut h, &t.acq_pending_view);
            if let Some((fv, _)) = &t.rel_fence {
                h = mix64(h ^ 0xfe);
                self.hash_view(&mut h, fv);
            }
            self.hash_view(&mut h, &t.park_view);
        }
        for (lid, loc) in self.locs.iter().enumerate() {
            h = mix64(h ^ (0x1_0000 + lid as u64));
            for (idx, m) in loc.stores.iter().enumerate() {
                h = mix64(h ^ idx as u64);
                h = mix64(h ^ m.writer as u64);
                h = mix64(h ^ m.val);
                if let Some(v) = &m.view {
                    self.hash_view(&mut h, v);
                }
            }
        }
        for (mid, m) in self.mutexes.iter().enumerate() {
            h = mix64(h ^ (0x2_0000 + mid as u64));
            h = mix64(h ^ m.locked_by.map_or(u64::MAX, |o| o as u64));
            self.hash_view(&mut h, &m.view);
        }
        self.hash_view(&mut h, &self.sc_view);
        h
    }
}

/// SplitMix64 finalizer: deterministic across runs (unlike
/// `DefaultHasher`, whose keys are randomized per process).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
