//! Scheduler-aware mutex (model builds only).
//!
//! Lock acquisition is a blocking schedule point; contention is a
//! branch the explorer takes both ways. Lock/unlock propagate views
//! and vector clocks, so data handed off under the mutex is properly
//! ordered — the generation-fencing protocol is checked against
//! exactly these edges.

use crate::rt::with_ctx;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

/// Model-instrumented mutex with the same poison-tolerant `lock`
/// surface as the real-build `qf_model::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialized by the model scheduler — a
// guard only exists while the explorer has granted the lock, and the
// explorer runs one thread at a time besides.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as for Send above — the model lock grants exclusivity before
// any guard can dereference `data`.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            data: UnsafeCell::new(value),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Lock, blocking (in model time) until available.
    ///
    /// Outside a model execution (or while the thread is unwinding
    /// through teardown) the guard is handed out without scheduling:
    /// the explorer serializes threads, so there is no real
    /// contention to arbitrate.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let _ = with_ctx(|ex, tid| {
            ex.blocking_op(tid, |g| g.mutex_try_lock(tid, self.addr()));
        });
        MutexGuard { mutex: self }
    }
}

/// RAII guard; releases the model lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the explorer granted this thread the lock in
        // `Mutex::lock` and revokes it only in our `drop`.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as for `deref` — exclusive by the model lock.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let addr = self.mutex.addr();
        let _ = with_ctx(|ex, tid| {
            ex.op(tid, |g| g.mutex_unlock(tid, addr));
        });
    }
}

impl<T> Drop for Mutex<T> {
    fn drop(&mut self) {
        let addr = self.addr();
        let _ = with_ctx(|ex, _tid| {
            ex.raw_inner(|g| g.forget_mutex(addr));
        });
    }
}
