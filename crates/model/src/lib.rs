//! qf-model: exhaustive concurrency model checking for the workspace's
//! hand-rolled lock-free protocols.
//!
//! The crate has two faces:
//!
//! * [`sync`] — the **qf-sync shim**: drop-in stand-ins for
//!   `std::sync::atomic`, `std::sync::Mutex`, `std::thread::park`/
//!   `unpark`, `UnsafeCell` payload slots, and the spin/yield hints.
//!   In a normal build every wrapper is a `#[inline(always)]`
//!   zero-cost forward to the `std` primitive — codegen is identical
//!   to writing `std::sync::atomic` directly (asserted by the
//!   `shim_equiv` proptest suite and the hotpath bench). Under
//!   `--cfg qf_model` the same names resolve to instrumented model
//!   primitives driven by the explorer below.
//! * the **explorer** ([`model`], [`try_model`], [`Checker`]; only
//!   compiled under `cfg(qf_model)`) — a loom-style DFS over thread
//!   interleavings *and* weak-memory read choices. Every instrumented
//!   operation is a schedule point; loads may read any store the C11
//!   view semantics allow (per-location store history, per-thread
//!   views, release/acquire message views, fence views, a global
//!   SeqCst view for fence-based handshakes), so torn publications and
//!   stale reads that a real machine only exhibits under rare timing
//!   are explored deterministically. Vector clocks detect data races
//!   on [`sync::cell::RaceCell`] payloads; a blocked-thread sweep
//!   detects lost-wakeup deadlocks; state hashing prunes interleavings
//!   that reconverge to an already fully-explored state.
//!
//! The three protocols checked by the workspace harnesses:
//!
//! 1. SPSC ring handoff (`qf-pipeline/src/ring.rs`) — slot publication
//!    via release/acquire on `tail`/`head`, park/wake via the SeqCst
//!    fence handshake.
//! 2. Flight-recorder seqlock (`qf-trace/src/ring.rs`) — per-slot
//!    stamp parking + release publication, acquire/fence reader.
//! 3. Supervisor generation fencing (`qf-pipeline/src/supervisor.rs`)
//!    — stale-worker commits made side-effect-free by a generation
//!    check under the recovery mutex.
//!
//! Run them with `cargo xtask model` (which sets
//! `RUSTFLAGS=--cfg qf_model`); see DESIGN.md §15 for the protocol
//! specs and the model's semantics, including its documented
//! approximations (SeqCst via a global view join, as in loom).

// Unsafe discipline (QF-L007's compiler-side sibling): every op in
// an `unsafe fn` sits in its own SAFETY-commented block.
#![deny(unsafe_op_in_unsafe_fn)]
pub mod sync;

#[cfg(qf_model)]
pub mod rt;

#[cfg(qf_model)]
pub use rt::{model, try_model, Checker, Stats, Violation};

/// Real-build stand-in for [`rt::model`]: runs the closure once on the
/// current thread. Lets harness helpers be written against one name;
/// the exhaustive exploration only exists under `--cfg qf_model`.
#[cfg(not(qf_model))]
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) {
    f();
}
