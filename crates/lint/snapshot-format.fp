# Snapshot wire-format fingerprint (rule QF-L005).
#
# `fingerprint` is FNV-1a over the normalized wire-format sources
# (crates/core/src/snapshot.rs, crates/sketch/src/snapshot.rs, crates/hash/src/wire.rs).
# If it drifts while `version` matches SNAPSHOT_VERSION, the
# encoding changed without a version bump. After a legitimate
# change: bump SNAPSHOT_VERSION if the bytes changed, then run
# `cargo xtask lint --bless` to re-record.
version = 2
fingerprint = 0xcd7f61ac4f0de790
