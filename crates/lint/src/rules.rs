//! The seven workspace rules.
//!
//! | id | rule |
//! |---|---|
//! | `QF-L001` | no `unwrap()`/`expect()`/`panic!` family in non-test lib code; explicit `panic!`/`unreachable!` allowed only in functions documenting `# Panics` |
//! | `QF-L002` | no allocation or `std::time` in hot-path modules outside the cold-function allowlist |
//! | `QF-L003` | every item-level `#[cfg(feature = "telemetry")]` has a `#[cfg(not(feature = "telemetry"))]` fallback in the same file |
//! | `QF-L004` | sketch/candidate counter fields are only mutated through saturating/clamping arithmetic |
//! | `QF-L005` | the snapshot wire-format fingerprint matches the committed record, and `SNAPSHOT_VERSION` was bumped when it changed |
//! | `QF-L006` | every item-level `#[cfg(feature = "trace")]` has a `#[cfg(not(feature = "trace"))]` twin in the same file, so the trace-off build compiles to the identical surface |
//! | `QF-L007` | every atomic field/static declares its protocol with a `// sync:` annotation, and every load/store/RMW ordering is consistent with the declared protocol |
//!
//! Rules work over the [`SourceFile`] model: comments and string contents
//! are already blanked, test regions and enclosing functions are already
//! attributed, so each rule is a direct statement of the convention.

use crate::model::{Line, SourceFile};
use crate::Diagnostic;
use std::fmt;

/// Path suffixes of the paper's per-item hot path (rule `QF-L002`).
/// Crate-qualified so that e.g. qf-telemetry's unrelated `counter.rs` is
/// not swept in by a bare file-name match. The one-pass insert rewrite
/// spread the hot path across the candidate walk, the vague-part fused
/// ops, the CMS ablation twin, and the lane precomputation; the live
/// pipeline added the multi-criteria insert path and the SPSC queue /
/// worker loop; the supervision layer added the per-burst journal commit
/// and the armed-chaos probe — all of which run per item (or per burst)
/// and are held to the same no-alloc/no-clock standard. Checkpoint
/// *sealing* allocates by necessity, which is why it lives in `snapshot`
/// -family cold functions and runs once per interval, never per item.
/// The flight recorder's emit path (`trace/src/ring.rs`, `tls.rs`) is
/// called from inside those same hot loops when the `trace` feature is
/// on, so it is policed identically; dump *rendering* (`dump.rs`)
/// allocates freely because it only runs at recovery time. The SIMD
/// hot path added the SWAR primitive module (`sketch/src/simd.rs`) and
/// promoted the Count-Min twin (`sketch/src/count_min.rs`) into the
/// batch lane-fill path, so both are policed too.
pub const HOT_PATH_FILES: [&str; 15] = [
    "core/src/filter.rs",
    "core/src/candidate.rs",
    "core/src/vague.rs",
    "core/src/multi.rs",
    "sketch/src/count_sketch.rs",
    "sketch/src/count_min.rs",
    "sketch/src/counter.rs",
    "sketch/src/simd.rs",
    "hash/src/lanes.rs",
    "pipeline/src/ring.rs",
    "pipeline/src/worker.rs",
    "pipeline/src/supervisor.rs",
    "pipeline/src/chaos.rs",
    "trace/src/ring.rs",
    "trace/src/tls.rs",
];

/// Path suffixes holding saturating counter storage (rule `QF-L004`).
pub const COUNTER_FILES: [&str; 3] = [
    "sketch/src/count_sketch.rs",
    "sketch/src/count_min.rs",
    "core/src/candidate.rs",
];

/// Does the file's path end with one of the crate-qualified suffixes?
fn path_matches(file: &SourceFile, suffixes: &[&str]) -> bool {
    let p = file.path.to_string_lossy().replace('\\', "/");
    suffixes.iter().any(|s| p.ends_with(s))
}

/// Functions in hot-path modules that are allowed to allocate: one-time
/// construction, wire encode/decode, diagnostics, and invariant audits —
/// none of them run per stream item.
const COLD_FNS: [&str; 16] = [
    "new",
    "try_new",
    "with_capacity",
    "with_exact_capacity",
    "with_memory_budget",
    "try_build",
    "build",
    "from_state",
    "write_state",
    "shape",
    "check_invariants",
    "assert_candidate_invariants",
    "fmt",
    "clone",
    "snapshot",
    "restore",
];

/// Per-file exemptions to `QF-L002`: documented thin *allocating wrappers*
/// kept for API compatibility next to an allocation-free primary path.
/// Deliberately file-qualified — adding `insert` to [`COLD_FNS`] would
/// exempt every hot-path `insert`, which is exactly the function the rule
/// exists to police.
const ALLOC_WRAPPERS: [(&str, &str); 1] = [("core/src/multi.rs", "insert")];

fn diag(rule: &'static str, file: &SourceFile, line: &Line, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.path.clone(),
        line: line.number,
        message,
    }
}

/// `QF-L001`: the panic-free surface.
///
/// Non-test library code must not call `.unwrap()` / `.expect(…)` or use
/// `todo!` / `unimplemented!`. Explicit `panic!` / `unreachable!` is the
/// sanctioned escape hatch for documented panicking wrappers — allowed
/// only when the enclosing function's docs carry a `# Panics` section.
pub fn rule_panic_free(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const R: &str = "QF-L001";
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        if code.contains(".unwrap()") {
            out.push(diag(
                R,
                file,
                line,
                "`.unwrap()` in non-test library code; return a typed error instead".into(),
            ));
        }
        if code.contains(".expect(") {
            out.push(diag(
                R,
                file,
                line,
                "`.expect(…)` in non-test library code; return a typed error instead".into(),
            ));
        }
        for m in ["todo!", "unimplemented!"] {
            if contains_macro(code, m) {
                out.push(diag(
                    R,
                    file,
                    line,
                    format!("`{m}` must not reach library code"),
                ));
            }
        }
        for m in ["panic!", "unreachable!"] {
            if contains_macro(code, m) && !line.fn_has_panics_doc {
                out.push(diag(
                    R,
                    file,
                    line,
                    format!(
                        "`{m}` outside a function documenting `# Panics`{}",
                        line.fn_name
                            .as_deref()
                            .map(|f| format!(" (in fn `{f}`)"))
                            .unwrap_or_default()
                    ),
                ));
            }
        }
    }
}

/// Does `code` invoke macro `name` (`name!(`, `name!{`, `name![`)?
fn contains_macro(code: &str, name: &str) -> bool {
    let mut search = 0;
    while let Some(rel) = code.get(search..).and_then(|s| s.find(name)) {
        let at = search + rel;
        search = at + name.len();
        let before_ok = at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
        let after = code[at + name.len()..].trim_start();
        if before_ok && (after.starts_with('(') || after.starts_with('{') || after.starts_with('['))
        {
            return true;
        }
    }
    false
}

/// `QF-L002`: the hot path neither allocates nor reads clocks.
///
/// Within [`HOT_PATH_FILES`], any allocation marker or `std::time` use
/// outside the [`COLD_FNS`] allowlist is flagged: a per-item allocation or
/// `Instant::now()` costs more than the O(1) insert it decorates.
pub fn rule_hot_path(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const R: &str = "QF-L002";
    if !path_matches(file, &HOT_PATH_FILES) {
        return;
    }
    const ALLOC: [&str; 12] = [
        "vec!",
        "Vec::new",
        "Vec::with_capacity",
        "Box::new",
        "String::new",
        "String::from",
        "format!",
        ".to_string(",
        ".to_owned(",
        ".to_vec(",
        "HashMap::new",
        "BTreeMap::new",
    ];
    const TIME: [&str; 3] = ["std::time", "Instant::now", "SystemTime::now"];
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let cold = line.fn_name.as_deref().is_some_and(|f| {
            COLD_FNS.contains(&f)
                || ALLOC_WRAPPERS
                    .iter()
                    .any(|&(path, wrapper)| f == wrapper && path_matches(file, &[path]))
        });
        if cold {
            continue;
        }
        let code = line.code.as_str();
        for m in ALLOC {
            if code.contains(m) {
                out.push(diag(
                    R,
                    file,
                    line,
                    format!(
                        "allocation (`{m}`) in hot-path module{}; move it to a cold constructor or codec function",
                        line.fn_name
                            .as_deref()
                            .map(|f| format!(" fn `{f}`"))
                            .unwrap_or_default()
                    ),
                ));
            }
        }
        for m in TIME {
            if code.contains(m) {
                out.push(diag(
                    R,
                    file,
                    line,
                    format!("`{m}` in hot-path module; latency is sampled by the eval runner, never inline"),
                ));
            }
        }
    }
}

/// `QF-L003`: telemetry hooks always have a compiled-out twin.
///
/// An item-level `#[cfg(feature = "telemetry")]` without a matching
/// `#[cfg(not(feature = "telemetry"))]` item in the same file means the
/// default build would lose the symbol (or silently change behavior).
/// Statement-level gates inside function bodies are self-contained and
/// skipped.
pub fn rule_telemetry_pairing(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    rule_feature_pairing(file, out, "QF-L003", "telemetry");
}

/// `QF-L006`: trace hooks always have a compiled-out twin.
///
/// Same contract as `QF-L003`, for the flight-recorder feature: the
/// trace-off build must compile to the identical API surface, with every
/// emit point vanishing rather than dangling. An item-level
/// `#[cfg(feature = "trace")]` therefore needs its
/// `#[cfg(not(feature = "trace"))]` stub twin in the same file.
/// Statement-level gates (including `#[cfg(any(feature = "telemetry",
/// feature = "trace"))]` unions, whose attribute text differs) are
/// self-contained and out of scope.
pub fn rule_trace_pairing(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    rule_feature_pairing(file, out, "QF-L006", "trace");
}

/// Shared engine for the cfg-pairing rules: every item-level
/// `#[cfg(feature = "<feature>")]` must have a matching
/// `#[cfg(not(feature = "<feature>"))]` item in the same file.
fn rule_feature_pairing(
    file: &SourceFile,
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    feature: &str,
) {
    let gate = format!("#[cfg(feature = \"{feature}\")]");
    let gated = collect_feature_gated_items(file, &gate);
    if gated.is_empty() {
        return;
    }
    let fallback_attr = format!("#[cfg(not(feature = \"{feature}\"))]");
    let fallbacks = collect_feature_gated_items(file, &fallback_attr);
    for (line_no, item) in gated {
        let paired = match &item {
            GatedItem::Named { kind, name } => fallbacks.iter().any(|(_, f)| match f {
                GatedItem::Named {
                    kind: fk,
                    name: fname,
                } => fk == kind && fname == name,
                GatedItem::Anonymous(_) => false,
            }),
            GatedItem::Anonymous(_) => !fallbacks.is_empty(),
        };
        if !paired {
            let what = match &item {
                GatedItem::Named { kind, name } => format!("{kind} `{name}`"),
                GatedItem::Anonymous(kind) => kind.clone(),
            };
            out.push(Diagnostic {
                rule,
                path: file.path.clone(),
                line: line_no,
                message: format!(
                    "{feature}-gated {what} has no `{fallback_attr}` fallback in this file"
                ),
            });
        }
    }
}

#[derive(Debug, PartialEq)]
enum GatedItem {
    /// `fn`/`mod`/`struct`… with a name we can pair exactly.
    Named { kind: String, name: String },
    /// `use`/`impl`/… — paired loosely (any fallback in the file).
    Anonymous(String),
}

/// Find items directly following attribute `attr` (skipping further
/// attributes and doc lines). Statement-level gates are ignored.
fn collect_feature_gated_items(file: &SourceFile, attr: &str) -> Vec<(usize, GatedItem)> {
    const ITEM_KINDS: [&str; 10] = [
        "fn", "mod", "struct", "enum", "trait", "impl", "use", "static", "const", "type",
    ];
    let mut found = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.raw.trim_start() != attr {
            continue;
        }
        // Walk to the first non-attribute, non-doc line after the gate.
        let mut j = idx + 1;
        let target = loop {
            match file.lines.get(j) {
                None => break None,
                Some(l) => {
                    let t = l.raw.trim_start();
                    if t.starts_with("#[") || t.starts_with("///") || t.is_empty() {
                        j += 1;
                        continue;
                    }
                    break Some(t.to_string());
                }
            }
        };
        let Some(target) = target else { continue };
        let mut words = target
            .split(|c: char| c.is_whitespace() || c == '<' || c == '(')
            .filter(|w| !w.is_empty());
        let mut kind = None;
        for w in words.by_ref() {
            // Skip visibility/safety qualifiers; `pub(crate)` splits into
            // `pub` + `crate)` because `(` is a separator above.
            if w == "pub" || w.ends_with(')') || w == "unsafe" || w == "extern" {
                continue;
            }
            if ITEM_KINDS.contains(&w) {
                kind = Some(w.to_string());
            }
            break;
        }
        let Some(kind) = kind else {
            // First word is not an item keyword: a statement-level gate.
            continue;
        };
        let item = if kind == "fn" || kind == "mod" || kind == "struct" || kind == "trait" {
            match words.next() {
                Some(name) => GatedItem::Named {
                    kind,
                    name: name
                        .trim_end_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                        .to_string(),
                },
                None => GatedItem::Anonymous(kind),
            }
        } else {
            GatedItem::Anonymous(kind)
        };
        found.push((line.number, item));
    }
    found
}

/// `QF-L004`: counter fields only move through saturating arithmetic.
///
/// Within [`COUNTER_FILES`], a raw `+=`/`-=`/`wrapping_*` on a counter
/// accessor (`cells[…]`, `cell_mut`, `*cell`, `.qw`) reintroduces exactly
/// the overflow reversal §III-B forbids. Lines that go through
/// `saturating_*` or an explicit `clamp` are the sanctioned forms. A
/// shared `.as_ptr()` derivation is also exempt: it yields a `*const`
/// no write can go through, and the batch path's prefetch hints compute
/// their target address with `wrapping_add` on exactly such a pointer —
/// `as_mut_ptr()` stays policed because it *can* feed a store.
pub fn rule_counter_arithmetic(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const R: &str = "QF-L004";
    if !path_matches(file, &COUNTER_FILES) {
        return;
    }
    const FIELDS: [&str; 4] = ["cells[", "cell_mut", "*cell", ".qw"];
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        if !FIELDS.iter().any(|f| code.contains(f)) {
            continue;
        }
        if code.contains("saturating_") || code.contains(".clamp(") {
            continue;
        }
        if code.contains(".as_ptr()") && !code.contains("as_mut_ptr") {
            continue;
        }
        let raw_op = code.contains("+=")
            || code.contains("-=")
            || code.contains("wrapping_add")
            || code.contains("wrapping_sub");
        if raw_op {
            out.push(diag(
                R,
                file,
                line,
                "raw arithmetic on a counter field; use `saturating_add_i64` (overflow-reversal guard, §III-B)".into(),
            ));
        }
    }
}

/// `QF-L005`: wire-format changes must bump `SNAPSHOT_VERSION`.
///
/// The committed record (`crates/lint/snapshot-format.fp`) stores the
/// version and a fingerprint of the normalized wire-format sources. This
/// pure function compares a freshly computed pair against it; the
/// filesystem plumbing lives in [`crate::fingerprint`].
pub fn check_fingerprint(
    computed: u64,
    source_version: Option<u32>,
    stored_version: u32,
    stored_fp: u64,
) -> Option<String> {
    let Some(source_version) = source_version else {
        return Some(
            "could not find `SNAPSHOT_VERSION: u32 = …` in crates/core/src/snapshot.rs".into(),
        );
    };
    if source_version < stored_version {
        return Some(format!(
            "SNAPSHOT_VERSION regressed: source has {source_version}, committed record has {stored_version}"
        ));
    }
    if computed != stored_fp {
        if source_version == stored_version {
            return Some(format!(
                "wire-format sources changed (fingerprint {computed:#018x} != recorded {stored_fp:#018x}) \
                 but SNAPSHOT_VERSION is still {stored_version}; bump it if the encoding changed, \
                 then run `cargo xtask lint --bless`"
            ));
        }
        return Some(format!(
            "SNAPSHOT_VERSION bumped to {source_version} but the fingerprint record is stale; \
             run `cargo xtask lint --bless`"
        ));
    }
    if source_version != stored_version {
        return Some(format!(
            "SNAPSHOT_VERSION is {source_version} but the committed record says {stored_version}; \
             run `cargo xtask lint --bless`"
        ));
    }
    None
}

/// `QF-L007`: atomics discipline.
///
/// Every atomic field or static must carry a `// sync:` annotation on a
/// comment/attribute line directly above the declaration, naming the
/// synchronization protocol the word participates in:
///
/// * `counter` — an independent relaxed word (metric, ticket, latch)
///   with no happens-before obligations: **all** orderings `Relaxed`.
/// * `release-acquire` — a publication word: stores `Release`/`SeqCst`,
///   loads `Acquire`/`SeqCst`, RMWs at least one non-relaxed ordering.
/// * `guarded-by <word>` — a payload word whose every access is ordered
///   by another field's protocol (seqlock stamp, mutex): all orderings
///   `Relaxed`, the guard provides the fences.
/// * `seqcst-handshake` — a Dekker-style flag sealed by `SeqCst` fences:
///   orderings `Relaxed` or `SeqCst`, never half-measures.
///
/// Use sites are cross-checked against the declared protocol. A
/// deliberate deviation is justified inline with a trailing
/// `// sync: relaxed-ok — reason` (any `<word>-ok` marker), which is the
/// reviewed escape hatch. Receivers the lexer cannot resolve to a
/// declaration (locals, iterator bindings) are skipped; declarations in
/// other files resolve through a workspace-wide map unless two files
/// declare the same name under different protocols.
///
/// `crates/model` is exempt: the qf-sync shim is mode-polymorphic by
/// design — it forwards caller-chosen orderings, so no single protocol
/// applies to its words.
pub fn rule_atomics_discipline(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    const R: &str = "QF-L007";
    // Pass 1: collect annotated declarations per file (and flag the
    // unannotated / unparseable ones).
    let mut per_file: Vec<std::collections::BTreeMap<String, SyncMode>> = Vec::new();
    for file in files {
        let mut decls = std::collections::BTreeMap::new();
        if !exempt_from_atomics_rule(file) {
            for (idx, line) in file.lines.iter().enumerate() {
                let Some(name) = atomic_declaration_name(line) else {
                    continue;
                };
                match find_sync_annotation(file, idx) {
                    Some(SyncAnnotation::Mode(mode)) => {
                        match decls.entry(name) {
                            std::collections::btree_map::Entry::Vacant(e) => {
                                e.insert(mode);
                            }
                            std::collections::btree_map::Entry::Occupied(mut e) => {
                                // Two same-named words in one file under
                                // different protocols: ambiguous receiver,
                                // refuse to guess at use sites.
                                if *e.get() != mode {
                                    e.insert(SyncMode::Ambiguous);
                                }
                            }
                        }
                    }
                    Some(SyncAnnotation::Unknown(word)) => out.push(diag(
                        R,
                        file,
                        line,
                        format!(
                            "atomic `{name}` declares unknown sync protocol `{word}`; \
                             use counter, release-acquire, guarded-by <word>, or seqcst-handshake"
                        ),
                    )),
                    None => out.push(diag(
                        R,
                        file,
                        line,
                        format!(
                            "atomic `{name}` has no `// sync:` protocol annotation above its declaration"
                        ),
                    )),
                }
            }
        }
        per_file.push(decls);
    }
    // Workspace fallback: a name declared in exactly one protocol
    // anywhere resolves across files; conflicting names do not.
    let mut global: std::collections::BTreeMap<String, SyncMode> =
        std::collections::BTreeMap::new();
    for decls in &per_file {
        for (name, mode) in decls {
            match global.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(*mode);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if *e.get() != *mode {
                        e.insert(SyncMode::Ambiguous);
                    }
                }
            }
        }
    }
    // Pass 2: check every resolvable use site against its protocol.
    for (file, decls) in files.iter().zip(&per_file) {
        if exempt_from_atomics_rule(file) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for site in atomic_op_sites(&line.code) {
                let receiver = match site.receiver {
                    Some(ref r) => r.clone(),
                    // Chained call starting a line: the receiver sits at
                    // the end of the previous code line.
                    None => match idx.checked_sub(1).and_then(|p| {
                        receiver_before(
                            file.lines[p].code.trim_end(),
                            file.lines[p].code.trim_end().len(),
                        )
                    }) {
                        Some(r) => r,
                        None => continue,
                    },
                };
                let mode = match decls.get(&receiver).or_else(|| global.get(&receiver)) {
                    Some(SyncMode::Ambiguous) | None => continue,
                    Some(m) => *m,
                };
                if has_site_justification(&line.raw) {
                    continue;
                }
                let orderings = collect_orderings(file, idx, site.args_start);
                if orderings.is_empty() {
                    continue;
                }
                if let Some(problem) = mode.check(site.kind, &orderings) {
                    out.push(diag(
                        R,
                        file,
                        line,
                        format!(
                            "`{receiver}.{}` uses {problem}, but `{receiver}` is declared `// sync: {}`; \
                             fix the ordering or justify with a trailing `// sync: relaxed-ok — reason`",
                            site.op, mode
                        ),
                    ));
                }
            }
        }
    }
}

/// The declared synchronization protocol of an atomic word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncMode {
    /// Independent relaxed word: all orderings `Relaxed`.
    Counter,
    /// Publication word: `Release`-class stores, `Acquire`-class loads.
    ReleaseAcquire,
    /// Payload word ordered entirely by another field's protocol.
    Guarded,
    /// Flag sealed by `SeqCst` fences: `Relaxed` or `SeqCst` only.
    SeqcstHandshake,
    /// Same name declared under two protocols: skip use-site checks.
    Ambiguous,
}

impl fmt::Display for SyncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyncMode::Counter => "counter",
            SyncMode::ReleaseAcquire => "release-acquire",
            SyncMode::Guarded => "guarded-by",
            SyncMode::SeqcstHandshake => "seqcst-handshake",
            SyncMode::Ambiguous => "<ambiguous>",
        })
    }
}

/// What kind of access an op site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

impl SyncMode {
    /// `None` when `orderings` conform to the protocol for an access of
    /// `kind`; otherwise a short description of the violation.
    fn check(self, kind: OpKind, orderings: &[String]) -> Option<String> {
        let strong = |o: &String| o != "Relaxed";
        match self {
            SyncMode::Counter | SyncMode::Guarded => orderings
                .iter()
                .find(|o| strong(o))
                .map(|o| format!("`Ordering::{o}`")),
            SyncMode::SeqcstHandshake => orderings
                .iter()
                .find(|o| *o != "Relaxed" && *o != "SeqCst")
                .map(|o| format!("`Ordering::{o}`")),
            SyncMode::ReleaseAcquire => match kind {
                OpKind::Load => {
                    let o = orderings.first()?;
                    (o != "Acquire" && o != "SeqCst")
                        .then(|| format!("a `Ordering::{o}` load (needs Acquire or SeqCst)"))
                }
                OpKind::Store => {
                    let o = orderings.first()?;
                    (o != "Release" && o != "SeqCst")
                        .then(|| format!("a `Ordering::{o}` store (needs Release or SeqCst)"))
                }
                OpKind::Rmw => (!orderings.iter().any(strong))
                    .then(|| "an all-Relaxed RMW (needs an acquiring/releasing ordering)".into()),
            },
            SyncMode::Ambiguous => None,
        }
    }
}

/// The qf-sync shim (crates/model) forwards caller-chosen orderings and
/// is checked by the explorer itself, not by annotation.
fn exempt_from_atomics_rule(file: &SourceFile) -> bool {
    let p = file.path.to_string_lossy().replace('\\', "/");
    p.contains("crates/model/src") || p.contains("model/src/rt")
}

/// If `line` declares an atomic field or static, its lookup name:
/// the field/static identifier, or `"0"` for a tuple-struct payload.
fn atomic_declaration_name(line: &Line) -> Option<String> {
    let code = line.code.trim();
    let at = code.find("Atomic")?;
    let tail = &code[at..];
    const TYPES: [&str; 7] = [
        "AtomicBool",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicI64",
        "AtomicI32",
        "AtomicU16",
    ];
    let ty = TYPES.iter().find(|t| tail.starts_with(**t))?;
    // Constructors, imports, generics machinery, and borrows are not
    // declarations that own a protocol. (`Atomic…::` is a constructor
    // path; an initializer *after* the type annotation is fine.)
    if tail[ty.len()..].starts_with("::")
        || code.starts_with("use ")
        || code.starts_with("pub use ")
        || code.contains("impl ")
        || code.contains(" fn ")
        || code.starts_with("fn ")
        || code.contains("let ")
        || code.contains("const ")
        || code.contains('&')
    {
        return None;
    }
    if let Some(rest) = code
        .strip_prefix("pub ")
        .unwrap_or(code)
        .strip_prefix("static ")
        .or_else(|| {
            code.strip_prefix("pub(crate) ")
                .and_then(|c| c.strip_prefix("static "))
        })
    {
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        return (!name.is_empty()).then_some(name);
    }
    // Tuple struct: `pub struct Name(AtomicU64);` — register the
    // `self.0` receiver.
    if code.contains("struct ") && code.contains('(') {
        return Some("0".to_string());
    }
    // Named field: `name: [pub] <type with Atomic>,`.
    let colon = code.find(':')?;
    let before = code[..colon].trim();
    let name = before
        .rsplit(|c: char| c.is_whitespace() || c == ')')
        .next()?
        .trim();
    (!name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .then(|| name.to_string())
}

/// A parsed `// sync:` declaration annotation.
enum SyncAnnotation {
    Mode(SyncMode),
    Unknown(String),
}

/// Walk upward from the declaration at `lines[idx]` over contiguous
/// comment/attribute lines looking for a `// sync:` annotation.
fn find_sync_annotation(file: &SourceFile, idx: usize) -> Option<SyncAnnotation> {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = file.lines[i].raw.trim_start();
        if !(t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")) {
            return None;
        }
        if let Some(rest) = t.strip_prefix("// sync: ") {
            let mode = rest.split([' ', '\u{2014}']).next().unwrap_or("");
            return Some(match mode {
                "counter" => SyncAnnotation::Mode(SyncMode::Counter),
                "release-acquire" => SyncAnnotation::Mode(SyncMode::ReleaseAcquire),
                "guarded-by" => SyncAnnotation::Mode(SyncMode::Guarded),
                "seqcst-handshake" => SyncAnnotation::Mode(SyncMode::SeqcstHandshake),
                other => SyncAnnotation::Unknown(other.to_string()),
            });
        }
    }
    None
}

/// One atomic method call found on a line.
struct OpSite {
    /// Method name (`load`, `store`, `fetch_add`, …).
    op: String,
    kind: OpKind,
    /// Receiver identifier, if it sits on the same line.
    receiver: Option<String>,
    /// Byte offset just past the op's opening `(` in the line's code.
    args_start: usize,
}

/// Scan a code line for atomic-looking method calls.
fn atomic_op_sites(code: &str) -> Vec<OpSite> {
    const OPS: [(&str, OpKind); 6] = [
        (".load(", OpKind::Load),
        (".store(", OpKind::Store),
        (".swap(", OpKind::Rmw),
        (".compare_exchange", OpKind::Rmw),
        (".fetch_", OpKind::Rmw),
        (".fetch_update(", OpKind::Rmw),
    ];
    let mut sites = Vec::new();
    for (pat, kind) in OPS {
        if pat == ".fetch_update(" {
            continue; // covered by the `.fetch_` prefix
        }
        let mut search = 0;
        while let Some(rel) = code.get(search..).and_then(|s| s.find(pat)) {
            let at = search + rel;
            search = at + pat.len();
            // Resolve the method name and its `(` for prefix patterns.
            let after_dot = at + 1;
            let name_end = code[after_dot..]
                .find('(')
                .map(|p| after_dot + p)
                .unwrap_or(code.len());
            let op: String = code[after_dot..name_end].to_string();
            if kind == OpKind::Rmw && pat == ".fetch_" && !op.starts_with("fetch_") {
                continue;
            }
            let args_start = (name_end + 1).min(code.len());
            sites.push(OpSite {
                op,
                kind,
                receiver: receiver_before(code, at),
                args_start,
            });
        }
    }
    sites
}

/// The identifier ending at byte offset `at` in `code`, skipping one
/// balanced `[…]` index if present (`buckets[i]` → `buckets`).
fn receiver_before(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = at;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i > 0 && bytes[i - 1] == b']' {
        let mut depth = 1;
        i -= 1;
        while i > 0 && depth > 0 {
            i -= 1;
            match bytes[i] {
                b']' => depth += 1,
                b'[' => depth -= 1,
                _ => {}
            }
        }
    }
    let end = i;
    while i > 0 && is_ident_char(bytes[i - 1]) {
        i -= 1;
    }
    (i < end).then(|| code[i..end].to_string())
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `Ordering::X` tokens inside the call whose arguments start at
/// `args_start` on `lines[idx]`, following the call across up to three
/// continuation lines until its parens close.
fn collect_orderings(file: &SourceFile, idx: usize, args_start: usize) -> Vec<String> {
    let mut orderings = Vec::new();
    let mut depth = 1i32;
    for (n, line) in file.lines[idx..].iter().take(4).enumerate() {
        let code = &line.code;
        let start = if n == 0 {
            args_start.min(code.len())
        } else {
            0
        };
        // Only look at argument text: stop at the call's closing paren
        // so a second call on the same line cannot leak its orderings in.
        let mut end = code.len();
        for (off, c) in code[start..].char_indices() {
            match c {
                '(' => depth += 1,
                ')' => depth -= 1,
                _ => {}
            }
            if depth == 0 {
                end = start + off;
                break;
            }
        }
        let window = &code[start..end];
        let mut search = 0;
        while let Some(rel) = window.get(search..).and_then(|s| s.find("Ordering::")) {
            let at = search + rel + "Ordering::".len();
            search = at;
            let name: String = window[at..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !name.is_empty() {
                orderings.push(name);
            }
        }
        if depth <= 0 {
            break;
        }
    }
    orderings
}

/// A trailing `// sync: <word>-ok — reason` on the raw line is the
/// reviewed justification for deviating from the declared protocol.
fn has_site_justification(raw: &str) -> bool {
    raw.find("// sync: ")
        .map(|at| &raw[at + "// sync: ".len()..])
        .and_then(|rest| rest.split_whitespace().next())
        .is_some_and(|word| word.ends_with("-ok"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn run(rule: fn(&SourceFile, &mut Vec<Diagnostic>), rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(format!("crates/{rel}"), src);
        let mut out = Vec::new();
        rule(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n    }\n}\n";
        let d = run(rule_panic_free, "fake/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn documented_panic_is_allowed() {
        let ok = "/// # Panics\n/// When broken.\nfn f() {\n    panic!(\"broken\");\n}\n";
        assert!(run(rule_panic_free, "fake/src/lib.rs", ok).is_empty());
        let bad = "fn f() {\n    panic!(\"broken\");\n}\n";
        assert_eq!(run(rule_panic_free, "fake/src/lib.rs", bad).len(), 1);
    }

    #[test]
    fn unwrap_in_comment_or_string_is_ignored() {
        let src = "fn f() {\n    // x.unwrap()\n    let s = \".unwrap()\";\n    let _ = s;\n}\n";
        assert!(run(rule_panic_free, "fake/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_flagged_outside_cold_fns() {
        let src = "fn insert(&mut self) {\n    let s = format!(\"x\");\n}\nfn new() -> Self {\n    let v = Vec::with_capacity(8);\n}\n";
        let d = run(rule_hot_path, "core/src/filter.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        // Same source in a non-hot file: no diagnostics at all.
        assert!(run(rule_hot_path, "core/src/builder.rs", src).is_empty());
    }

    #[test]
    fn alloc_wrapper_exemption_is_file_scoped() {
        let src = "fn insert(&mut self) {\n    let mut out = Vec::new();\n}\n";
        // The documented allocating wrapper in multi.rs is tolerated…
        assert!(run(rule_hot_path, "core/src/multi.rs", src).is_empty());
        // …but the same fn name allocating in filter.rs is still a finding.
        assert_eq!(run(rule_hot_path, "core/src/filter.rs", src).len(), 1);
        // And other multi.rs functions get no blanket pass.
        let other = "fn insert_into(&mut self) {\n    let v = Vec::new();\n}\n";
        assert_eq!(run(rule_hot_path, "core/src/multi.rs", other).len(), 1);
    }

    #[test]
    fn pipeline_queue_and_worker_files_are_hot_path() {
        let alloc = "fn pop_wait(&mut self) {\n    let s = format!(\"x\");\n}\n";
        assert_eq!(run(rule_hot_path, "pipeline/src/ring.rs", alloc).len(), 1);
        assert_eq!(run(rule_hot_path, "pipeline/src/worker.rs", alloc).len(), 1);
        let clock = "fn run_worker() {\n    let t = std::time::Instant::now();\n}\n";
        assert!(!run(rule_hot_path, "pipeline/src/worker.rs", clock).is_empty());
        // Ring construction may allocate its slot array.
        let ctor = "fn with_capacity(n: usize) -> Self {\n    let v = Vec::with_capacity(n);\n}\n";
        assert!(run(rule_hot_path, "pipeline/src/ring.rs", ctor).is_empty());
    }

    #[test]
    fn supervisor_and_chaos_files_are_hot_path() {
        // The per-burst commit (journal append) and the per-item chaos
        // probe must stay allocation- and clock-free…
        let alloc = "fn append(&mut self) {\n    let s = format!(\"x\");\n}\n";
        assert_eq!(
            run(rule_hot_path, "pipeline/src/supervisor.rs", alloc).len(),
            1
        );
        let clock = "fn before_apply(&self) {\n    let t = std::time::Instant::now();\n}\n";
        assert!(!run(rule_hot_path, "pipeline/src/chaos.rs", clock).is_empty());
        // …while checkpoint sealing allocates inside the cold
        // snapshot/restore family, off the per-item path.
        let seal = "fn snapshot(&self) -> Vec<u8> {\n    let v = Vec::with_capacity(64);\n}\n";
        assert!(run(rule_hot_path, "pipeline/src/supervisor.rs", seal).is_empty());
    }

    #[test]
    fn hot_path_clock_flagged() {
        let src = "fn add(&mut self) {\n    let t = std::time::Instant::now();\n}\n";
        let d = run(rule_hot_path, "sketch/src/count_sketch.rs", src);
        assert!(!d.is_empty());
    }

    #[test]
    fn telemetry_gate_requires_fallback() {
        let bad = "#[cfg(feature = \"telemetry\")]\nfn hook() {\n    record();\n}\n";
        let d = run(rule_telemetry_pairing, "fake/src/lib.rs", bad);
        assert_eq!(d.len(), 1);
        let ok = "#[cfg(feature = \"telemetry\")]\nfn hook() {\n    record();\n}\n#[cfg(not(feature = \"telemetry\"))]\nfn hook() {}\n";
        assert!(run(rule_telemetry_pairing, "fake/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn statement_level_telemetry_gate_is_skipped() {
        let src = "fn add(&mut self) {\n    #[cfg(feature = \"telemetry\")]\n    let before = cell.to_i64();\n    work();\n}\n";
        assert!(run(rule_telemetry_pairing, "fake/src/lib.rs", src).is_empty());
    }

    #[test]
    fn trace_gate_requires_twin() {
        let bad = "#[cfg(feature = \"trace\")]\nmod imp {\n    pub fn emit() {}\n}\n";
        let d = run(rule_trace_pairing, "pipeline/src/flight.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "QF-L006");
        let ok = "#[cfg(feature = \"trace\")]\nmod imp {\n    pub fn emit() {}\n}\n#[cfg(not(feature = \"trace\"))]\nmod imp {\n    pub fn emit() {}\n}\n";
        assert!(run(rule_trace_pairing, "pipeline/src/flight.rs", ok).is_empty());
    }

    #[test]
    fn trace_and_telemetry_pairing_do_not_cross_match() {
        // A telemetry fallback must not satisfy a trace gate (and the
        // union attribute is statement-level territory, not this rule's).
        let src = "#[cfg(feature = \"trace\")]\nfn hook() {}\n#[cfg(not(feature = \"telemetry\"))]\nfn hook() {}\n";
        assert_eq!(run(rule_trace_pairing, "fake/src/lib.rs", src).len(), 1);
        assert!(run(rule_telemetry_pairing, "fake/src/lib.rs", src).is_empty());
    }

    #[test]
    fn trace_emit_modules_are_hot_path() {
        // The per-event emit path must stay allocation- and clock-free…
        let alloc = "fn emit(&self) {\n    let s = format!(\"x\");\n}\n";
        assert_eq!(run(rule_hot_path, "trace/src/ring.rs", alloc).len(), 1);
        assert_eq!(run(rule_hot_path, "trace/src/tls.rs", alloc).len(), 1);
        let clock = "fn emit(&self) {\n    let t = std::time::Instant::now();\n}\n";
        assert!(!run(rule_hot_path, "trace/src/ring.rs", clock).is_empty());
        // …while ring construction and snapshotting allocate in cold fns,
        // and dump rendering is not a hot-path file at all.
        let ctor = "fn with_capacity(n: usize) -> Self {\n    let v = Vec::with_capacity(n);\n}\n";
        assert!(run(rule_hot_path, "trace/src/ring.rs", ctor).is_empty());
        assert!(run(rule_hot_path, "trace/src/dump.rs", alloc).is_empty());
    }

    #[test]
    fn raw_counter_arithmetic_flagged() {
        let bad = "fn add(&mut self) {\n    self.cells[i] += 1;\n}\n";
        let d = run(rule_counter_arithmetic, "sketch/src/count_sketch.rs", bad);
        assert_eq!(d.len(), 1);
        let ok = "fn add(&mut self) {\n    *cell = cell.saturating_add_i64(w);\n}\n";
        assert!(run(rule_counter_arithmetic, "sketch/src/count_sketch.rs", ok).is_empty());
        // The same raw op outside counter files is not this rule's business.
        assert!(run(rule_counter_arithmetic, "core/src/strategy.rs", bad).is_empty());
        // Read-only pointer derivation for prefetch hints is legal: the
        // `*const` from `.as_ptr()` cannot carry a store, even though the
        // address math uses `wrapping_add`.
        let prefetch =
            "fn prefetch(&self) {\n    prefetch_read(self.qws.as_ptr().wrapping_add(start));\n}\n";
        assert!(run(rule_counter_arithmetic, "core/src/candidate.rs", prefetch).is_empty());
        // …but a mutable pointer into counter storage stays flagged.
        let mutptr =
            "fn bump(&mut self) {\n    let p = self.qws.as_mut_ptr().wrapping_add(i);\n}\n";
        assert_eq!(
            run(rule_counter_arithmetic, "core/src/candidate.rs", mutptr).len(),
            1
        );
    }

    #[test]
    fn fingerprint_verdicts() {
        // Clean: same version, same fingerprint.
        assert!(check_fingerprint(7, Some(2), 2, 7).is_none());
        // Sources changed, version not bumped.
        let msg = check_fingerprint(8, Some(2), 2, 7);
        assert!(msg.is_some_and(|m| m.contains("bump")));
        // Version bumped, record stale.
        let msg = check_fingerprint(8, Some(3), 2, 7);
        assert!(msg.is_some_and(|m| m.contains("--bless")));
        // Version regressed.
        let msg = check_fingerprint(7, Some(1), 2, 7);
        assert!(msg.is_some_and(|m| m.contains("regressed")));
        // Version constant missing entirely.
        assert!(check_fingerprint(7, None, 2, 7).is_some());
    }
}
