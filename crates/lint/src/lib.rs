//! # qf-lint
//!
//! A dependency-free static analyzer for the QuantileFilter workspace,
//! driven by `cargo xtask lint`. It enforces the conventions that keep the
//! reproduction honest but that `rustc`/clippy cannot see:
//!
//! * **`QF-L001` panic-free surface** — no `.unwrap()`/`.expect()`/
//!   `todo!`/`unimplemented!` in non-test library code; explicit `panic!`
//!   only inside functions documenting `# Panics`.
//! * **`QF-L002` hot-path hygiene** — no allocation or clock reads in the
//!   per-item modules (`filter.rs`, `count_sketch.rs`, `counter.rs`)
//!   outside cold constructors/codecs.
//! * **`QF-L003` telemetry pairing** — every item-level
//!   `#[cfg(feature = "telemetry")]` has a compiled-out twin, so the
//!   default build never loses a symbol.
//! * **`QF-L004` saturating counters** — sketch/candidate counter fields
//!   only move through saturating/clamping arithmetic (§III-B's
//!   overflow-reversal guard).
//! * **`QF-L005` wire-format versioning** — a committed fingerprint of the
//!   snapshot encoder sources must match, and must be re-blessed together
//!   with a `SNAPSHOT_VERSION` bump whenever the encoding changes.
//! * **`QF-L006` trace pairing** — every item-level
//!   `#[cfg(feature = "trace")]` has a compiled-out twin, so the
//!   flight-recorder build and the default build expose the same surface.
//! * **`QF-L007` atomics discipline** — every atomic field/static
//!   declares its protocol with a `// sync:` annotation (`counter`,
//!   `release-acquire`, `guarded-by <word>`, `seqcst-handshake`), and
//!   every load/store/RMW ordering is cross-checked against it; the
//!   reviewed escape hatch is a trailing `// sync: relaxed-ok — reason`.
//!
//! The analyzer is deliberately *syn-less*: a [`model`] lexer blanks
//! comments and string contents, tracks `#[cfg(test)]` regions, and
//! attributes lines to enclosing functions — enough for every rule to be a
//! few lines of direct pattern logic with `file:line` spans, with zero
//! build-time cost on a bare toolchain.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fingerprint;
pub mod model;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use model::SourceFile;

/// One finding, with a clickable `path:line` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`QF-L001` …).
    pub rule: &'static str,
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Run every rule over the workspace rooted at `root`.
///
/// Library sources are every `.rs` file under `crates/*/src` and the
/// umbrella `src/`, excluding `src/bin` CLI entry points, `vendor/`
/// stand-ins, and build output.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    // Parse everything up front: QF-L007 resolves atomics declared in
    // one file but used in another, so it needs the whole workspace.
    let mut files = Vec::new();
    for path in lib_sources(root)? {
        files.push(SourceFile::read(&path)?);
    }
    for file in &files {
        rules::rule_panic_free(file, &mut diagnostics);
        rules::rule_hot_path(file, &mut diagnostics);
        rules::rule_telemetry_pairing(file, &mut diagnostics);
        rules::rule_trace_pairing(file, &mut diagnostics);
        rules::rule_counter_arithmetic(file, &mut diagnostics);
    }
    rules::rule_atomics_discipline(&files, &mut diagnostics);
    check_wire_format(root, &mut diagnostics)?;
    diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(diagnostics)
}

/// Rule `QF-L005` against the committed record.
fn check_wire_format(root: &Path, out: &mut Vec<Diagnostic>) -> std::io::Result<()> {
    let record_path = fingerprint::record_path(root);
    let record_text = match std::fs::read_to_string(&record_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            out.push(Diagnostic {
                rule: "QF-L005",
                path: record_path,
                line: 1,
                message: "missing committed fingerprint record; run `cargo xtask lint --bless`"
                    .into(),
            });
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let record = match fingerprint::parse_record(&record_text) {
        Ok(r) => r,
        Err(msg) => {
            out.push(Diagnostic {
                rule: "QF-L005",
                path: record_path,
                line: 1,
                message: msg,
            });
            return Ok(());
        }
    };
    let computed = fingerprint::compute(root)?;
    let source_version = fingerprint::source_version(root)?;
    if let Some(message) =
        rules::check_fingerprint(computed, source_version, record.version, record.fingerprint)
    {
        out.push(Diagnostic {
            rule: "QF-L005",
            path: root.join(fingerprint::WIRE_FORMAT_SOURCES[0]),
            line: 1,
            message,
        });
    }
    Ok(())
}

/// Recompute and rewrite the committed wire-format record.
pub fn bless(root: &Path) -> std::io::Result<fingerprint::FpRecord> {
    let computed = fingerprint::compute(root)?;
    let version = fingerprint::source_version(root)?.unwrap_or(0);
    let record = fingerprint::FpRecord {
        version,
        fingerprint: computed,
    };
    std::fs::write(
        fingerprint::record_path(root),
        fingerprint::render_record(record),
    )?;
    Ok(record)
}

/// Enumerate the library sources to lint.
fn lib_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(&umbrella, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `src/bin` holds CLI entry points: argument parsing there may
            // use expect-style ergonomics and is outside the lint surface.
            if path.file_name().and_then(|n| n.to_str()) == Some("bin") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Seeded-violation self-test: feed each rule a known-bad snippet and a
/// known-good twin, and fail loudly if any rule stays silent (or
/// misfires). This is the linter's own regression gate — `cargo xtask
/// lint --self-test` runs it in CI so a refactor of the lexer can never
/// silently blind a rule.
pub fn self_test() -> Result<(), Vec<String>> {
    let mut failures = Vec::new();
    let mut case = |name: &str,
                    rule: fn(&SourceFile, &mut Vec<Diagnostic>),
                    file_name: &str,
                    src: &str,
                    expect_hits: bool| {
        let file = SourceFile::parse(format!("crates/{file_name}"), src);
        let mut out = Vec::new();
        rule(&file, &mut out);
        if out.is_empty() == expect_hits {
            failures.push(format!(
                "{name}: expected {} diagnostics, got {}",
                if expect_hits { "some" } else { "no" },
                out.len()
            ));
        }
    };

    case(
        "L001 seeded unwrap",
        rules::rule_panic_free,
        "fake/src/lib.rs",
        "fn f() {\n    let v = x.unwrap();\n}\n",
        true,
    );
    case(
        "L001 test-only unwrap stays legal",
        rules::rule_panic_free,
        "fake/src/lib.rs",
        "#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n    }\n}\n",
        false,
    );
    case(
        "L001 undocumented panic",
        rules::rule_panic_free,
        "fake/src/lib.rs",
        "fn f() {\n    panic!(\"boom\");\n}\n",
        true,
    );
    case(
        "L001 documented panic stays legal",
        rules::rule_panic_free,
        "fake/src/lib.rs",
        "/// # Panics\nfn f() {\n    panic!(\"boom\");\n}\n",
        false,
    );
    case(
        "L002 seeded hot-path allocation",
        rules::rule_hot_path,
        "core/src/filter.rs",
        "fn insert(&mut self) {\n    let s = format!(\"{x}\");\n}\n",
        true,
    );
    case(
        "L002 cold constructor stays legal",
        rules::rule_hot_path,
        "sketch/src/count_sketch.rs",
        "fn new() -> Self {\n    let cells = Vec::with_capacity(n);\n}\n",
        false,
    );
    case(
        "L002 seeded clock read",
        rules::rule_hot_path,
        "sketch/src/counter.rs",
        "fn tick(&mut self) {\n    let t = std::time::Instant::now();\n}\n",
        true,
    );
    case(
        "L003 seeded unpaired telemetry gate",
        rules::rule_telemetry_pairing,
        "fake/src/lib.rs",
        "#[cfg(feature = \"telemetry\")]\nmod hooks {\n    fn go() {}\n}\n",
        true,
    );
    case(
        "L003 paired gate stays legal",
        rules::rule_telemetry_pairing,
        "fake/src/lib.rs",
        "#[cfg(feature = \"telemetry\")]\nmod hooks {\n}\n#[cfg(not(feature = \"telemetry\"))]\nmod hooks {\n}\n",
        false,
    );
    case(
        "L006 seeded unpaired trace gate",
        rules::rule_trace_pairing,
        "pipeline/src/flight.rs",
        "#[cfg(feature = \"trace\")]\nmod imp {\n    fn go() {}\n}\n",
        true,
    );
    case(
        "L006 paired trace gate stays legal",
        rules::rule_trace_pairing,
        "pipeline/src/flight.rs",
        "#[cfg(feature = \"trace\")]\nmod imp {\n}\n#[cfg(not(feature = \"trace\"))]\nmod imp {\n}\n",
        false,
    );
    case(
        "L004 seeded raw counter arithmetic",
        rules::rule_counter_arithmetic,
        "sketch/src/count_min.rs",
        "fn add(&mut self) {\n    self.cells[i] += 1;\n}\n",
        true,
    );
    case(
        "L004 saturating update stays legal",
        rules::rule_counter_arithmetic,
        "sketch/src/count_min.rs",
        "fn add(&mut self) {\n    *cell = cell.saturating_add_i64(delta);\n}\n",
        false,
    );

    // L005 verdict table, exercised as pure logic.
    if rules::check_fingerprint(1, Some(2), 2, 1).is_some() {
        failures.push("L005 clean state misreported".into());
    }
    if rules::check_fingerprint(9, Some(2), 2, 1).is_none() {
        failures.push("L005 missed an unbumped wire-format change".into());
    }

    // L007 takes the whole workspace (cross-file declaration lookup), so
    // it gets its own slice-shaped harness.
    let mut case7 = |name: &str, src: &str, expect_hits: bool| {
        let file = SourceFile::parse("crates/fake/src/lib.rs", src);
        let mut out = Vec::new();
        rules::rule_atomics_discipline(std::slice::from_ref(&file), &mut out);
        if out.is_empty() == expect_hits {
            failures.push(format!(
                "{name}: expected {} diagnostics, got {} ({:?})",
                if expect_hits { "some" } else { "no" },
                out.len(),
                out.iter().map(|d| &d.message).collect::<Vec<_>>(),
            ));
        }
    };
    case7(
        "L007 seeded unannotated atomic field",
        "struct S {\n    head: AtomicU64,\n}\n",
        true,
    );
    case7(
        "L007 annotated counter stays legal",
        "struct S {\n    // sync: counter — test word\n    head: AtomicU64,\n}\nfn f(s: &S) {\n    s.head.fetch_add(1, Ordering::Relaxed);\n}\n",
        false,
    );
    case7(
        "L007 seeded acquire on a counter word",
        "struct S {\n    // sync: counter — test word\n    head: AtomicU64,\n}\nfn f(s: &S) {\n    let _ = s.head.load(Ordering::Acquire);\n}\n",
        true,
    );
    case7(
        "L007 seeded relaxed publish on a release-acquire word",
        "struct S {\n    // sync: release-acquire — publishes the payload\n    tail: AtomicUsize,\n}\nfn f(s: &S) {\n    s.tail.store(1, Ordering::Relaxed);\n}\n",
        true,
    );
    case7(
        "L007 justified relaxed load stays legal",
        "struct S {\n    // sync: release-acquire — publishes the payload\n    tail: AtomicUsize,\n}\nfn f(s: &S) {\n    let _ = s.tail.load(Ordering::Relaxed); // sync: relaxed-ok — producer-owned word\n}\n",
        false,
    );
    case7(
        "L007 seeded unknown protocol name",
        "struct S {\n    // sync: vibes — hope for the best\n    head: AtomicU64,\n}\n",
        true,
    );

    // Lexer regression gate: raw strings and char literals must blank
    // cleanly, or every pattern rule above silently goes blind.
    let raw_str = "fn f() {\n    let s = r#\"x.unwrap() and \"quoted\"\"#;\n    let b = br#\"panic!(\"no\")\"#;\n    let nl = '\\n';\n    work();\n}\nfn g() {\n    tail();\n}\n";
    let parsed = model::SourceFile::parse("crates/fake/src/lib.rs", raw_str);
    if parsed.lines[1].code.contains("unwrap") || parsed.lines[2].code.contains("panic") {
        failures.push("lexer: raw-string contents leaked into code text".into());
    }
    if parsed.lines.len() != raw_str.lines().count() {
        failures.push("lexer: line structure lost while blanking literals".into());
    }
    if !matches!(parsed.lines.get(7), Some(l) if l.fn_name.as_deref() == Some("g")) {
        failures.push("lexer: char-literal/raw-string blanking skewed fn attribution".into());
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        if let Err(failures) = self_test() {
            panic!("self-test failures: {failures:?}");
        }
    }

    #[test]
    fn diagnostics_render_with_spans() {
        let d = Diagnostic {
            rule: "QF-L001",
            path: PathBuf::from("crates/core/src/filter.rs"),
            line: 42,
            message: "example".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/filter.rs:42: [QF-L001] example"
        );
    }
}
