//! Wire-format fingerprinting (rule `QF-L005`).
//!
//! The snapshot envelope promises that any byte-level change to the
//! serialization is accompanied by a `SNAPSHOT_VERSION` bump, so old
//! snapshots are rejected with a typed version error instead of being
//! misparsed. That promise is only as good as the discipline behind it —
//! this module makes it checkable.
//!
//! A committed record (`crates/lint/snapshot-format.fp`) stores the
//! current version together with an FNV-1a fingerprint of the normalized
//! wire-format sources (comments stripped, whitespace collapsed, string
//! and byte literals **kept** — the magic constant lives in one). The lint
//! run recomputes the fingerprint; a mismatch with an unchanged version is
//! the exact failure mode this rule exists to catch. `cargo xtask lint
//! --bless` re-records after a legitimate change.

use std::path::{Path, PathBuf};

use crate::model::normalize_for_fingerprint;

/// Workspace-relative paths whose contents define the snapshot wire
/// format.
pub const WIRE_FORMAT_SOURCES: [&str; 3] = [
    "crates/core/src/snapshot.rs",
    "crates/sketch/src/snapshot.rs",
    "crates/hash/src/wire.rs",
];

/// Workspace-relative path of the committed fingerprint record.
pub const FP_RECORD: &str = "crates/lint/snapshot-format.fp";

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compute the combined fingerprint of the wire-format sources under
/// `root`. Missing files are an error (a moved encoder must update
/// [`WIRE_FORMAT_SOURCES`] *and* re-bless).
pub fn compute(root: &Path) -> std::io::Result<u64> {
    let mut acc = String::new();
    for rel in WIRE_FORMAT_SOURCES {
        let text = std::fs::read_to_string(root.join(rel))?;
        acc.push_str("== ");
        acc.push_str(rel);
        acc.push_str(" ==\n");
        acc.push_str(&normalize_for_fingerprint(&text));
    }
    Ok(fnv1a64(acc.as_bytes()))
}

/// Extract `SNAPSHOT_VERSION: u32 = N` from the core snapshot source.
pub fn source_version(root: &Path) -> std::io::Result<Option<u32>> {
    let text = std::fs::read_to_string(root.join(WIRE_FORMAT_SOURCES[0]))?;
    Ok(parse_version_constant(&text))
}

/// Find the `SNAPSHOT_VERSION: u32 = N;` declaration in `text`.
pub fn parse_version_constant(text: &str) -> Option<u32> {
    let at = text.find("SNAPSHOT_VERSION: u32 =")?;
    let rest = &text[at..];
    let eq = rest.find('=')?;
    let tail = rest[eq + 1..].trim_start();
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The committed (version, fingerprint) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpRecord {
    pub version: u32,
    pub fingerprint: u64,
}

/// Parse the record file's `key = value` lines.
pub fn parse_record(text: &str) -> Result<FpRecord, String> {
    let mut version = None;
    let mut fingerprint = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("malformed record line: `{line}`"));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "version" => {
                version = Some(
                    value
                        .parse::<u32>()
                        .map_err(|e| format!("bad version `{value}`: {e}"))?,
                );
            }
            "fingerprint" => {
                let hex = value.trim_start_matches("0x");
                fingerprint = Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|e| format!("bad fingerprint `{value}`: {e}"))?,
                );
            }
            other => return Err(format!("unknown record key `{other}`")),
        }
    }
    match (version, fingerprint) {
        (Some(version), Some(fingerprint)) => Ok(FpRecord {
            version,
            fingerprint,
        }),
        _ => Err("record must define both `version` and `fingerprint`".into()),
    }
}

/// Render a record file, preamble included.
pub fn render_record(record: FpRecord) -> String {
    format!(
        "# Snapshot wire-format fingerprint (rule QF-L005).\n\
         #\n\
         # `fingerprint` is FNV-1a over the normalized wire-format sources\n\
         # ({}).\n\
         # If it drifts while `version` matches SNAPSHOT_VERSION, the\n\
         # encoding changed without a version bump. After a legitimate\n\
         # change: bump SNAPSHOT_VERSION if the bytes changed, then run\n\
         # `cargo xtask lint --bless` to re-record.\n\
         version = {}\n\
         fingerprint = {:#018x}\n",
        WIRE_FORMAT_SOURCES.join(", "),
        record.version,
        record.fingerprint,
    )
}

/// Where the record lives under `root`.
pub fn record_path(root: &Path) -> PathBuf {
    root.join(FP_RECORD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn record_roundtrip() {
        let rec = FpRecord {
            version: 2,
            fingerprint: 0xDEAD_BEEF_0123_4567,
        };
        let text = render_record(rec);
        assert_eq!(parse_record(&text), Ok(rec));
    }

    #[test]
    fn version_constant_parses() {
        let src = "/// docs\npub const SNAPSHOT_VERSION: u32 = 42;\n";
        assert_eq!(parse_version_constant(src), Some(42));
        assert_eq!(parse_version_constant("nothing here"), None);
    }

    #[test]
    fn malformed_records_are_errors() {
        assert!(parse_record("version = 2").is_err());
        assert!(parse_record("version = x\nfingerprint = 0x1").is_err());
        assert!(parse_record("mystery = 3").is_err());
    }
}
