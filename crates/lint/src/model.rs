//! A syn-less source model for the workspace linter.
//!
//! The rules in [`crate::rules`] do not need full Rust parsing — they need
//! four things a careful lexer can provide:
//!
//! 1. **Code-only text** per line: comments and string/char-literal
//!    contents blanked out, so pattern matches never fire inside docs,
//!    doc-examples, or message strings.
//! 2. **Test regions**: whether a line sits inside a `#[cfg(test)]` item
//!    (or a `#[cfg(test)]`/`#[test]`-gated function).
//! 3. **Function attribution**: the innermost enclosing `fn` name, plus
//!    whether that function's doc comment carries a `# Panics` section
//!    (the sanctioned escape hatch for explicit `panic!`).
//! 4. **Normalized text** for fingerprinting: comments and blank lines
//!    removed, whitespace collapsed, string literals *kept* (wire-format
//!    magic bytes live in literals).
//!
//! The model is heuristic by design — it assumes rustfmt-shaped code
//! (attributes on their own lines, braces opening at line ends). That
//! assumption holds for this workspace and keeps the lexer at a few
//! hundred dependency-free lines.

use std::path::{Path, PathBuf};

/// One analyzed line of a source file.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw source text (used for attribute/doc inspection only).
    pub raw: String,
    /// The text with comments and string/char contents blanked.
    pub code: String,
    /// True inside a `#[cfg(test)]` region or a test-gated function.
    pub in_test: bool,
    /// Innermost enclosing function, if any.
    pub fn_name: Option<String>,
    /// True when the enclosing function's docs contain a `# Panics`
    /// section.
    pub fn_has_panics_doc: bool,
}

/// A parsed source file ready for rule evaluation.
#[derive(Debug)]
pub struct SourceFile {
    pub path: PathBuf,
    pub lines: Vec<Line>,
}

/// What a `{` opened, tracked on the scope stack.
#[derive(Debug)]
enum ScopeKind {
    /// A function body.
    Fn {
        name: String,
        panics_doc: bool,
        test: bool,
    },
    /// A `#[cfg(test)]` item (typically `mod tests`).
    Test,
    /// Anything else: impl/mod/match-arm/struct-literal/closure bodies.
    Plain,
}

struct Scanner {
    stack: Vec<ScopeKind>,
    /// `fn NAME` seen, its `{` not yet.
    pending_fn: Option<(String, bool, bool)>,
    /// `#[cfg(test)]` (or `#[test]`) seen, its item's `{` not yet.
    pending_cfg_test: bool,
    /// A `/// # Panics` doc line seen, its item not yet.
    pending_panics_doc: bool,
    /// Combined `(`/`[` nesting depth, for `;`-as-item-terminator.
    paren_depth: i32,
}

impl Scanner {
    fn new() -> Self {
        Self {
            stack: Vec::new(),
            pending_fn: None,
            pending_cfg_test: false,
            pending_panics_doc: false,
            paren_depth: 0,
        }
    }

    fn innermost_fn(&self) -> Option<(&str, bool)> {
        self.stack.iter().rev().find_map(|s| match s {
            ScopeKind::Fn {
                name, panics_doc, ..
            } => Some((name.as_str(), *panics_doc)),
            _ => None,
        })
    }

    fn in_test(&self) -> bool {
        self.stack.iter().any(|s| match s {
            ScopeKind::Test => true,
            ScopeKind::Fn { test, .. } => *test,
            ScopeKind::Plain => false,
        })
    }

    /// Feed one line's code text through the brace/semicolon machine.
    fn advance(&mut self, code: &str) {
        if let Some(name) = fn_declaration_name(code) {
            self.pending_fn = Some((name, self.pending_panics_doc, self.pending_cfg_test));
            self.pending_panics_doc = false;
            self.pending_cfg_test = false;
        }
        for c in code.chars() {
            match c {
                '(' | '[' => self.paren_depth += 1,
                ')' | ']' => self.paren_depth -= 1,
                '{' => {
                    let kind = if let Some((name, panics_doc, test)) = self.pending_fn.take() {
                        ScopeKind::Fn {
                            name,
                            panics_doc,
                            test,
                        }
                    } else if self.pending_cfg_test {
                        ScopeKind::Test
                    } else {
                        ScopeKind::Plain
                    };
                    self.pending_cfg_test = false;
                    self.pending_panics_doc = false;
                    self.stack.push(kind);
                }
                '}' => {
                    self.stack.pop();
                }
                ';' if self.paren_depth <= 0 => {
                    // An item ended without a body (trait method, use,
                    // statement): drop anything pending.
                    self.pending_fn = None;
                    self.pending_cfg_test = false;
                    self.pending_panics_doc = false;
                }
                _ => {}
            }
        }
    }
}

impl SourceFile {
    /// Parse `text` into the line model.
    pub fn parse(path: impl Into<PathBuf>, text: &str) -> SourceFile {
        let stripped = strip(text, false);
        let mut scanner = Scanner::new();
        let mut lines = Vec::new();
        for (idx, (raw, code)) in text.lines().zip(stripped.lines()).enumerate() {
            let raw_trim = raw.trim_start();
            if raw_trim.starts_with("///") || raw_trim.starts_with("//!") {
                if raw_trim.contains("# Panics") {
                    scanner.pending_panics_doc = true;
                }
            } else if (raw_trim.starts_with("#[") || raw_trim.starts_with("#!["))
                && is_test_attr(raw_trim)
            {
                scanner.pending_cfg_test = true;
            }

            let fn_before = scanner.innermost_fn().map(|(n, p)| (n.to_string(), p));
            let test_before = scanner.in_test();
            scanner.advance(code);
            let fn_after = scanner.innermost_fn().map(|(n, p)| (n.to_string(), p));
            let test_after = scanner.in_test();

            // Attribute the line to the deepest state it touched: the `{`
            // of `fn f() {` belongs to `f`, while the closing `}` still
            // belongs to the scope it closes.
            let (fn_name, fn_has_panics_doc) = match fn_after.or(fn_before) {
                Some((n, p)) => (Some(n), p),
                None => (None, false),
            };
            lines.push(Line {
                number: idx + 1,
                raw: raw.to_string(),
                code: code.to_string(),
                in_test: test_before || test_after,
                fn_name,
                fn_has_panics_doc,
            });
        }
        SourceFile {
            path: path.into(),
            lines,
        }
    }

    /// Parse the file at `path` from disk.
    pub fn read(path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::parse(path, &text))
    }

    /// The file name (empty string when the path has none).
    pub fn file_name(&self) -> &str {
        self.path.file_name().and_then(|n| n.to_str()).unwrap_or("")
    }
}

/// True for attributes that gate an item to test builds.
fn is_test_attr(attr: &str) -> bool {
    attr.contains("cfg(test)")
        || attr.contains("cfg(all(test")
        || attr.contains("cfg(any(test")
        || attr.starts_with("#[test]")
}

/// Extract `NAME` from a `fn NAME` declaration in code-only text, if the
/// line declares one (macro fragments like `fn $name` are ignored).
fn fn_declaration_name(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(rel) = code.get(search..).and_then(|s| s.find("fn")) {
        let at = search + rel;
        search = at + 2;
        // Must be the keyword `fn`, not a suffix/prefix of an identifier.
        let before_ok = at == 0 || !is_ident_byte(bytes[at.saturating_sub(1)]);
        let after = bytes.get(at + 2).copied();
        let after_ok = matches!(after, Some(b' ') | Some(b'\t'));
        if !(before_ok && after_ok) {
            continue;
        }
        let rest = code[at + 2..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Normalize `text` for wire-format fingerprinting: strip comments (but
/// keep string literals), drop blank lines, collapse whitespace runs.
pub fn normalize_for_fingerprint(text: &str) -> String {
    let stripped = strip(text, true);
    let mut out = String::with_capacity(stripped.len());
    for line in stripped.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut last_space = false;
        for c in trimmed.chars() {
            if c.is_whitespace() {
                if !last_space {
                    out.push(' ');
                }
                last_space = true;
            } else {
                out.push(c);
                last_space = false;
            }
        }
        out.push('\n');
    }
    out
}

/// Blank out comments (always) and string/char-literal contents (unless
/// `keep_strings`), preserving line structure so line numbers survive.
fn strip(text: &str, keep_strings: bool) -> String {
    let cs: Vec<char> = text.chars().collect();
    let len = cs.len();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < len {
        let c = cs[i];
        match c {
            '/' if cs.get(i + 1) == Some(&'/') => {
                while i < len && cs[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if cs.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < len && depth > 0 {
                    if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(blank(cs[i]));
                        i += 1;
                    }
                }
            }
            '"' => i = consume_string(&cs, i, keep_strings, &mut out),
            'r' | 'b' => {
                if let Some(next) = raw_or_byte_string_start(&cs, i) {
                    if keep_strings {
                        for &rc in &cs[i..next] {
                            out.push(rc);
                        }
                    } else {
                        for &rc in &cs[i..next] {
                            out.push(blank(rc));
                        }
                    }
                    i = next;
                } else if c == 'b' && cs.get(i + 1) == Some(&'\'') {
                    out.push(' ');
                    i = consume_char_literal(&cs, i + 1, keep_strings, &mut out);
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            '\'' => {
                if is_char_literal(&cs, i) {
                    i = consume_char_literal(&cs, i, keep_strings, &mut out);
                } else {
                    // A lifetime: keep the tick and move on.
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Consume a `"..."` literal starting at `cs[start] == '"'`; returns the
/// index just past the closing quote.
fn consume_string(cs: &[char], start: usize, keep: bool, out: &mut String) -> usize {
    let len = cs.len();
    let mut i = start;
    let mut push = |c: char| {
        out.push(if keep {
            c
        } else if c == '\n' {
            '\n'
        } else {
            ' '
        })
    };
    push(cs[i]);
    i += 1;
    while i < len {
        if cs[i] == '\\' && i + 1 < len {
            push(cs[i]);
            push(cs[i + 1]);
            i += 2;
        } else if cs[i] == '"' {
            push(cs[i]);
            return i + 1;
        } else {
            push(cs[i]);
            i += 1;
        }
    }
    i
}

/// If `cs[start..]` begins a raw/byte string (`r"`, `r#"`, `b"`, `br#"` …),
/// consume it and return the index just past the end. Returns `None` when
/// it is not a string start (plain identifier letter).
fn raw_or_byte_string_start(cs: &[char], start: usize) -> Option<usize> {
    // The r/b prefix must not be part of a longer identifier.
    if start > 0 && (cs[start - 1].is_ascii_alphanumeric() || cs[start - 1] == '_') {
        return None;
    }
    let len = cs.len();
    let mut i = start;
    let mut raw = false;
    if cs.get(i) == Some(&'b') {
        i += 1;
    }
    if cs.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    if raw {
        while cs.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
    }
    if cs.get(i) != Some(&'"') {
        return None;
    }
    // Plain `b"..."` (not raw) still honors escapes.
    if !raw {
        i += 1;
        while i < len {
            if cs[i] == '\\' && i + 1 < len {
                i += 2;
            } else if cs[i] == '"' {
                return Some(i + 1);
            } else {
                i += 1;
            }
        }
        return Some(i);
    }
    i += 1;
    while i < len {
        if cs[i] == '"' {
            let mut ok = true;
            for h in 0..hashes {
                if cs.get(i + 1 + h) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(i)
}

/// Is the `'` at `cs[i]` a char literal (vs a lifetime)?
fn is_char_literal(cs: &[char], i: usize) -> bool {
    match cs.get(i + 1) {
        Some('\\') => true,
        Some(_) => cs.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Consume a `'x'` / `'\n'` literal starting at `cs[start] == '\''`.
///
/// Newlines are always preserved verbatim: a misclassified tick (or a
/// malformed literal) must never blank a `\n`, or every line number
/// after it would silently shift and every rule span would lie.
fn consume_char_literal(cs: &[char], start: usize, keep: bool, out: &mut String) -> usize {
    let len = cs.len();
    let mut i = start;
    let mut push = |c: char| {
        out.push(if keep {
            c
        } else if c == '\n' {
            '\n'
        } else {
            ' '
        })
    };
    push(cs[i]);
    i += 1;
    while i < len {
        if cs[i] == '\\' && i + 1 < len {
            push(cs[i]);
            push(cs[i + 1]);
            i += 2;
        } else if cs[i] == '\'' {
            push(cs[i]);
            return i + 1;
        } else {
            push(cs[i]);
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = \"has .unwrap() inside\"; // and .unwrap() here\n",
        );
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(f.lines[0].raw.contains(".unwrap()"));
    }

    #[test]
    fn char_literal_braces_do_not_skew_depth() {
        let src = "fn f() {\n    let open = '{';\n    let close = '}';\n    body();\n}\nfn g() {\n    tail();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let tail = &f.lines[6];
        assert_eq!(tail.fn_name.as_deref(), Some("g"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str {\n    x\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.lines[1].fn_name.as_deref(), Some("f"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn live() {\n    a();\n}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        b();\n    }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[1].in_test);
        assert!(f.lines[6].in_test);
        assert_eq!(f.lines[6].fn_name.as_deref(), Some("t"));
    }

    #[test]
    fn panics_doc_attaches_to_next_fn_only() {
        let src = "/// Does things.\n///\n/// # Panics\n/// When unhappy.\nfn documented() {\n    body();\n}\nfn bare() {\n    body();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.lines[5].fn_has_panics_doc);
        assert!(!f.lines[8].fn_has_panics_doc);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let x = r#\"panic!(\"no\")\"#;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].code.contains("panic!"));
    }

    #[test]
    fn raw_string_with_inner_quotes_does_not_leak() {
        let src = "let x = r##\"say \"hi\"# and .unwrap()\"##;\nlet tail = 1;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert_eq!(f.lines.len(), 2);
        assert!(f.lines[1].code.contains("tail"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let src = "let a = b\"x.unwrap()\";\nlet b = br#\"panic!(\"no\")\"#;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(!f.lines[1].code.contains("panic!"));
    }

    #[test]
    fn malformed_char_literal_never_eats_newlines() {
        // An unterminated/misparsed literal may blank characters, but it
        // must preserve every `\n` so later line numbers stay honest.
        let src = "let bad = '\\\nfn g() {\n    tail();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.lines.len(), src.lines().count());
    }

    #[test]
    fn fingerprint_normalization_keeps_strings_drops_comments() {
        let a = normalize_for_fingerprint("let m = b\"QFSN\"; // magic\n\n");
        let b = normalize_for_fingerprint("let m  =  b\"QFSN\";\n");
        assert_eq!(a, b);
        let c = normalize_for_fingerprint("let m = b\"QFSX\";\n");
        assert_ne!(a, c);
    }
}
