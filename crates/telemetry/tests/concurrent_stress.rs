//! Concurrency stress for the lock-free telemetry primitives: many threads
//! hammering shared counters and histograms must never lose an update.
//!
//! Every test asserts *conservation* — the total observed after the storm
//! equals the total injected — which is exactly the property relaxed
//! atomics can silently break if an ordering or a read-modify-write is
//! wrong. The same tests run under Miri in CI (with the thread counts
//! below, which Miri's scheduler can actually interleave).

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use qf_telemetry::{Counter, Gauge, HistogramSnapshot, LogHistogram};

/// Small enough for Miri to explore interleavings, large enough for real
/// contention on native builds.
const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = if cfg!(miri) { 200 } else { 20_000 };

#[test]
fn counter_conserves_increments_across_threads() {
    let counter = Counter::new();
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for i in 0..OPS_PER_THREAD {
                    if i % 3 == 0 {
                        counter.add(2);
                    } else {
                        counter.incr();
                    }
                }
            });
        }
    });
    // Per thread: ceil(n/3) adds of 2, the rest increments of 1.
    let adds = OPS_PER_THREAD.div_ceil(3);
    let expected = (THREADS as u64) * (adds * 2 + (OPS_PER_THREAD - adds));
    assert_eq!(
        counter.get(),
        expected,
        "lost counter updates under contention"
    );
}

#[test]
fn gauge_returns_to_zero_after_balanced_traffic() {
    let gauge = Gauge::new();
    thread::scope(|s| {
        let gauge = &gauge;
        for t in 0..THREADS {
            s.spawn(move || {
                // Each thread applies +delta then −delta in pairs, so the
                // net is zero no matter how the threads interleave.
                let delta = (t as i64) + 1;
                for _ in 0..OPS_PER_THREAD {
                    gauge.add(delta);
                    gauge.add(-delta);
                }
            });
        }
    });
    assert_eq!(
        gauge.get(),
        0,
        "gauge drifted under balanced concurrent traffic"
    );
}

#[test]
fn histogram_conserves_samples_across_threads() {
    let hist = LogHistogram::new();
    thread::scope(|s| {
        let hist = &hist;
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Spread samples across many buckets, including 0 and
                    // large values, so multiple cells contend.
                    hist.record((i << (t % 8)) ^ t as u64);
                }
            });
        }
    });
    let total = (THREADS as u64) * OPS_PER_THREAD;
    assert_eq!(
        hist.count(),
        total,
        "lost histogram samples under contention"
    );
    let snap = hist.snapshot();
    assert_eq!(snap.count(), total, "snapshot disagrees with live count");
}

#[test]
fn snapshots_taken_mid_storm_are_coherent() {
    // A snapshot raced against writers may miss in-flight samples, but it
    // must never *invent* them, and successive snapshots must be monotone:
    // later deltas never go negative.
    let hist = LogHistogram::new();
    let done = AtomicU64::new(0);
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for i in 0..OPS_PER_THREAD {
                    hist.record(i % 1024);
                }
                done.fetch_add(1, Ordering::Release);
            });
        }
        s.spawn(|| {
            let mut prev = HistogramSnapshot::empty();
            loop {
                let finished = done.load(Ordering::Acquire) == THREADS as u64;
                let now = hist.snapshot();
                assert!(
                    now.count() >= prev.count(),
                    "snapshot count went backwards: {} -> {}",
                    prev.count(),
                    now.count()
                );
                let delta = now.delta_since(&prev);
                assert_eq!(
                    delta.count(),
                    now.count() - prev.count(),
                    "delta miscounts the interval"
                );
                prev = now;
                if finished {
                    break;
                }
                thread::yield_now();
            }
        });
    });
    assert_eq!(hist.count(), (THREADS as u64) * OPS_PER_THREAD);
}

#[test]
fn absorb_and_merge_conserve_counts_across_threads() {
    // Shards record concurrently; an aggregator absorbs each shard's
    // snapshot into a global histogram. Total mass must be conserved and
    // equal the merged snapshot view.
    let shards: Vec<LogHistogram> = (0..THREADS).map(|_| LogHistogram::new()).collect();
    thread::scope(|s| {
        for (t, shard) in shards.iter().enumerate() {
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    shard.record(i.wrapping_mul(t as u64 + 1) % 4096);
                }
            });
        }
    });

    let global = LogHistogram::new();
    let mut merged = HistogramSnapshot::empty();
    for shard in &shards {
        let snap = shard.snapshot();
        global.absorb(&snap);
        merged = merged.merge(&snap);
    }
    let total = (THREADS as u64) * OPS_PER_THREAD;
    assert_eq!(global.count(), total, "absorb lost samples");
    assert_eq!(merged.count(), total, "merge lost samples");
    // The two aggregation paths must agree on shape, not just mass.
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(
            global.snapshot().quantile(q),
            merged.quantile(q),
            "absorb and merge disagree at q={q}"
        );
    }
}
