//! The [`Recorder`] abstraction: where instrumentation events go.
//!
//! Instrumented crates (`quantile-filter`, `qf-sketch`) do not talk to the
//! registry directly; their feature-gated hooks drive a zero-sized
//! [`GlobalRecorder`] whose methods compile down to single relaxed atomic
//! ops on [`global()`](crate::global) registry fields. When the
//! `telemetry` feature is *off* in those crates the hooks themselves are
//! compiled out, so the disabled hot path carries no trace of telemetry at
//! all — [`NullRecorder`] exists for the remaining dynamic case: host
//! applications that take a `&dyn Recorder` (or a generic `R: Recorder`)
//! and want to disable recording at runtime without a rebuild. Its
//! methods are empty `#[inline(always)]` bodies, so a monomorphized
//! `NullRecorder` call site also compiles to nothing.

use crate::registry::{global, QfMetrics};

/// Identifies a counter in the [`QfMetrics`] registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror the registry fields 1:1
pub enum CounterId {
    FilterInserts,
    FilterQueries,
    FilterDeletes,
    FilterDroppedNonFinite,
    FilterRejectedNonFinite,
    FilterReportsCandidate,
    FilterReportsVague,
    CandidateHits,
    CandidateInserts,
    CandidateBucketFull,
    CandidateElections,
    CandidateEvictions,
    VagueAdds,
    VagueRemoves,
    SketchSaturations,
    RoundingFractional,
    RoundingUp,
    PipelineEnqueued,
    PipelineDequeued,
    PipelineDropped,
    PipelineReports,
    PipelineShedOldest,
    PipelineShardDownRejected,
    PipelineRestarts,
    PipelineCheckpointSeals,
    PipelineReplayed,
}

/// Identifies a gauge in the [`QfMetrics`] registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GaugeId {
    RoundingDriftMicros,
    PipelineQueueDepth,
    PipelineShardState,
}

/// Identifies a latency histogram in the [`QfMetrics`] registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum HistogramId {
    InsertLatencyNs,
    QueryLatencyNs,
}

impl QfMetrics {
    /// Resolve a [`CounterId`] to its field.
    #[inline(always)]
    pub fn counter_of(&self, id: CounterId) -> &crate::Counter {
        match id {
            CounterId::FilterInserts => &self.filter_inserts,
            CounterId::FilterQueries => &self.filter_queries,
            CounterId::FilterDeletes => &self.filter_deletes,
            CounterId::FilterDroppedNonFinite => &self.filter_dropped_nonfinite,
            CounterId::FilterRejectedNonFinite => &self.filter_rejected_nonfinite,
            CounterId::FilterReportsCandidate => &self.filter_reports_candidate,
            CounterId::FilterReportsVague => &self.filter_reports_vague,
            CounterId::CandidateHits => &self.candidate_hits,
            CounterId::CandidateInserts => &self.candidate_inserts,
            CounterId::CandidateBucketFull => &self.candidate_bucket_full,
            CounterId::CandidateElections => &self.candidate_elections,
            CounterId::CandidateEvictions => &self.candidate_evictions,
            CounterId::VagueAdds => &self.vague_adds,
            CounterId::VagueRemoves => &self.vague_removes,
            CounterId::SketchSaturations => &self.sketch_saturations,
            CounterId::RoundingFractional => &self.rounding_fractional,
            CounterId::RoundingUp => &self.rounding_up,
            CounterId::PipelineEnqueued => &self.pipeline_enqueued,
            CounterId::PipelineDequeued => &self.pipeline_dequeued,
            CounterId::PipelineDropped => &self.pipeline_dropped,
            CounterId::PipelineReports => &self.pipeline_reports,
            CounterId::PipelineShedOldest => &self.pipeline_shed_oldest,
            CounterId::PipelineShardDownRejected => &self.pipeline_shard_down_rejected,
            CounterId::PipelineRestarts => &self.pipeline_restarts,
            CounterId::PipelineCheckpointSeals => &self.pipeline_checkpoint_seals,
            CounterId::PipelineReplayed => &self.pipeline_replayed,
        }
    }

    /// Resolve a [`GaugeId`] to its field.
    #[inline(always)]
    pub fn gauge_of(&self, id: GaugeId) -> &crate::Gauge {
        match id {
            GaugeId::RoundingDriftMicros => &self.rounding_drift_micros,
            GaugeId::PipelineQueueDepth => &self.pipeline_queue_depth,
            GaugeId::PipelineShardState => &self.pipeline_shard_state,
        }
    }

    /// Resolve a [`HistogramId`] to its field.
    #[inline(always)]
    pub fn histogram_of(&self, id: HistogramId) -> &crate::LogHistogram {
        match id {
            HistogramId::InsertLatencyNs => &self.insert_latency_ns,
            HistogramId::QueryLatencyNs => &self.query_latency_ns,
        }
    }
}

/// Sink for instrumentation events.
pub trait Recorder {
    /// Count `n` occurrences of an event.
    fn count(&self, id: CounterId, n: u64);
    /// Move a gauge by a signed delta.
    fn gauge_add(&self, id: GaugeId, delta: i64);
    /// Record one value (e.g. nanoseconds) into a histogram.
    fn observe(&self, id: HistogramId, value: u64);
}

/// Records into the process-wide [`global()`] registry. Zero-sized; each
/// method is a match on a constant id that folds to one atomic op.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalRecorder;

impl Recorder for GlobalRecorder {
    #[inline(always)]
    fn count(&self, id: CounterId, n: u64) {
        global().counter_of(id).add(n);
    }

    #[inline(always)]
    fn gauge_add(&self, id: GaugeId, delta: i64) {
        global().gauge_of(id).add(delta);
    }

    #[inline(always)]
    fn observe(&self, id: HistogramId, value: u64) {
        global().histogram_of(id).record(value);
    }
}

/// Discards every event. With monomorphization the empty inline bodies
/// vanish entirely — the runtime analogue of compiling telemetry out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn count(&self, _id: CounterId, _n: u64) {}

    #[inline(always)]
    fn gauge_add(&self, _id: GaugeId, _delta: i64) {}

    #[inline(always)]
    fn observe(&self, _id: HistogramId, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_recorder_hits_the_global_registry() {
        let before = global().candidate_elections.get();
        GlobalRecorder.count(CounterId::CandidateElections, 3);
        assert_eq!(global().candidate_elections.get(), before + 3);
        GlobalRecorder.gauge_add(GaugeId::RoundingDriftMicros, 0);
        GlobalRecorder.observe(HistogramId::QueryLatencyNs, 1);
        assert!(global().query_latency_ns.count() >= 1);
    }

    #[test]
    fn null_recorder_discards() {
        let before = global().snapshot();
        NullRecorder.count(CounterId::FilterInserts, 1_000);
        NullRecorder.observe(HistogramId::InsertLatencyNs, 5);
        let after = global().snapshot();
        assert_eq!(
            after.counter("qf_filter_inserts_total"),
            before.counter("qf_filter_inserts_total")
        );
    }

    #[test]
    fn every_counter_id_resolves() {
        use CounterId::*;
        let m = QfMetrics::new();
        for id in [
            FilterInserts,
            FilterQueries,
            FilterDeletes,
            FilterDroppedNonFinite,
            FilterRejectedNonFinite,
            FilterReportsCandidate,
            FilterReportsVague,
            CandidateHits,
            CandidateInserts,
            CandidateBucketFull,
            CandidateElections,
            CandidateEvictions,
            VagueAdds,
            VagueRemoves,
            SketchSaturations,
            RoundingFractional,
            RoundingUp,
            PipelineEnqueued,
            PipelineDequeued,
            PipelineDropped,
            PipelineReports,
            PipelineShedOldest,
            PipelineShardDownRejected,
            PipelineRestarts,
            PipelineCheckpointSeals,
            PipelineReplayed,
        ] {
            m.counter_of(id).incr();
        }
        let s = m.snapshot();
        assert!(s.counters.iter().all(|&(_, v)| v == 1), "{s:?}");
    }
}
