//! A from-scratch log-bucketed latency histogram (HDR-style).
//!
//! Values (nanoseconds, byte sizes, …) are binned into buckets whose width
//! grows geometrically: each power-of-two octave is split into
//! `2^SUB_BITS = 4` linear sub-buckets, so any recorded value lands in a
//! bucket whose span is at most 25% of its lower bound. Quantile queries
//! walk the bucket counts and return the bucket's *upper* bound, which
//! makes every reported quantile a tight upper bound on the true order
//! statistic: the true value lies in the same bucket, i.e. within one
//! log-bucket (≤ 25% relative error) below the estimate.
//!
//! The recording path is three relaxed atomic operations (bucket count,
//! running sum, running max) and is safe to share across threads with `&`
//! access. 252 buckets cover the full `u64` range, so a histogram is a
//! fixed 2 KiB of counters — cheap enough to embed one per metric in a
//! process-wide registry.
//!
//! Histograms are mergeable: bucket-wise addition is exact, associative
//! and commutative, so per-shard histograms can be combined into a fleet
//! view without any loss beyond the shared bucket resolution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave has `2^SUB_BITS`
/// linear sub-buckets (4 ⇒ ≤ 25% relative bucket width).
pub const SUB_BITS: u32 = 2;
/// Number of sub-buckets per octave.
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: indexes 0..SUB are exact small values, then
/// `(63 − SUB_BITS + 1) · SUB` log buckets; 252 for SUB_BITS = 2.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index a value falls into.
#[inline(always)]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // v ∈ [2^msb, 2^(msb+1))
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB - 1);
    (msb as usize - SUB_BITS as usize + 1) * SUB + sub
}

/// The largest value stored in bucket `i` — what quantile queries report.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let msb = (i / SUB) as u32 + SUB_BITS - 1;
    let sub = (i % SUB) as u64;
    let lo = (SUB as u64 + sub) << (msb - SUB_BITS);
    // The top sub-bucket of the 2^63 octave ends exactly at u64::MAX.
    lo.saturating_add((1u64 << (msb - SUB_BITS)) - 1)
}

/// A concurrent log-bucketed histogram. Record with `&self`; snapshot at
/// any time for quantiles, export, merging, or per-run deltas.
#[derive(Debug)]
pub struct LogHistogram {
    // sync: counter — relaxed per-bucket tallies; snapshots are
    // point-in-time-ish by contract (module docs).
    buckets: [AtomicU64; NUM_BUCKETS],
    // sync: counter — relaxed running sum, same contract as `buckets`.
    sum: AtomicU64,
    // sync: counter — relaxed running max (`fetch_max`).
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// A fresh empty histogram (usable in `static` initializers).
    pub const fn new() -> Self {
        // The standard const-array-init idiom: each use of ZERO is a
        // distinct fresh atomic, which is exactly what we want here.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (three relaxed atomic ops).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Consistent-enough point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Quantile `q ∈ [0, 1]` as an upper bound (see module docs).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Fold another histogram's snapshot into this one (shard merging).
    pub fn absorb(&self, other: &HistogramSnapshot) {
        for (mine, &theirs) in self.buckets.iter().zip(&other.buckets) {
            if theirs != 0 {
                mine.fetch_add(theirs, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }

    /// Reset every counter to zero (tests; racy by design).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain (non-atomic) copy of a histogram's state: the unit of export,
/// merging, and per-run delta computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Quantile `q ∈ [0, 1]` by nearest-rank over the bucket counts,
    /// reported as the containing bucket's upper bound. For `q = 1.0` the
    /// exact running max is returned instead.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the observed max (the top bucket's
                // upper bound can exceed it by up to 25%).
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Exact bucket-wise merge: associative and commutative. Sums use
    /// saturating addition, which keeps associativity (`min(total, MAX)`
    /// regardless of grouping) even for pathological value streams.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a.saturating_add(*b))
                .collect(),
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// What happened since `before` was captured from the same histogram.
    /// Counts and sums subtract exactly (they are monotone); `max` cannot
    /// be un-merged, so the later (cumulative) max is kept as an upper
    /// bound for the interval.
    pub fn delta_since(&self, before: &Self) -> Self {
        Self {
            buckets: self
                .buckets
                .iter()
                .zip(&before.buckets)
                .map(|(now, b4)| now.saturating_sub(*b4))
                .collect(),
            sum: self.sum.saturating_sub(before.sum),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value maps to a bucket whose upper bound maps back to the
        // same bucket and is ≥ the value; the bucket below is < the value.
        for &v in &[4u64, 5, 7, 8, 100, 999, 1_000_000, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} for {v}");
            let hi = bucket_upper(i);
            assert!(hi >= v, "upper {hi} < value {v}");
            assert_eq!(bucket_index(hi), i, "upper bound left the bucket");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v);
            }
        }
    }

    #[test]
    fn bucket_width_within_25_percent() {
        for i in SUB..NUM_BUCKETS - SUB {
            let hi = bucket_upper(i);
            let lo = bucket_upper(i - 1).saturating_add(1);
            let width = hi - lo + 1;
            assert!(
                (width as f64) <= 0.25 * lo as f64 + 1.0,
                "bucket {i}: [{lo}, {hi}] too wide"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Upper-bound semantics: estimate ≥ true, within one bucket.
        assert!((500..=639).contains(&p50), "p50 {p50}");
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.snapshot().count(), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn absorb_merges_shards() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        a.absorb(&b.snapshot());
        assert_eq!(a.count(), 200);
        assert_eq!(a.snapshot().max, 99_000);
    }

    #[test]
    fn delta_since_isolates_a_run() {
        let h = LogHistogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(1000);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count(), 1);
        assert_eq!(d.sum, 1000);
        assert_eq!(d.quantile(0.5), 1000);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // Unit form of the property: three concrete snapshots.
        let mk = |vals: &[u64]| {
            let h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 2, 3, 1000]);
        let b = mk(&[7, 7, 7]);
        let c = mk(&[u64::MAX, 0]);
        assert_eq!(a.merge(&b.merge(&c)), a.merge(&b).merge(&c));
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    fn true_nearest_rank(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest::proptest! {
        #[test]
        fn prop_index_roundtrip(v in 0u64..u64::MAX) {
            let i = bucket_index(v);
            proptest::prop_assert!(i < NUM_BUCKETS);
            proptest::prop_assert!(bucket_upper(i) >= v);
            proptest::prop_assert_eq!(bucket_index(bucket_upper(i)), i);
        }

        #[test]
        fn prop_quantile_bounds_true_quantile_within_one_bucket(
            mut vals in proptest::collection::vec(0u64..1_000_000_000, 1..400),
            qs in proptest::collection::vec(0.01f64..1.0, 1..6),
        ) {
            let h = LogHistogram::new();
            for &v in &vals {
                h.record(v);
            }
            vals.sort_unstable();
            for &q in &qs {
                let est = h.quantile(q);
                let truth = true_nearest_rank(&vals, q);
                // The estimate is an upper bound on the true quantile…
                proptest::prop_assert!(est >= truth, "q={q}: est {est} < true {truth}");
                // …and lives in the true quantile's own log-bucket, i.e.
                // within one bucket (≤ 25% relative error).
                proptest::prop_assert_eq!(
                    bucket_index(est),
                    bucket_index(truth),
                    "q={q}: est {est} not in true bucket of {truth}"
                );
            }
        }

        #[test]
        fn prop_merge_associative(
            xs in proptest::collection::vec(0u64..u64::MAX, 0..50),
            ys in proptest::collection::vec(0u64..u64::MAX, 0..50),
            zs in proptest::collection::vec(0u64..u64::MAX, 0..50),
        ) {
            let mk = |vals: &[u64]| {
                let h = LogHistogram::new();
                for &v in vals {
                    // Keep sums away from u64 overflow across three merges.
                    h.record(v >> 2);
                }
                h.snapshot()
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            proptest::prop_assert_eq!(a.merge(&b.merge(&c)), a.merge(&b).merge(&c));
            proptest::prop_assert_eq!(a.merge(&b), b.merge(&a));
        }
    }
}
