//! # qf-telemetry
//!
//! Zero-cost instrumentation for the QuantileFilter stack: the primitives,
//! the registry, and the exporters that make a running filter observable
//! without slowing it down.
//!
//! ## The three layers
//!
//! 1. **Primitives** — relaxed-atomic [`Counter`]s and [`Gauge`]s, a
//!    from-scratch log-bucketed [`LogHistogram`] (HDR-style: ≤ 25% bucket
//!    width, mergeable, p50/p95/p99/max), and a scope-guard [`SpanTimer`].
//!    All are `&self`-recordable and safe to share across threads.
//! 2. **Registry** — [`QfMetrics`]: one statically-allocated field per
//!    metric (no hash map on the hot path), a process-wide instance via
//!    [`global()`], point-in-time [`MetricsSnapshot`]s with per-run
//!    [`delta_since`](MetricsSnapshot::delta_since), and the
//!    [`Recorder`] trait ([`GlobalRecorder`] / no-op [`NullRecorder`])
//!    that instrumented crates drive.
//! 3. **Exporters** — Prometheus text format ([`to_prometheus`]), a JSON
//!    dump ([`to_json`]), and a [`PeriodicReporter`] that writes
//!    `<prefix>.metrics.{json,prom}` sidecars atomically during a run.
//!
//! ## The zero-cost contract
//!
//! This crate is always cheap to *depend on* (no dependencies of its own),
//! but the instrumented crates only *call* into it behind their
//! `telemetry` cargo feature. With the feature off, every hook in
//! `quantile-filter` / `qf-sketch` is compiled out and the hot paths are
//! bit-identical to the uninstrumented code — verified by the
//! `filter_insert` benchmark in both build modes (see CI) and by the
//! observer-effect guard in `tests/telemetry_observer.rs`, which pins the
//! exact report sequence of a fixed Zipf trace in both modes. With the
//! feature on, a hook is one uncontended relaxed `fetch_add` (~5 ns).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod counter;
pub mod export;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod reporter;
pub mod span;

pub use counter::{Counter, Gauge};
pub use export::{to_json, to_prometheus, EXPORT_QUANTILES};
pub use histogram::{bucket_index, bucket_upper, HistogramSnapshot, LogHistogram, NUM_BUCKETS};
pub use recorder::{CounterId, GaugeId, GlobalRecorder, HistogramId, NullRecorder, Recorder};
pub use registry::{global, MetricsSnapshot, QfMetrics};
pub use reporter::PeriodicReporter;
pub use span::SpanTimer;
