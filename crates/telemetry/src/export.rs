//! Exporters: Prometheus text format and a JSON snapshot dump.
//!
//! Both render a [`MetricsSnapshot`], so they are pure functions of data
//! already copied out of the atomics — exporting never blocks or perturbs
//! the hot path. JSON is written by hand (the workspace is offline and
//! vendors no `serde_json`); the emitted subset is deliberately tiny:
//! objects, strings, integers, and floats only.
//!
//! ## Prometheus text format
//!
//! Counters and gauges become single samples with `# TYPE` headers.
//! Histograms become classic cumulative-bucket families:
//! `<name>_bucket{le="…"}`, `<name>_sum`, `<name>_count`, plus
//! precomputed `<name>{quantile="…"}` summary samples for p50/p95/p99 so
//! dashboards work without `histogram_quantile()`. Meta annotations are
//! emitted as `# qf_meta key value` comments.
//!
//! ## JSON layout
//!
//! ```json
//! {
//!   "meta": {"detector": "QuantileFilter"},
//!   "counters": {"qf_filter_inserts_total": 123},
//!   "gauges": {"qf_rounding_drift_micros": -4},
//!   "histograms": {
//!     "qf_insert_latency_ns": {
//!       "count": 57, "sum": 12345, "max": 999, "mean": 216.6,
//!       "p50": 207, "p95": 831, "p99": 991
//!     }
//!   }
//! }
//! ```

use crate::histogram::{bucket_upper, HistogramSnapshot};
use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// Quantiles both exporters precompute for every histogram.
pub const EXPORT_QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

#[cfg(test)]
fn label_part(name: &str) -> Option<&str> {
    let open = name.find('{')?;
    Some(&name[open + 1..name.len() - 1])
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (k, v) in &snap.meta {
        let _ = writeln!(out, "# qf_meta {k} {v}");
    }
    let mut last_type_line: Option<String> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}");
        if last_type_line.as_deref() != Some(&line) {
            out.push_str(&line);
            out.push('\n');
            last_type_line = Some(line);
        }
    };

    for &(name, v) in &snap.counters {
        type_line(&mut out, base_name(name), "counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for &(name, v) in &snap.gauges {
        type_line(&mut out, base_name(name), "gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        type_line(&mut out, name, "histogram");
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count());
        for &(q, label) in &EXPORT_QUANTILES {
            let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
        }
        let _ = writeln!(out, "{name}_max {}", h.max);
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}",
        h.count(),
        h.sum,
        h.max,
        h.mean()
    );
    for &(q, _) in &EXPORT_QUANTILES {
        let key = format!("p{:.0}", q * 100.0);
        let _ = write!(out, ", \"{key}\": {}", h.quantile(q));
    }
    out.push('}');
    out
}

/// Render a snapshot as a JSON object (see module docs for the layout).
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"meta\": {");
    for (i, (k, v)) in snap.meta.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("},\n  \"counters\": {");
    // Labelled counters keep the label in the key: the name string is the
    // metric's identity everywhere (JSON, Prometheus, `MetricsSnapshot`).
    for (i, &(name, v)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, &(name, v)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {}",
            json_escape(name),
            histogram_json(h)
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::QfMetrics;

    fn sample_snapshot() -> MetricsSnapshot {
        let m = QfMetrics::new();
        m.filter_inserts.add(100);
        m.filter_reports_candidate.add(2);
        m.rounding_drift_micros.add(-7);
        for v in 1..=100u64 {
            m.insert_latency_ns.record(v * 10);
        }
        m.snapshot().with_meta("detector", "QuantileFilter")
    }

    #[test]
    fn prometheus_has_types_samples_and_labels() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# qf_meta detector QuantileFilter"));
        assert!(text.contains("# TYPE qf_filter_inserts_total counter"));
        assert!(text.contains("qf_filter_inserts_total 100"));
        // The labelled counter keeps its label and shares one TYPE header.
        assert!(text.contains("qf_filter_reports_total{source=\"candidate\"} 2"));
        assert_eq!(
            text.matches("# TYPE qf_filter_reports_total counter")
                .count(),
            1
        );
        assert!(text.contains("# TYPE qf_insert_latency_ns histogram"));
        assert!(text.contains("qf_insert_latency_ns_bucket{le=\"+Inf\"} 100"));
        assert!(text.contains("qf_insert_latency_ns_count 100"));
        assert!(text.contains("qf_insert_latency_ns{quantile=\"0.95\"}"));
        assert!(text.contains("qf_rounding_drift_micros -7"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_sorted() {
        let text = to_prometheus(&sample_snapshot());
        let mut last_le = 0u64;
        let mut last_cum = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("qf_insert_latency_ns_bucket{le=\"") && !l.contains("+Inf"))
        {
            let le: u64 = line.split('"').nth(1).unwrap().parse().unwrap();
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(le > last_le, "buckets out of order: {line}");
            assert!(cum >= last_cum, "counts not cumulative: {line}");
            last_le = le;
            last_cum = cum;
        }
        assert!(last_cum == 100);
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = to_json(&sample_snapshot());
        // Balanced braces and the expected keys, without a JSON parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"meta\": {"));
        assert!(json.contains("\"detector\": \"QuantileFilter\""));
        assert!(json.contains("\"qf_filter_inserts_total\": 100"));
        assert!(json.contains("\"qf_filter_reports_total{source=\\\"candidate\\\"}\": 2"));
        assert!(json.contains("\"qf_insert_latency_ns\": {\"count\": 100"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p95\":"));
        assert!(json.contains("\"p99\":"));
        assert!(!json.contains(",,"));
    }

    #[test]
    fn label_helpers_split_names() {
        assert_eq!(base_name("a_total{source=\"x\"}"), "a_total");
        assert_eq!(base_name("a_total"), "a_total");
        assert_eq!(label_part("a_total{source=\"x\"}"), Some("source=\"x\""));
        assert_eq!(label_part("a_total"), None);
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let m = QfMetrics::new();
        let snap = m.snapshot();
        let text = to_prometheus(&snap);
        assert!(text.contains("qf_insert_latency_ns_count 0"));
        let json = to_json(&snap);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
