//! Relaxed-atomic counters and gauges.
//!
//! Every primitive here is a thin wrapper over a single atomic word updated
//! with `Ordering::Relaxed`. On x86-64 an uncontended relaxed `fetch_add`
//! is one `lock xadd` (~5 ns); on ARM it is an LL/SC pair. That is the
//! entire per-event cost of an *enabled* telemetry counter — and when the
//! `telemetry` feature is off in the instrumented crates, the call sites
//! are compiled out entirely, so the disabled cost is zero.
//!
//! Relaxed ordering is deliberate: metrics are monotone scalars with no
//! happens-before obligations to the data they describe. A snapshot taken
//! concurrently with updates may be a few events stale per counter, which
//! is the standard contract of every production metrics library.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
// sync: counter — relaxed metric word; metrics carry no happens-before
// obligations to the data they describe (module docs).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (usable in `static` initializers).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline(always)]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once (batch paths).
    #[inline(always)]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (tests and per-run deltas; racy by design).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (e.g. cumulative rounding drift).
// sync: counter — relaxed metric word, same contract as [`Counter`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge (usable in `static` initializers).
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Add a signed delta.
    #[inline(always)]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite the value.
    #[inline(always)]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (tests and per-run deltas; racy by design).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.incr();
        c.add(40);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_goes_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
        g.set(7);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_is_shareable_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
