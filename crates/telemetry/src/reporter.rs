//! The periodic reporter: telemetry sidecars next to eval results.
//!
//! A [`PeriodicReporter`] owns a path *prefix* and writes two files,
//! `<prefix>.metrics.json` and `<prefix>.metrics.prom`, atomically
//! (write-to-temp + rename) so a Prometheus textfile collector or a
//! results-ingesting script never observes a half-written snapshot.
//! [`PeriodicReporter::tick`] is designed to be called from inside a
//! streaming loop: it is a single `Instant` comparison until the interval
//! elapses, then one snapshot + two file writes.
//!
//! A reporter given a snapshot source via
//! [`with_source`](PeriodicReporter::with_source) also flushes **on
//! drop**, so the sidecars always capture the end-of-run state even when
//! the owning loop exits between intervals (early return, `?`
//! propagation, panic unwind). Without a source, drop writes nothing —
//! the reporter cannot conjure a snapshot it was never shown.

use crate::export::{to_json, to_prometheus};
use crate::registry::MetricsSnapshot;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Writes `<prefix>.metrics.{json,prom}` sidecars, rate-limited.
pub struct PeriodicReporter {
    prefix: PathBuf,
    interval: Duration,
    last: Instant,
    writes: u64,
    /// When set, drop performs a final unconditional flush from here.
    source: Option<Box<dyn Fn() -> MetricsSnapshot + Send>>,
}

impl std::fmt::Debug for PeriodicReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeriodicReporter")
            .field("prefix", &self.prefix)
            .field("interval", &self.interval)
            .field("writes", &self.writes)
            .field("has_source", &self.source.is_some())
            .finish()
    }
}

impl PeriodicReporter {
    /// Report to `<prefix>.metrics.json` / `.prom` at most every
    /// `interval` (the first [`tick`](Self::tick) after construction
    /// waits a full interval; use [`flush`](Self::flush) for an
    /// unconditional write).
    pub fn new(prefix: impl Into<PathBuf>, interval: Duration) -> Self {
        Self {
            prefix: prefix.into(),
            interval,
            last: Instant::now(),
            writes: 0,
            source: None,
        }
    }

    /// Attach a snapshot source (typically
    /// `|| qf_telemetry::global().snapshot()`); the reporter will flush
    /// from it once more when dropped, guaranteeing the sidecars reflect
    /// the end-of-run state on every exit path.
    #[must_use]
    pub fn with_source(mut self, source: impl Fn() -> MetricsSnapshot + Send + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Path of the JSON sidecar.
    pub fn json_path(&self) -> PathBuf {
        sidecar_path(&self.prefix, "metrics.json")
    }

    /// Path of the Prometheus text sidecar.
    pub fn prom_path(&self) -> PathBuf {
        sidecar_path(&self.prefix, "metrics.prom")
    }

    /// Number of snapshots written so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Write the sidecars if the interval has elapsed. `snap` is only
    /// invoked when a write actually happens, so the caller can pass a
    /// closure that captures registry deltas lazily. Returns whether a
    /// write occurred.
    pub fn tick(&mut self, snap: impl FnOnce() -> MetricsSnapshot) -> io::Result<bool> {
        if self.last.elapsed() < self.interval {
            return Ok(false);
        }
        self.flush(&snap())?;
        Ok(true)
    }

    /// Unconditionally write both sidecars (the end-of-run flush).
    pub fn flush(&mut self, snap: &MetricsSnapshot) -> io::Result<()> {
        write_atomic(&self.json_path(), to_json(snap).as_bytes())?;
        write_atomic(&self.prom_path(), to_prometheus(snap).as_bytes())?;
        self.last = Instant::now();
        self.writes += 1;
        Ok(())
    }
}

impl Drop for PeriodicReporter {
    fn drop(&mut self) {
        if let Some(source) = self.source.take() {
            // Errors are swallowed by necessity: drop has no channel to
            // report them, and a failed final flush must not turn an
            // orderly exit (or an unwind already in flight) into an abort.
            let _ = self.flush(&source());
        }
    }
}

fn sidecar_path(prefix: &Path, ext: &str) -> PathBuf {
    let mut os = prefix.as_os_str().to_os_string();
    os.push(".");
    os.push(ext);
    PathBuf::from(os)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::QfMetrics;

    fn scratch_prefix(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qf_telemetry_test_{}_{tag}", std::process::id()))
    }

    #[test]
    fn flush_writes_both_sidecars() {
        let m = QfMetrics::new();
        m.filter_inserts.add(9);
        let prefix = scratch_prefix("flush");
        let mut rep = PeriodicReporter::new(&prefix, Duration::from_secs(3600));
        rep.flush(&m.snapshot()).unwrap();
        let json = fs::read_to_string(rep.json_path()).unwrap();
        let prom = fs::read_to_string(rep.prom_path()).unwrap();
        assert!(json.contains("\"qf_filter_inserts_total\": 9"));
        assert!(prom.contains("qf_filter_inserts_total 9"));
        assert_eq!(rep.writes(), 1);
        let _ = fs::remove_file(rep.json_path());
        let _ = fs::remove_file(rep.prom_path());
    }

    #[test]
    fn tick_respects_interval_then_fires() {
        let m = QfMetrics::new();
        let prefix = scratch_prefix("tick");
        let mut rep = PeriodicReporter::new(&prefix, Duration::from_millis(30));
        assert!(!rep.tick(|| m.snapshot()).unwrap(), "fired too early");
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            rep.tick(|| m.snapshot()).unwrap(),
            "did not fire after interval"
        );
        assert!(
            !rep.tick(|| m.snapshot()).unwrap(),
            "rate limit reset failed"
        );
        let _ = fs::remove_file(rep.json_path());
        let _ = fs::remove_file(rep.prom_path());
    }

    #[test]
    fn drop_flushes_final_state_when_sourced() {
        let m = std::sync::Arc::new(QfMetrics::new());
        let prefix = scratch_prefix("drop_flush");
        let json_path;
        {
            let src = std::sync::Arc::clone(&m);
            let rep = PeriodicReporter::new(&prefix, Duration::from_secs(3600))
                .with_source(move || src.snapshot());
            json_path = rep.json_path();
            // Counter moves *after* the last explicit write opportunity;
            // only the drop flush can capture it.
            m.filter_inserts.add(123);
        }
        let json = fs::read_to_string(&json_path).unwrap();
        assert!(
            json.contains("\"qf_filter_inserts_total\": 123"),
            "drop flush missed final state: {json}"
        );
        let _ = fs::remove_file(&json_path);
        let _ = fs::remove_file(sidecar_path(&prefix, "metrics.prom"));
    }

    #[test]
    fn drop_without_source_writes_nothing() {
        let prefix = scratch_prefix("drop_silent");
        let json_path;
        {
            let rep = PeriodicReporter::new(&prefix, Duration::from_secs(3600));
            json_path = rep.json_path();
        }
        assert!(
            !json_path.exists(),
            "sourceless drop must not invent a snapshot"
        );
    }

    #[test]
    fn sidecar_paths_append_not_replace_extension() {
        let rep = PeriodicReporter::new("results/detect-qf.run1", Duration::ZERO);
        assert_eq!(
            rep.json_path(),
            PathBuf::from("results/detect-qf.run1.metrics.json")
        );
        assert_eq!(
            rep.prom_path(),
            PathBuf::from("results/detect-qf.run1.metrics.prom")
        );
    }
}
