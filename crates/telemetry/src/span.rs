//! Lightweight span timing: measure a scope, record into a histogram.
//!
//! A [`SpanTimer`] costs one `Instant::now()` at construction and one at
//! drop (plus the histogram's three relaxed atomics), ~40–60 ns per span
//! on commodity hardware. That is far too expensive to wrap around every
//! single ~100 ns filter insert, which is why the eval harness *samples*
//! spans (one in every `2^k` items) instead of timing each one — see
//! `qf_eval::run_detector_telemetered`.

use crate::histogram::LogHistogram;
use std::time::Instant;

/// Times a scope and records the elapsed nanoseconds into a histogram on
/// drop (or explicitly via [`SpanTimer::stop`]).
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a LogHistogram,
    start: Instant,
    armed: bool,
}

impl<'a> SpanTimer<'a> {
    /// Start timing against `hist`.
    #[inline]
    pub fn start(hist: &'a LogHistogram) -> Self {
        Self {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Stop now, record, and return the elapsed nanoseconds.
    #[inline]
    pub fn stop(mut self) -> u64 {
        let nanos = self.elapsed_nanos();
        self.hist.record(nanos);
        self.armed = false;
        nanos
    }

    /// Abandon the span without recording anything.
    #[inline]
    pub fn cancel(mut self) {
        self.armed = false;
    }

    /// Nanoseconds since the span started (saturating at `u64::MAX`).
    #[inline]
    fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.elapsed_nanos());
        }
    }
}

impl LogHistogram {
    /// Start a [`SpanTimer`] recording into this histogram.
    #[inline]
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer::start(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = LogHistogram::new();
        {
            let _t = h.span();
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_returns_elapsed_and_records_once() {
        let h = LogHistogram::new();
        let t = h.span();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let nanos = t.stop();
        assert!(nanos >= 1_000_000, "measured {nanos} ns");
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().sum, h.snapshot().sum); // no double record
    }

    #[test]
    fn cancel_records_nothing() {
        let h = LogHistogram::new();
        h.span().cancel();
        assert_eq!(h.count(), 0);
    }
}
