//! The `QfMetrics` registry: every metric the QuantileFilter stack emits,
//! as one statically-allocated struct of relaxed-atomic primitives.
//!
//! A field-per-metric struct (rather than a name → metric hash map) keeps
//! the hot path free of lookups: an instrumented call site compiles to a
//! single `fetch_add` on a fixed address. The process-wide instance from
//! [`global()`] is what the feature-gated hooks in `quantile-filter` and
//! `qf-sketch` write into, and what the exporters read.
//!
//! ## Naming conventions
//!
//! Metric names follow Prometheus style: `qf_` prefix, `_total` suffix on
//! counters, base units in the name (`_ns`, `_micros`). The only label in
//! use is `source="candidate"|"vague"` on `qf_filter_reports_total`,
//! mirroring [`ReportSource`](../../core/src/filter.rs) — new labels should
//! follow the same pattern: small, closed vocabularies only, one counter
//! field per label value.

use crate::counter::{Counter, Gauge};
use crate::histogram::{HistogramSnapshot, LogHistogram};

macro_rules! registry {
    (
        counters { $($cfield:ident => $cname:literal,)* }
        gauges { $($gfield:ident => $gname:literal,)* }
        histograms { $($hfield:ident => $hname:literal,)* }
    ) => {
        /// The full metric registry (see module docs for naming rules).
        #[derive(Debug, Default)]
        pub struct QfMetrics {
            $(#[doc = concat!("`", $cname, "`")] pub $cfield: Counter,)*
            $(#[doc = concat!("`", $gname, "`")] pub $gfield: Gauge,)*
            $(#[doc = concat!("`", $hname, "`")] pub $hfield: LogHistogram,)*
        }

        impl QfMetrics {
            /// A fresh all-zero registry (usable in `static` initializers).
            pub const fn new() -> Self {
                Self {
                    $($cfield: Counter::new(),)*
                    $($gfield: Gauge::new(),)*
                    $($hfield: LogHistogram::new(),)*
                }
            }

            /// Point-in-time copy of every metric, tagged with its
            /// exported name.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    meta: Vec::new(),
                    counters: vec![$(($cname, self.$cfield.get()),)*],
                    gauges: vec![$(($gname, self.$gfield.get()),)*],
                    histograms: vec![$(($hname, self.$hfield.snapshot()),)*],
                }
            }

            /// Zero every metric (tests and single-process re-runs; racy
            /// by design, like all relaxed-atomic metric stores).
            pub fn reset(&self) {
                $(self.$cfield.reset();)*
                $(self.$gfield.reset();)*
                $(self.$hfield.reset();)*
            }
        }
    };
}

registry! {
    counters {
        // filter.rs hot paths
        filter_inserts => "qf_filter_inserts_total",
        filter_queries => "qf_filter_queries_total",
        filter_deletes => "qf_filter_deletes_total",
        filter_dropped_nonfinite => "qf_filter_dropped_nonfinite_total",
        filter_rejected_nonfinite => "qf_filter_rejected_nonfinite_total",
        filter_reports_candidate => "qf_filter_reports_total{source=\"candidate\"}",
        filter_reports_vague => "qf_filter_reports_total{source=\"vague\"}",
        // candidate.rs: paths, elections, evictions
        candidate_hits => "qf_candidate_hits_total",
        candidate_inserts => "qf_candidate_inserts_total",
        candidate_bucket_full => "qf_candidate_bucket_full_total",
        candidate_elections => "qf_candidate_elections_total",
        candidate_evictions => "qf_candidate_evictions_total",
        // vague.rs sketch traffic
        vague_adds => "qf_vague_adds_total",
        vague_removes => "qf_vague_removes_total",
        // qf-sketch events
        sketch_saturations => "qf_sketch_saturation_events_total",
        rounding_fractional => "qf_rounding_fractional_total",
        rounding_up => "qf_rounding_up_total",
        // qf-pipeline ingest traffic (process aggregates; exact per-shard
        // accounting travels in `PipelineSummary`, since the registry's
        // closed-vocabulary label rule rules out per-shard label values)
        pipeline_enqueued => "qf_pipeline_enqueued_total",
        pipeline_dequeued => "qf_pipeline_dequeued_total",
        pipeline_dropped => "qf_pipeline_dropped_total",
        pipeline_reports => "qf_pipeline_reports_total",
        // qf-pipeline supervision & recovery
        pipeline_shed_oldest => "qf_pipeline_shed_oldest_total",
        pipeline_shard_down_rejected => "qf_pipeline_shard_down_rejected_total",
        pipeline_restarts => "qf_pipeline_restarts_total",
        pipeline_checkpoint_seals => "qf_pipeline_checkpoint_seal_total",
        pipeline_replayed => "qf_pipeline_replayed_items_total",
    }
    gauges {
        // Cumulative stochastic-rounding drift, in millionths of a unit of
        // Qweight: +(1−frac)·1e6 on a round-up, −frac·1e6 on a round-down.
        // Stays near zero iff the rounder is unbiased in practice.
        rounding_drift_micros => "qf_rounding_drift_micros",
        // Items sitting in shard queues right now, summed across shards:
        // +1 on enqueue, −1 on dequeue.
        pipeline_queue_depth => "qf_pipeline_queue_depth",
        // Sum of shard lifecycle-state codes across supervised shards
        // (Running=0, Suspect=1, Restarting=2, Quarantined=3): 0 means
        // every shard is healthy; a stuck 3 means one is quarantined.
        pipeline_shard_state => "qf_pipeline_shard_state",
    }
    histograms {
        insert_latency_ns => "qf_insert_latency_ns",
        query_latency_ns => "qf_query_latency_ns",
    }
}

static GLOBAL: QfMetrics = QfMetrics::new();

/// The process-wide registry the instrumented crates record into.
#[inline(always)]
pub fn global() -> &'static QfMetrics {
    &GLOBAL
}

/// A point-in-time copy of a registry: the input to both exporters, and
/// the unit of per-run delta computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Free-form annotations (detector name, workload, …) carried into
    /// the exporters as JSON strings / Prometheus comments.
    pub meta: Vec<(String, String)>,
    /// `(exported name, value)` per counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(exported name, value)` per gauge.
    pub gauges: Vec<(&'static str, i64)>,
    /// `(exported name, state)` per histogram.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Attach a meta annotation (builder-style).
    pub fn with_meta(mut self, key: &str, value: impl ToString) -> Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// Look up a counter by exported name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a histogram by exported name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// The change between two snapshots of the *same* registry: counters,
    /// gauges, and histogram buckets subtract exactly; histogram maxima
    /// keep the later cumulative value (see
    /// [`HistogramSnapshot::delta_since`]). Meta is taken from `self`.
    pub fn delta_since(&self, before: &Self) -> Self {
        Self {
            meta: self.meta.clone(),
            counters: self
                .counters
                .iter()
                .zip(&before.counters)
                .map(|(&(n, now), &(n2, b4))| {
                    debug_assert_eq!(n, n2, "snapshot field order diverged");
                    (n, now.saturating_sub(b4))
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .zip(&before.gauges)
                .map(|(&(n, now), &(n2, b4))| {
                    debug_assert_eq!(n, n2, "snapshot field order diverged");
                    (n, now.wrapping_sub(b4))
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .zip(&before.histograms)
                .map(|((n, now), (n2, b4))| {
                    debug_assert_eq!(n, n2, "snapshot field order diverged");
                    (*n, now.delta_since(b4))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registry_snapshots_to_zero() {
        let m = QfMetrics::new();
        let s = m.snapshot();
        assert!(s.counters.iter().all(|&(_, v)| v == 0));
        assert!(s.gauges.iter().all(|&(_, v)| v == 0));
        assert!(s.histograms.iter().all(|(_, h)| h.count() == 0));
    }

    #[test]
    fn snapshot_reflects_updates_by_name() {
        let m = QfMetrics::new();
        m.filter_inserts.add(5);
        m.candidate_evictions.incr();
        m.rounding_drift_micros.add(-42);
        m.insert_latency_ns.record(100);
        let s = m.snapshot();
        assert_eq!(s.counter("qf_filter_inserts_total"), Some(5));
        assert_eq!(s.counter("qf_candidate_evictions_total"), Some(1));
        assert_eq!(
            s.gauges
                .iter()
                .find(|(n, _)| *n == "qf_rounding_drift_micros")
                .unwrap()
                .1,
            -42
        );
        assert_eq!(s.histogram("qf_insert_latency_ns").unwrap().count(), 1);
        assert_eq!(s.counter("no_such_metric"), None);
    }

    #[test]
    fn delta_isolates_an_interval() {
        let m = QfMetrics::new();
        m.filter_inserts.add(10);
        let before = m.snapshot();
        m.filter_inserts.add(7);
        m.query_latency_ns.record(50);
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.counter("qf_filter_inserts_total"), Some(7));
        assert_eq!(d.histogram("qf_query_latency_ns").unwrap().count(), 1);
    }

    #[test]
    fn reset_zeroes_and_meta_attaches() {
        let m = QfMetrics::new();
        m.filter_queries.add(3);
        m.reset();
        assert_eq!(m.snapshot().counter("qf_filter_queries_total"), Some(0));
        let s = m.snapshot().with_meta("detector", "QuantileFilter");
        assert_eq!(s.meta[0].1, "QuantileFilter");
    }

    #[test]
    fn global_is_shared() {
        global().filter_deletes.incr();
        assert!(
            global()
                .snapshot()
                .counter("qf_filter_deletes_total")
                .unwrap()
                >= 1
        );
    }
}
