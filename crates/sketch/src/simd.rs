//! SWAR (SIMD-within-a-register) primitives for the data-parallel hot path.
//!
//! Stable Rust has no portable-SIMD API, but the hot loops here only need
//! 16-bit lane tricks that a plain `u64` can carry four at a time: the
//! candidate part's bucket scan probes a flat `Vec<u16>` fingerprint array
//! (see `qf-core`'s SoA `CandidatePart`), and four fingerprints packed into
//! one register can be compared against a broadcast probe with three ALU
//! ops and zero branches. On x86-64 and aarch64 LLVM lowers the packed
//! 16-bit load to a single 8-byte move, so the scan runs at one word per
//! four slots instead of one compare-and-branch per slot.
//!
//! Correctness note: the well-known "subtract borrow" zero-lane detector
//! `(x - 0x0001…) & !x & 0x8000…` is WRONG for packed lanes — a borrow from
//! a zero lane rips through the neighbouring lane and makes a `0x0001` lane
//! report as zero. The detectors here use the carry-free add form from
//! Hacker's Delight (§6-1, "Find First 0-Byte", adapted to 16-bit lanes),
//! which is exact for every input; the proptest at the bottom pits it
//! against the scalar reference over random lanes including the borrow
//! false-positive patterns.

/// Number of 16-bit lanes in one SWAR word.
pub const LANES_PER_WORD: usize = 4;

/// Per-lane mask of the low 15 bits: the carry fence of the zero-lane
/// detector.
const LOW15: u64 = 0x7FFF_7FFF_7FFF_7FFF;

/// Pack four little-endian-ordered `u16` lanes into one word (lane 0 in the
/// low 16 bits). The shift-or fold compiles to a single 8-byte load when the
/// lanes come from a contiguous `&[u16]` — no `unsafe`, no transmute.
#[inline(always)]
pub fn pack4(lanes: [u16; 4]) -> u64 {
    u64::from(lanes[0])
        | u64::from(lanes[1]) << 16
        | u64::from(lanes[2]) << 32
        | u64::from(lanes[3]) << 48
}

/// Broadcast one `u16` into all four lanes.
#[inline(always)]
pub fn broadcast4(x: u16) -> u64 {
    u64::from(x) * 0x0001_0001_0001_0001
}

/// Per-lane high-bit mask of the lanes of `x` that are zero — exact for all
/// inputs (Hacker's Delight add form; see module docs for why the subtract
/// form is unusable).
#[inline(always)]
pub fn zero_lanes4(x: u64) -> u64 {
    // High bit of `t` is set iff the lane's low 15 bits are nonzero; OR-ing
    // `x` back in folds the lane's own high bit; a lane is zero iff neither
    // fired.
    let t = (x & LOW15) + LOW15;
    !(t | x | LOW15)
}

/// Per-lane high-bit mask of the lanes of `x` equal to `probe4` (a
/// [`broadcast4`] word).
#[inline(always)]
pub fn eq_lanes4(x: u64, probe4: u64) -> u64 {
    zero_lanes4(x ^ probe4)
}

/// Compress a per-lane high-bit mask (as produced by [`zero_lanes4`] /
/// [`eq_lanes4`]) into the low 4 bits: bit `i` set ⇔ lane `i` fired.
#[inline(always)]
pub fn movemask4(mask: u64) -> u32 {
    // The only set bits are at positions 15/31/47/63; route each to its lane
    // index. Stray cross-terms all land at bit 16 or above and are masked.
    ((mask >> 15 | mask >> 30 | mask >> 45 | mask >> 60) & 0xF) as u32
}

/// Branch-free conditional negate: `if negative { -x } else { x }` as two
/// ALU ops, so the Count sketch's signed bump never forks the pipeline.
#[inline(always)]
pub fn apply_sign(x: i64, negative: bool) -> i64 {
    let m = -i64::from(negative);
    (x ^ m).wrapping_sub(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_zero_mask(lanes: [u16; 4]) -> u32 {
        lanes
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == 0)
            .map(|(i, _)| 1u32 << i)
            .sum()
    }

    #[test]
    fn pack_and_broadcast_roundtrip() {
        let lanes = [0x1234u16, 0, 0xFFFF, 0x8000];
        let w = pack4(lanes);
        for (i, &l) in lanes.iter().enumerate() {
            assert_eq!((w >> (16 * i)) as u16, l);
        }
        assert_eq!(broadcast4(0xABCD), pack4([0xABCD; 4]));
    }

    #[test]
    fn subtract_borrow_false_positives_are_absent() {
        // The classic failure pattern for the subtract-form detector: a
        // 0x0001 lane adjacent to a genuine zero lane. The add form must
        // flag only the true zero.
        for lanes in [
            [0u16, 1, 1, 1],
            [1, 0, 1, 1],
            [0, 1, 0, 1],
            [0x0001, 0, 0x0001, 0],
        ] {
            let got = movemask4(zero_lanes4(pack4(lanes)));
            assert_eq!(got, scalar_zero_mask(lanes), "lanes {lanes:?}");
        }
    }

    #[test]
    fn eq_lanes_find_the_probe() {
        let lanes = [7u16, 0x8000, 7, 0];
        let m = movemask4(eq_lanes4(pack4(lanes), broadcast4(7)));
        assert_eq!(m, 0b0101);
        let m = movemask4(eq_lanes4(pack4(lanes), broadcast4(0x8000)));
        assert_eq!(m, 0b0010);
        let m = movemask4(eq_lanes4(pack4(lanes), broadcast4(3)));
        assert_eq!(m, 0);
    }

    #[test]
    fn apply_sign_matches_branchy_negate() {
        for x in [0i64, 1, -1, i64::MAX, i64::MIN + 1, 42, -37] {
            assert_eq!(apply_sign(x, false), x);
            assert_eq!(apply_sign(x, true), -x);
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_zero_detector_is_exact(a in 0u16..=u16::MAX, b in 0u16..=u16::MAX, c in 0u16..=u16::MAX, d in 0u16..=u16::MAX) {
            let lanes = [a, b, c, d];
            proptest::prop_assert_eq!(
                movemask4(zero_lanes4(pack4(lanes))),
                scalar_zero_mask(lanes)
            );
        }

        #[test]
        fn prop_eq_detector_is_exact(a in 0u16..8, b in 0u16..8, c in 0u16..8, d in 0u16..8, probe in 0u16..8) {
            // Small lane domain so probe collisions actually occur.
            let lanes = [a, b, c, d];
            let want: u32 = lanes
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l == probe)
                .map(|(i, _)| 1u32 << i)
                .sum();
            proptest::prop_assert_eq!(
                movemask4(eq_lanes4(pack4(lanes), broadcast4(probe))),
                want
            );
        }
    }
}
