//! Feature-gated flight-recorder trace hooks for sketch-level events.
//!
//! Same zero-cost contract as [`crate::telemetry`]: with the `trace`
//! cargo feature **off** (the default) the hook is an empty
//! `#[inline(always)]` body and the call sites compile out. With the
//! feature **on**, a saturation emits one event into the calling
//! thread's installed flight recorder (see [`qf_trace::tls`]) — threads
//! without a recorder drop it after one relaxed load.
//!
//! The hook is only *called* from telemetry's clamp-detection branch:
//! deciding whether a cell clamped takes widening arithmetic per cell
//! per insert, and under narrow counters (the paper-default `i8` vague
//! part) a heavy stream clamps on nearly every insert — measured ~20%
//! of scalar throughput on the internet-like hotpath workload. That
//! detection is telemetry's accepted per-insert cost; `trace` alone
//! must stay inside the ≤2% A/B budget, so a trace-only build compiles
//! the detection (and this hook's call sites) out entirely, and the
//! observability build (`telemetry,trace`, what qf-ops runs) emits from
//! the branch telemetry already pays for.
//!
//! Emission is also *sampled*: an unsampled hook would flood the
//! 256-slot flight recorder with nothing but saturation events. The
//! hook emits the first saturation a thread sees and every `SAMPLE`-th
//! after that, carrying the running count in the event's `b` payload —
//! the dump shows both the onset and the magnitude of saturation
//! pressure without washing out the history around it.

#[cfg(feature = "trace")]
mod hooks {
    use qf_trace::{tls, EventKind};
    use std::cell::Cell;

    /// Emit 1-in-`SAMPLE` saturations (plus the very first).
    const SAMPLE: u64 = 1024;

    thread_local! {
        static SATURATIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// A sketch cell clamped at its numeric bound instead of absorbing
    /// the full delta. `a` is the row; `b` is this thread's running
    /// saturation count at emit time (not the column — under sampling
    /// the aggregate pressure is the diagnostic, not one cell address).
    /// Threads with no recorder skip even the counting: in a process
    /// that never installed a recorder, [`tls::installed`] is a single
    /// relaxed load of a read-mostly static — no TLS access at all.
    // Call sites live inside telemetry's clamp-detection branch (see
    // module docs), so a trace-only build has none.
    #[allow(dead_code)]
    #[inline]
    pub fn saturation(row: usize, _col: usize) {
        if !tls::installed() {
            return;
        }
        SATURATIONS.with(|s| {
            let n = s.get();
            s.set(n + 1);
            if n % SAMPLE == 0 {
                tls::emit(EventKind::SketchSaturation, row as u64, n + 1);
            }
        });
    }
}

#[cfg(not(feature = "trace"))]
mod hooks {
    // Saturation detection only runs when telemetry is on, so with
    // trace off this no-op is referenced only from telemetry builds.
    /// No-op: tracing is compiled out.
    #[allow(dead_code)]
    #[inline(always)]
    pub fn saturation(_row: usize, _col: usize) {}
}

#[allow(unused_imports)]
pub(crate) use hooks::saturation;
