//! A Count-Min sketch with signed counters — the alternative vague part of
//! the paper's Choice 2 (§III-D) and Fig. 12 ablation.
//!
//! CM sketches (Cormode & Muthukrishnan 2005) were designed for
//! *non-negative* frequencies, where taking the minimum over rows gives a
//! one-sided overestimate. Qweights are signed, so the one-sided guarantee
//! is lost when this structure is "forced into service" — exactly the
//! degradation the paper observes ("using CMS does not improve the
//! accuracy"). We keep the classic min-over-rows estimator so the ablation
//! measures the real design the paper compared against.

use crate::counter::SketchCounter;
use crate::snapshot::{SketchShape, SketchState, SKETCH_KIND_CMS};
use crate::traits::WeightSketch;
use qf_hash::wire::{ByteReader, ByteWriter, WireError};
use qf_hash::{HashFamily, RowLanes, StreamKey};

/// A Count-Min sketch over cells of type `C` with signed updates.
#[derive(Debug, Clone)]
pub struct CountMinSketch<C: SketchCounter = i32> {
    cells: Vec<C>,
    family: HashFamily,
    rows: usize,
    width: usize,
}

impl<C: SketchCounter> CountMinSketch<C> {
    /// Create a sketch with `rows` arrays of `width` counters.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `width == 0`.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(rows > 0, "rows must be positive");
        assert!(width > 0, "width must be positive");
        Self {
            cells: vec![C::zero(); rows * width],
            family: HashFamily::new(rows, width, seed),
            rows,
            width,
        }
    }

    /// Build the sketch that fits a byte budget at the given depth.
    pub fn with_memory_budget(rows: usize, bytes: usize, seed: u64) -> Self {
        let width = (bytes / (rows * C::BYTES)).max(1);
        Self::new(rows, width, seed)
    }

    /// Number of rows `d`.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `w`.
    #[inline(always)]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Direct read of the raw counter grid (tests and diagnostics).
    pub fn raw_cells(&self) -> &[C] {
        &self.cells
    }

    /// Saturating-add `w` into one cell and return the post-add value —
    /// the shared kernel of the fused one-pass entry points.
    #[inline(always)]
    fn bump_cell(&mut self, row: usize, col: usize, w: i64) -> i64 {
        let cell = &mut self.cells[row * self.width + col];
        #[cfg(feature = "telemetry")]
        let before = cell.to_i64();
        *cell = cell.saturating_add_i64(w);
        // Same saturation accounting as the Count sketch's add path.
        #[cfg(feature = "telemetry")]
        if before.checked_add(w) != Some(cell.to_i64()) {
            crate::telemetry::saturation_event();
            crate::trace::saturation(row, col);
        }
        cell.to_i64()
    }
}

impl<C: SketchCounter> crate::invariants::CheckInvariants for CountMinSketch<C> {
    fn check_invariants(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        const S: &str = "CountMinSketch";
        if self.rows == 0 {
            return Err(V::new(S, "rows is zero"));
        }
        if self.width == 0 {
            return Err(V::new(S, "width is zero"));
        }
        if self.cells.len() != self.rows * self.width {
            return Err(V::new(
                S,
                format!(
                    "cell grid holds {} cells for {}x{} dims",
                    self.cells.len(),
                    self.rows,
                    self.width
                ),
            ));
        }
        if self.family.rows() != self.rows || self.family.width() != self.width {
            return Err(V::new(
                S,
                format!(
                    "hash family is {}x{}, grid is {}x{}",
                    self.family.rows(),
                    self.family.width(),
                    self.rows,
                    self.width
                ),
            ));
        }
        Ok(())
    }
}

impl<C: SketchCounter> SketchState for CountMinSketch<C> {
    fn shape(&self) -> SketchShape {
        SketchShape {
            kind: SKETCH_KIND_CMS,
            counter_bytes: C::BYTES as u8,
            rows: self.rows as u64,
            width: self.width as u64,
        }
    }

    fn write_state(&self, w: &mut ByteWriter) {
        for &seed in self.family.seeds() {
            w.put_u64(seed);
        }
        for cell in &self.cells {
            w.put_int_narrow(cell.to_i64(), C::BYTES);
        }
    }

    fn from_state(shape: SketchShape, r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        if shape.kind != SKETCH_KIND_CMS {
            return Err(WireError::Invalid("sketch kind mismatch (want CMS)"));
        }
        if usize::from(shape.counter_bytes) != C::BYTES {
            return Err(WireError::Invalid("sketch counter width mismatch"));
        }
        let (rows, width) = shape.checked_dims()?;
        let mut seeds = Vec::with_capacity(rows);
        for _ in 0..rows {
            seeds.push(r.get_u64()?);
        }
        let family = HashFamily::from_seeds(seeds, width)
            .ok_or(WireError::Invalid("degenerate hash family"))?;
        let mut cells = Vec::with_capacity(rows * width);
        for _ in 0..rows * width {
            cells.push(C::zero().saturating_add_i64(r.get_int_narrow(C::BYTES)?));
        }
        Ok(Self {
            cells,
            family,
            rows,
            width,
        })
    }
}

impl<C: SketchCounter> WeightSketch for CountMinSketch<C> {
    #[inline]
    fn add<K: StreamKey + ?Sized>(&mut self, key: &K, delta: i64) {
        for row in 0..self.rows {
            let col = self.family.column(row, key);
            let cell = &mut self.cells[row * self.width + col];
            #[cfg(feature = "telemetry")]
            let before = cell.to_i64();
            *cell = cell.saturating_add_i64(delta);
            // Same saturation accounting as the Count sketch's add path.
            #[cfg(feature = "telemetry")]
            if before.checked_add(delta) != Some(cell.to_i64()) {
                crate::telemetry::saturation_event();
                crate::trace::saturation(row, col);
            }
        }
    }

    #[inline]
    fn estimate<K: StreamKey + ?Sized>(&self, key: &K) -> i64 {
        let mut min = i64::MAX;
        for row in 0..self.rows {
            let col = self.family.column(row, key);
            let v = self.cells[row * self.width + col].to_i64();
            if v < min {
                min = v;
            }
        }
        min
    }

    #[inline]
    fn remove_estimate<K: StreamKey + ?Sized>(&mut self, key: &K) -> i64 {
        let est = self.estimate(key);
        if est != 0 {
            for row in 0..self.rows {
                let col = self.family.column(row, key);
                let cell = &mut self.cells[row * self.width + col];
                *cell = cell.saturating_add_i64(-est);
            }
        }
        est
    }

    #[inline]
    fn prepare_lanes<K: StreamKey + ?Sized>(&self, key: &K) -> RowLanes {
        // CMS ignores the sign half of each lane; the column half is the
        // same multiply-shift `column` computes, so lanes are shared with CS.
        self.family.lanes(key)
    }

    #[inline]
    fn add_and_estimate<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        lanes: &RowLanes,
        delta: i64,
    ) -> i64 {
        if lanes.len() != self.rows {
            self.add(key, delta);
            return self.estimate(key);
        }
        // One pass: bump each row's cell and fold the post-add value into
        // the running minimum. Rows occupy disjoint grid slices, so this is
        // bit-identical to a full `add` followed by a full `estimate`.
        if self.rows == 3 {
            // Paper-default depth: constant trip count, stays in registers.
            let v0 = self.bump_cell(0, lanes.col(0), delta);
            let v1 = self.bump_cell(1, lanes.col(1), delta);
            let v2 = self.bump_cell(2, lanes.col(2), delta);
            return v0.min(v1).min(v2);
        }
        let mut min = i64::MAX;
        for row in 0..self.rows {
            let v = self.bump_cell(row, lanes.col(row), delta);
            if v < min {
                min = v;
            }
        }
        min
    }

    #[inline]
    fn fetch_remove<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        lanes: &RowLanes,
        estimate: i64,
    ) -> i64 {
        if lanes.len() != self.rows {
            return self.remove_estimate(key);
        }
        if estimate != 0 {
            for row in 0..self.rows {
                let col = lanes.col(row);
                let cell = &mut self.cells[row * self.width + col];
                *cell = cell.saturating_add_i64(-estimate);
            }
        }
        estimate
    }

    fn fill_lanes<K: StreamKey>(&self, keys: &[K], out: &mut [RowLanes]) {
        use crate::count_sketch::BATCH_BLOCK;
        let n = keys.len();
        assert!(out.len() >= n, "lane buffer shorter than keys");
        let mut j = 0;
        while j < n {
            let end = (j + BATCH_BLOCK).min(n);
            // Same block-gathered prehash fill as the Count sketch; CMS
            // shares the family so the digests and columns are identical.
            let mut pre = [0u64; BATCH_BLOCK];
            let mut all_prehashed = true;
            for (slot, key) in pre.iter_mut().zip(&keys[j..end]) {
                match key.prehash() {
                    Some(p) => *slot = p,
                    None => {
                        all_prehashed = false;
                        break;
                    }
                }
            }
            if all_prehashed {
                self.family
                    .fill_lanes_prehashed(&pre[..end - j], &mut out[j..end]);
            } else {
                for (slot, key) in out[j..end].iter_mut().zip(&keys[j..end]) {
                    *slot = self.family.lanes(key);
                }
            }
            j = end;
        }
    }

    #[inline]
    fn prefetch_lanes(&self, lanes: &RowLanes) {
        if lanes.len() != self.rows {
            return;
        }
        for row in 0..self.rows {
            let idx = row * self.width + lanes.col(row);
            if let Some(cell) = self.cells.get(idx) {
                crate::traits::prefetch_read(cell);
            }
        }
    }

    fn add_and_estimate_batch<K: StreamKey>(
        &mut self,
        keys: &[K],
        lanes: &[RowLanes],
        deltas: &[i64],
        out: &mut [i64],
    ) {
        use crate::count_sketch::BATCH_BLOCK;
        let n = keys.len();
        assert!(
            lanes.len() >= n && deltas.len() >= n && out.len() >= n,
            "batch slices shorter than keys"
        );
        let rows = self.rows;
        let mut j = 0;
        while j < n {
            let end = (j + BATCH_BLOCK).min(n);
            if lanes[j..end].iter().any(|l| l.len() != rows) {
                for jj in j..end {
                    out[jj] = self.add_and_estimate(&keys[jj], &lanes[jj], deltas[jj]);
                }
                j = end;
                continue;
            }
            // Column-wise core, same disjoint-rows bit-identity argument as
            // the Count sketch: one pass of bumps per row, post-add values
            // folded into a running per-item minimum.
            let mut mins = [i64::MAX; BATCH_BLOCK];
            for row in 0..rows {
                for (idx, l) in lanes[j..end].iter().enumerate() {
                    let v = self.bump_cell(row, l.col(row), deltas[j + idx]);
                    if v < mins[idx] {
                        mins[idx] = v;
                    }
                }
            }
            out[j..end].copy_from_slice(&mins[..end - j]);
            j = end;
        }
    }

    fn fetch_remove_batch<K: StreamKey>(
        &mut self,
        keys: &[K],
        lanes: &[RowLanes],
        estimates: &[i64],
    ) {
        use crate::count_sketch::BATCH_BLOCK;
        let n = keys.len();
        assert!(
            lanes.len() >= n && estimates.len() >= n,
            "batch slices shorter than keys"
        );
        let rows = self.rows;
        let mut j = 0;
        while j < n {
            let end = (j + BATCH_BLOCK).min(n);
            if lanes[j..end].iter().any(|l| l.len() != rows) {
                for jj in j..end {
                    let _ = self.fetch_remove(&keys[jj], &lanes[jj], estimates[jj]);
                }
                j = end;
                continue;
            }
            for row in 0..rows {
                for (idx, l) in lanes[j..end].iter().enumerate() {
                    let est = estimates[j + idx];
                    if est != 0 {
                        let col = l.col(row);
                        let cell = &mut self.cells[row * self.width + col];
                        *cell = cell.saturating_add_i64(-est);
                    }
                }
            }
            j = end;
        }
    }

    fn clear(&mut self) {
        self.cells.fill(C::zero());
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * C::BYTES
    }

    fn kind_name(&self) -> &'static str {
        "CMS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_key_exact() {
        let mut cms = CountMinSketch::<i64>::new(3, 64, 1);
        cms.add(&9u64, 25);
        cms.add(&9u64, -5);
        assert_eq!(cms.estimate(&9u64), 20);
    }

    #[test]
    fn positive_load_overestimates() {
        // The classical CM property: with only positive weights, the min
        // estimate is ≥ the true value.
        let mut cms = CountMinSketch::<i64>::new(2, 16, 2);
        cms.add(&0u64, 10);
        for k in 1u64..100 {
            cms.add(&k, 3);
        }
        assert!(cms.estimate(&0u64) >= 10);
    }

    #[test]
    fn negative_load_breaks_one_sidedness() {
        // With negative collision mass the min estimator can *under*estimate
        // — the weakness the paper's Fig. 12 exposes.
        let mut cms = CountMinSketch::<i64>::new(1, 2, 3);
        cms.add(&0u64, 10);
        // Find another key colliding with key 0 in the single row.
        let target = {
            let fam = qf_hash::HashFamily::new(1, 2, 3);
            let c0 = fam.column(0, &0u64);
            (1u64..100).find(|k| fam.column(0, k) == c0).unwrap()
        };
        cms.add(&target, -7);
        assert_eq!(cms.estimate(&0u64), 3);
    }

    #[test]
    fn remove_estimate_then_zero() {
        let mut cms = CountMinSketch::<i32>::new(4, 128, 4);
        cms.add(&77u64, 55);
        assert_eq!(cms.remove_estimate(&77u64), 55);
        assert_eq!(cms.estimate(&77u64), 0);
    }

    #[test]
    fn clear_and_memory() {
        let mut cms = CountMinSketch::<i8>::new(2, 256, 5);
        cms.add(&1u64, 3);
        cms.clear();
        assert_eq!(cms.estimate(&1u64), 0);
        assert_eq!(cms.memory_bytes(), 2 * 256);
        assert_eq!(cms.kind_name(), "CMS");
    }

    #[test]
    fn add_and_estimate_matches_separate_ops() {
        let mut fused = CountMinSketch::<i16>::new(4, 48, 31);
        let mut split = CountMinSketch::<i16>::new(4, 48, 31);
        for step in 0u64..5_000 {
            let key = step % 83;
            let delta = (step as i64 % 11) - 5;
            let lanes = fused.prepare_lanes(&key);
            let got = fused.add_and_estimate(&key, &lanes, delta);
            split.add(&key, delta);
            assert_eq!(got, split.estimate(&key), "step {step}");
            assert_eq!(fused.raw_cells(), split.raw_cells(), "step {step}");
        }
    }

    #[test]
    fn fetch_remove_matches_remove_estimate() {
        let mut fused = CountMinSketch::<i64>::new(3, 64, 32);
        let mut split = CountMinSketch::<i64>::new(3, 64, 32);
        for k in 0u64..120 {
            fused.add(&k, k as i64 % 17);
            split.add(&k, k as i64 % 17);
        }
        for k in 0u64..120 {
            let lanes = fused.prepare_lanes(&k);
            let est = fused.estimate(&k);
            assert_eq!(
                fused.fetch_remove(&k, &lanes, est),
                split.remove_estimate(&k)
            );
        }
        assert_eq!(fused.raw_cells(), split.raw_cells());
    }

    #[test]
    fn deep_sketch_falls_back_when_lanes_unavailable() {
        // Depth beyond qf_hash::MAX_LANES: prepare_lanes yields the empty
        // marker and the fused entry points serve from the key instead.
        let mut cms = CountMinSketch::<i64>::new(40, 8, 33);
        let lanes = cms.prepare_lanes(&9u64);
        assert!(lanes.is_empty());
        assert_eq!(cms.add_and_estimate(&9u64, &lanes, 6), 6);
        assert_eq!(cms.fetch_remove(&9u64, &lanes, 6), 6);
        assert_eq!(cms.estimate(&9u64), 0);
    }

    #[test]
    fn batch_ops_match_sequential_fused_path() {
        use crate::count_sketch::BATCH_BLOCK;
        for rows in [1, 3, 4, qf_hash::MAX_LANES, qf_hash::MAX_LANES + 2] {
            for len in [0, 1, BATCH_BLOCK - 1, BATCH_BLOCK, BATCH_BLOCK + 1, 300] {
                let mut batch = CountMinSketch::<i16>::new(rows, 48, 35);
                let mut seq = CountMinSketch::<i16>::new(rows, 48, 35);
                let keys: Vec<u64> = (0..len as u64).map(|k| k % 37).collect();
                let deltas: Vec<i64> = (0..len as i64).map(|i| (i % 9) - 4).collect();
                let lanes: Vec<RowLanes> = keys.iter().map(|k| batch.prepare_lanes(k)).collect();
                let mut got = vec![0i64; len];
                batch.add_and_estimate_batch(&keys, &lanes, &deltas, &mut got);
                for j in 0..len {
                    let want = seq.add_and_estimate(&keys[j], &lanes[j], deltas[j]);
                    assert_eq!(got[j], want, "rows {rows} len {len} item {j}");
                }
                assert_eq!(batch.raw_cells(), seq.raw_cells());
                let ests: Vec<i64> = got
                    .iter()
                    .enumerate()
                    .map(|(j, &e)| if j % 4 == 0 { e } else { 0 })
                    .collect();
                batch.fetch_remove_batch(&keys, &lanes, &ests);
                for j in 0..len {
                    let _ = seq.fetch_remove(&keys[j], &lanes[j], ests[j]);
                }
                assert_eq!(batch.raw_cells(), seq.raw_cells());
            }
        }
    }

    #[test]
    fn budget_constructor_fits() {
        let cms = CountMinSketch::<i32>::with_memory_budget(3, 12_000, 6);
        assert!(cms.memory_bytes() <= 12_000);
        assert_eq!(cms.rows(), 3);
        assert_eq!(cms.width(), 1000);
    }

    proptest::proptest! {
        #[test]
        fn prop_min_never_exceeds_any_row(adds in proptest::collection::vec((0u64..50, -20i64..20), 1..60)) {
            let mut cms = CountMinSketch::<i64>::new(3, 64, 7);
            for &(k, w) in &adds {
                cms.add(&k, w);
            }
            // The estimate is the min over rows: for a key that received
            // only non-negative total weight it can never exceed the
            // total weight inserted overall.
            let total_pos: i64 = adds.iter().map(|&(_, w)| w.max(0)).sum();
            for k in 0u64..50 {
                let est = cms.estimate(&k);
                proptest::prop_assert!(est <= total_pos, "est {} > total {}", est, total_pos);
            }
        }
    }
}
