//! Frequency/weight sketch substrate for the QuantileFilter reproduction.
//!
//! The paper's vague part is a Count sketch extended to *signed, weighted*
//! updates — a significant departure from textbook frequency sketches, since
//! Qweights are routinely negative (§I Technique 2). This crate provides:
//!
//! * [`counter`] — the [`SketchCounter`](counter::SketchCounter) trait over
//!   `i8 / i16 / i32 / i64` with **overflow-reversal protection**: the paper
//!   requires that "operations must prevent overflow reversals, ignoring any
//!   addition or subtraction that would cause it" (§III-B Technical Details),
//!   which lets 8/16-bit counters be used safely.
//! * [`rounding`] — unbiased stochastic rounding of fractional weights such
//!   as `δ/(1−δ)` into integer counter increments (§III-A Technical
//!   Details; variance `< 0.25`).
//! * [`count_sketch`] — the Count sketch (Charikar–Chen–Farach-Colton) with
//!   weighted ± updates, median estimation, deletion and reset.
//! * [`count_min`] — a Count-Min sketch variant with signed counters, kept
//!   as the alternative vague part evaluated in Fig. 12 (Choice 2).
//! * [`traits`] — the [`WeightSketch`](traits::WeightSketch) abstraction the
//!   QuantileFilter core is generic over.
//! * [`snapshot`] — the [`SketchState`](snapshot::SketchState) trait used by
//!   the crash-safety layer to persist and restore sketch state.

// Unsafe discipline (QF-L007's compiler-side sibling): every op in
// an `unsafe fn` sits in its own SAFETY-commented block.
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod count_min;
pub mod count_sketch;
pub mod counter;
pub mod invariants;
pub mod rounding;
pub mod simd;
pub mod snapshot;
pub mod space_saving;
pub(crate) mod telemetry;
pub(crate) mod trace;
pub mod traits;

pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;
pub use counter::SketchCounter;
pub use invariants::{CheckInvariants, InvariantViolation};
pub use rounding::StochasticRounder;
pub use snapshot::{SketchShape, SketchState, SKETCH_KIND_CMS, SKETCH_KIND_CS};
pub use space_saving::{SpaceSaving, SsEntry};
pub use traits::{prefetch_read, WeightSketch};
