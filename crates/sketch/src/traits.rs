//! The [`WeightSketch`] abstraction that the QuantileFilter core builds on.
//!
//! Both vague-part candidates — the Count sketch and the signed Count-Min
//! sketch — expose the same four operations: weighted add, point estimate,
//! estimate-removal (the reset used after a report), and full clear. The
//! core is generic over this trait so Fig. 12's CS-vs-CMS ablation is a
//! type parameter swap rather than a code fork.

use qf_hash::StreamKey;

/// A sketch of signed, weighted per-key sums.
pub trait WeightSketch {
    /// Add `delta` to the key's tracked sum.
    fn add<K: StreamKey + ?Sized>(&mut self, key: &K, delta: i64);

    /// Estimate the key's tracked sum.
    fn estimate<K: StreamKey + ?Sized>(&self, key: &K) -> i64;

    /// Remove the key's current estimate from the structure and return what
    /// was removed. This is the deletion operation of §III-A: "decrementing
    /// the mapped counter `C_i[h_i(x)]` by `S_i(x)·Q̂w(x)` in each row".
    fn remove_estimate<K: StreamKey + ?Sized>(&mut self, key: &K) -> i64;

    /// Reset every counter to zero (the periodic reset of §III-B).
    fn clear(&mut self);

    /// Bytes of counter storage (excluding seeds and struct overhead); this
    /// is the quantity the paper's memory axis measures.
    fn memory_bytes(&self) -> usize;

    /// Short implementation name for experiment logs ("CS", "CMS").
    fn kind_name(&self) -> &'static str;
}

/// Compute the median of a small slice in place (the `Median_{i=1}^d` of
/// Algorithm 1). For even lengths returns the lower-middle-rounded mean of
/// the two central elements, matching common Count-sketch practice.
#[inline]
pub fn median_in_place(values: &mut [i64]) -> i64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mid = values.len() / 2;
    let (_, m, _) = values.select_nth_unstable(mid);
    let hi = *m;
    if values.len() % 2 == 1 {
        hi
    } else {
        // The lower half is nonempty whenever the length is even (mid ≥ 1).
        // Average without overflow; truncates toward the lower value for
        // odd sums, keeping the estimator integral.
        match values[..mid].iter().copied().max() {
            Some(lo) => lo + (hi - lo) / 2,
            None => hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        let mut v = [5, 1, 9];
        assert_eq!(median_in_place(&mut v), 5);
    }

    #[test]
    fn median_even_averages_middles() {
        let mut v = [1, 3, 5, 11];
        assert_eq!(median_in_place(&mut v), 4);
    }

    #[test]
    fn median_single() {
        let mut v = [42];
        assert_eq!(median_in_place(&mut v), 42);
    }

    #[test]
    fn median_negative_values() {
        let mut v = [-10, -2, -30, -4, -6];
        assert_eq!(median_in_place(&mut v), -6);
    }

    #[test]
    fn median_no_overflow_at_extremes() {
        let mut v = [i64::MAX, i64::MAX - 2];
        assert_eq!(median_in_place(&mut v), i64::MAX - 1);
    }

    proptest::proptest! {
        #[test]
        fn prop_median_matches_sort(mut v in proptest::collection::vec(-1000i64..1000, 1..25)) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            let want = if sorted.len() % 2 == 1 {
                sorted[sorted.len() / 2]
            } else {
                let lo = sorted[sorted.len() / 2 - 1];
                let hi = sorted[sorted.len() / 2];
                lo + (hi - lo) / 2
            };
            proptest::prop_assert_eq!(median_in_place(&mut v), want);
        }
    }
}
