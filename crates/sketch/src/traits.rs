//! The [`WeightSketch`] abstraction that the QuantileFilter core builds on.
//!
//! Both vague-part candidates — the Count sketch and the signed Count-Min
//! sketch — expose the same four operations: weighted add, point estimate,
//! estimate-removal (the reset used after a report), and full clear. The
//! core is generic over this trait so Fig. 12's CS-vs-CMS ablation is a
//! type parameter swap rather than a code fork.

use qf_hash::{RowLanes, StreamKey};

/// A sketch of signed, weighted per-key sums.
pub trait WeightSketch {
    /// Add `delta` to the key's tracked sum.
    fn add<K: StreamKey + ?Sized>(&mut self, key: &K, delta: i64);

    /// Estimate the key's tracked sum.
    fn estimate<K: StreamKey + ?Sized>(&self, key: &K) -> i64;

    /// Remove the key's current estimate from the structure and return what
    /// was removed. This is the deletion operation of §III-A: "decrementing
    /// the mapped counter `C_i[h_i(x)]` by `S_i(x)·Q̂w(x)` in each row".
    fn remove_estimate<K: StreamKey + ?Sized>(&mut self, key: &K) -> i64;

    /// Precompute the key's per-row `(h_i, S_i)` coordinates so the one-pass
    /// entry points below can skip rehashing. Implementations that cannot
    /// precompute (or whose depth exceeds [`qf_hash::MAX_LANES`]) return
    /// [`RowLanes::empty`], and every lane-taking method falls back to the
    /// per-call key hashing of `add`/`estimate`/`remove_estimate`.
    #[inline]
    fn prepare_lanes<K: StreamKey + ?Sized>(&self, key: &K) -> RowLanes {
        let _ = key;
        RowLanes::empty()
    }

    /// Add `delta` and return the post-add estimate, touching each counter
    /// row exactly once. Equivalent to `add(key, delta)` followed by
    /// `estimate(key)` — the default does exactly that — but lane-aware
    /// implementations fuse the two into one pass with zero extra hashing.
    #[inline]
    fn add_and_estimate<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        lanes: &RowLanes,
        delta: i64,
    ) -> i64 {
        let _ = lanes;
        self.add(key, delta);
        self.estimate(key)
    }

    /// Remove a *known* estimate from the structure and return it. The
    /// caller passes the estimate it already holds (from
    /// [`WeightSketch::add_and_estimate`]); lane-aware implementations
    /// subtract it directly instead of re-deriving it with a fresh round of
    /// hashing, guaranteeing the removed value is the very estimate the
    /// caller acted on. The default ignores `estimate` and delegates to
    /// [`WeightSketch::remove_estimate`], which recomputes the same value.
    #[inline]
    fn fetch_remove<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        lanes: &RowLanes,
        estimate: i64,
    ) -> i64 {
        let _ = (lanes, estimate);
        self.remove_estimate(key)
    }

    /// Column-wise batch form of [`WeightSketch::prepare_lanes`]: capture
    /// lanes for a whole chunk of keys into `out`, in item order. The
    /// default loops the scalar entry point; lane-aware implementations
    /// restructure the fill row-major over the hash family so each row's
    /// seed stays register-resident across the chunk. Bit-identical to the
    /// per-key calls.
    ///
    /// # Panics
    /// Implementations may panic when `out` is shorter than `keys`.
    #[inline]
    fn fill_lanes<K: StreamKey>(&self, keys: &[K], out: &mut [RowLanes]) {
        for (slot, key) in out.iter_mut().zip(keys) {
            *slot = self.prepare_lanes(key);
        }
    }

    /// Hint-prefetch the counter cells addressed by `lanes` ahead of a
    /// lane-taking operation — used by chunked ingest pipelines that capture
    /// a whole chunk's lanes before applying it. A pure hint with no
    /// architectural effect; the default does nothing.
    #[inline]
    fn prefetch_lanes(&self, lanes: &RowLanes) {
        let _ = lanes;
    }

    /// Column-wise batch form of [`WeightSketch::add_and_estimate`]: apply
    /// `(keys[j], lanes[j], deltas[j])` for every `j` *in item order* and
    /// write the post-add estimates into `out[j]`. The default loops the
    /// scalar entry point; lane-aware implementations restructure the loop
    /// row-major — one pass of bumps per counter row fed by one memory
    /// stream — which is bit-identical because each row's cells are touched
    /// only by that row's bumps, in the same item order.
    ///
    /// # Panics
    /// Implementations may panic when `lanes`, `deltas` or `out` are shorter
    /// than `keys`.
    #[inline]
    fn add_and_estimate_batch<K: StreamKey>(
        &mut self,
        keys: &[K],
        lanes: &[RowLanes],
        deltas: &[i64],
        out: &mut [i64],
    ) {
        for j in 0..keys.len() {
            out[j] = self.add_and_estimate(&keys[j], &lanes[j], deltas[j]);
        }
    }

    /// Column-wise batch form of [`WeightSketch::fetch_remove`]: remove the
    /// known `estimates[j]` for every `j` in item order. Same row-major
    /// restructuring and bit-identity argument as
    /// [`WeightSketch::add_and_estimate_batch`].
    ///
    /// # Panics
    /// Implementations may panic when `lanes` or `estimates` are shorter
    /// than `keys`.
    #[inline]
    fn fetch_remove_batch<K: StreamKey>(
        &mut self,
        keys: &[K],
        lanes: &[RowLanes],
        estimates: &[i64],
    ) {
        for j in 0..keys.len() {
            let _ = self.fetch_remove(&keys[j], &lanes[j], estimates[j]);
        }
    }

    /// Reset every counter to zero (the periodic reset of §III-B).
    fn clear(&mut self);

    /// Bytes of counter storage (excluding seeds and struct overhead); this
    /// is the quantity the paper's memory axis measures.
    fn memory_bytes(&self) -> usize;

    /// Short implementation name for experiment logs ("CS", "CMS").
    fn kind_name(&self) -> &'static str;
}

/// Best-effort prefetch of the cache line containing `p`. A pure hint: it
/// performs no architectural memory access and never faults, so any address
/// is acceptable. Compiles to nothing off x86_64.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint instruction with no observable effect on
    // program state; it is defined for arbitrary addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Compute the median of a small slice in place (the `Median_{i=1}^d` of
/// Algorithm 1). For even lengths returns the lower-middle-rounded mean of
/// the two central elements, matching common Count-sketch practice.
#[inline]
pub fn median_in_place(values: &mut [i64]) -> i64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mid = values.len() / 2;
    let (_, m, _) = values.select_nth_unstable(mid);
    let hi = *m;
    if values.len() % 2 == 1 {
        hi
    } else {
        // The lower half is nonempty whenever the length is even (mid ≥ 1).
        // Average without overflow; truncates toward the lower value for
        // odd sums, keeping the estimator integral.
        match values[..mid].iter().copied().max() {
            Some(lo) => lo + (hi - lo) / 2,
            None => hi,
        }
    }
}

/// Median of exactly three values — the `d = 3` default depth of the
/// paper's configurations — as straight-line min/max ops, with no buffer
/// or selection machinery. Bit-identical to [`median_in_place`] on a
/// 3-element slice (both return the middle value).
#[inline(always)]
pub fn median3(a: i64, b: i64, c: i64) -> i64 {
    a.max(b).min(a.min(b).max(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        let mut v = [5, 1, 9];
        assert_eq!(median_in_place(&mut v), 5);
    }

    #[test]
    fn median_even_averages_middles() {
        let mut v = [1, 3, 5, 11];
        assert_eq!(median_in_place(&mut v), 4);
    }

    #[test]
    fn median_single() {
        let mut v = [42];
        assert_eq!(median_in_place(&mut v), 42);
    }

    #[test]
    fn median_negative_values() {
        let mut v = [-10, -2, -30, -4, -6];
        assert_eq!(median_in_place(&mut v), -6);
    }

    #[test]
    fn median_no_overflow_at_extremes() {
        let mut v = [i64::MAX, i64::MAX - 2];
        assert_eq!(median_in_place(&mut v), i64::MAX - 1);
    }

    #[test]
    fn median3_picks_middle() {
        assert_eq!(median3(5, 1, 9), 5);
        assert_eq!(median3(-3, -3, 7), -3);
        assert_eq!(median3(0, 0, 0), 0);
        assert_eq!(median3(i64::MAX, i64::MIN, 0), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_median3_matches_general(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
            let mut v = [a, b, c];
            proptest::prop_assert_eq!(median3(a, b, c), median_in_place(&mut v));
        }

        #[test]
        fn prop_median_matches_sort(mut v in proptest::collection::vec(-1000i64..1000, 1..25)) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            let want = if sorted.len() % 2 == 1 {
                sorted[sorted.len() / 2]
            } else {
                let lo = sorted[sorted.len() / 2 - 1];
                let hi = sorted[sorted.len() / 2];
                lo + (hi - lo) / 2
            };
            proptest::prop_assert_eq!(median_in_place(&mut v), want);
        }
    }
}
