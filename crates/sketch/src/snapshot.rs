//! Snapshot support for the sketch structures: a common trait that lets
//! the QuantileFilter core persist and restore any vague-part sketch
//! without knowing its concrete layout.
//!
//! The split between [`SketchShape`] (structural configuration: kind tag,
//! counter width, dimensions) and the cell/seed *state* mirrors the
//! snapshot wire format of qf-core: shapes live in the config section that
//! is covered by the config digest, state lives in the state section. Both
//! are integrity-checked by the whole-file checksum.

use qf_hash::wire::{ByteReader, ByteWriter, WireError};

/// Wire tag for [`crate::CountSketch`].
pub const SKETCH_KIND_CS: u8 = 1;
/// Wire tag for [`crate::CountMinSketch`].
pub const SKETCH_KIND_CMS: u8 = 2;

/// Upper bound on restored cell counts (2^28 cells ≈ 256 Mi counters).
/// A corrupted dimension field must not be able to trigger a huge
/// allocation before the checksum would have caught it.
pub const MAX_SNAPSHOT_CELLS: u64 = 1 << 28;

/// Structural configuration of a sketch, as stored in a snapshot's config
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchShape {
    /// Sketch kind tag ([`SKETCH_KIND_CS`] / [`SKETCH_KIND_CMS`]).
    pub kind: u8,
    /// Bytes per counter cell (1, 2, 4 or 8).
    pub counter_bytes: u8,
    /// Number of rows `d`.
    pub rows: u64,
    /// Number of columns `w`.
    pub width: u64,
}

impl SketchShape {
    /// Serialize into a config section.
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_u8(self.kind);
        w.put_u8(self.counter_bytes);
        w.put_u64(self.rows);
        w.put_u64(self.width);
    }

    /// Deserialize from a config section.
    pub fn read(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            kind: r.get_u8()?,
            counter_bytes: r.get_u8()?,
            rows: r.get_u64()?,
            width: r.get_u64()?,
        })
    }

    /// Validate dimensions against the allocation bound, returning
    /// `(rows, width)` as `usize`.
    pub fn checked_dims(&self) -> Result<(usize, usize), WireError> {
        if self.rows == 0 || self.width == 0 {
            return Err(WireError::Invalid("sketch dimensions must be positive"));
        }
        let cells = self
            .rows
            .checked_mul(self.width)
            .ok_or(WireError::Invalid("sketch dimensions overflow"))?;
        if cells > MAX_SNAPSHOT_CELLS {
            return Err(WireError::Invalid("sketch dimensions out of range"));
        }
        Ok((self.rows as usize, self.width as usize))
    }
}

/// A sketch that can be persisted into and restored from a snapshot.
pub trait SketchState: Sized {
    /// The structural configuration to record in the config section.
    fn shape(&self) -> SketchShape;

    /// Serialize the mutable state (hash seeds + counter cells) into the
    /// state section.
    fn write_state(&self, w: &mut ByteWriter);

    /// Rebuild the sketch from a previously recorded shape and state.
    ///
    /// Must never panic: malformed input surfaces as a [`WireError`].
    fn from_state(shape: SketchShape, r: &mut ByteReader<'_>) -> Result<Self, WireError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountMinSketch, CountSketch, WeightSketch};

    fn roundtrip<S: SketchState>(sketch: &S) -> S {
        let shape = sketch.shape();
        let mut w = ByteWriter::new();
        sketch.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let restored = S::from_state(shape, &mut r).expect("roundtrip");
        assert!(r.is_empty(), "trailing state bytes");
        restored
    }

    #[test]
    fn count_sketch_roundtrips_estimates() {
        let mut cs = CountSketch::<i16>::new(3, 128, 42);
        for k in 0u64..500 {
            cs.add(&k, (k as i64 % 17) - 8);
        }
        let restored = roundtrip(&cs);
        for k in 0u64..500 {
            assert_eq!(restored.estimate(&k), cs.estimate(&k));
        }
        assert_eq!(restored.raw_cells(), cs.raw_cells());
    }

    #[test]
    fn count_min_roundtrips_estimates() {
        let mut cms = CountMinSketch::<i32>::new(4, 64, 7);
        for k in 0u64..200 {
            cms.add(&k, k as i64 % 9);
        }
        let restored = roundtrip(&cms);
        for k in 0u64..200 {
            assert_eq!(restored.estimate(&k), cms.estimate(&k));
        }
    }

    #[test]
    fn kind_mismatch_rejected() {
        let cs = CountSketch::<i8>::new(2, 16, 1);
        let mut shape = cs.shape();
        shape.kind = SKETCH_KIND_CMS;
        let mut w = ByteWriter::new();
        cs.write_state(&mut w);
        let bytes = w.into_bytes();
        let got = CountSketch::<i8>::from_state(shape, &mut ByteReader::new(&bytes));
        assert!(matches!(got, Err(WireError::Invalid(_))));
    }

    #[test]
    fn counter_width_mismatch_rejected() {
        let cs = CountSketch::<i8>::new(2, 16, 1);
        let mut shape = cs.shape();
        shape.counter_bytes = 4;
        let mut w = ByteWriter::new();
        cs.write_state(&mut w);
        let bytes = w.into_bytes();
        let got = CountSketch::<i8>::from_state(shape, &mut ByteReader::new(&bytes));
        assert!(matches!(got, Err(WireError::Invalid(_))));
    }

    #[test]
    fn adversarial_dims_do_not_allocate() {
        let shape = SketchShape {
            kind: SKETCH_KIND_CS,
            counter_bytes: 1,
            rows: u64::MAX,
            width: u64::MAX,
        };
        let got = CountSketch::<i8>::from_state(shape, &mut ByteReader::new(&[]));
        assert!(matches!(got, Err(WireError::Invalid(_))));
    }

    #[test]
    fn truncated_state_rejected() {
        let cs = CountSketch::<i32>::new(3, 32, 9);
        let mut w = ByteWriter::new();
        cs.write_state(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 1, 8, bytes.len() - 1] {
            let got =
                CountSketch::<i32>::from_state(cs.shape(), &mut ByteReader::new(&bytes[..cut]));
            assert_eq!(got.unwrap_err(), WireError::Truncated, "cut {cut}");
        }
    }
}
