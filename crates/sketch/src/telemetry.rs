//! Feature-gated telemetry hooks for sketch-level events.
//!
//! With the `telemetry` cargo feature **off** (the default), every
//! function here is an empty `#[inline(always)]` body and each call site
//! compiles to nothing — the hot paths are bit-identical to the
//! uninstrumented crate. With the feature **on**, events are driven into
//! the process-wide [`qf_telemetry::global`] registry through a
//! [`GlobalRecorder`](qf_telemetry::GlobalRecorder) (one uncontended
//! relaxed `fetch_add` per event).
//!
//! Two event families originate in this crate:
//!
//! * **Counter saturation** — a sketch cell clamped at its numeric bound
//!   instead of absorbing the full delta (`§III-B`'s overflow-reversal
//!   guard actually engaging). A rising rate means the configured counter
//!   width is too narrow for the stream's mass.
//! * **Stochastic rounding** — every fractional weight rounded by
//!   [`StochasticRounder`](crate::StochasticRounder), the up-roundings,
//!   and the cumulative signed drift (in millionths of one Qweight unit)
//!   between what was added and the true fractional weight. Drift hovering
//!   near zero is the live confirmation of the rounder's unbiasedness.

#[cfg(feature = "telemetry")]
mod hooks {
    use qf_telemetry::{CounterId, GaugeId, GlobalRecorder, Recorder};

    /// A cell clamped at its numeric bound instead of absorbing `delta`.
    #[inline(always)]
    pub fn saturation_event() {
        GlobalRecorder.count(CounterId::SketchSaturations, 1);
    }

    /// A fractional weight went through the stochastic rounder; `up` says
    /// whether it rounded to `⌊w⌋ + 1`, and `frac` is `w − ⌊w⌋`.
    #[inline(always)]
    pub fn rounding_event(up: bool, frac: f64) {
        GlobalRecorder.count(CounterId::RoundingFractional, 1);
        let drift = if up {
            GlobalRecorder.count(CounterId::RoundingUp, 1);
            (1.0 - frac) * 1e6
        } else {
            -frac * 1e6
        };
        GlobalRecorder.gauge_add(GaugeId::RoundingDriftMicros, drift as i64);
    }
}

#[cfg(not(feature = "telemetry"))]
mod hooks {
    // The saturation call sites are gated on any(telemetry, trace) — this
    // no-op is only referenced from trace-only builds.
    /// No-op: telemetry is compiled out.
    #[allow(dead_code)]
    #[inline(always)]
    pub fn saturation_event() {}

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn rounding_event(_up: bool, _frac: f64) {}
}

#[allow(unused_imports)]
pub(crate) use hooks::{rounding_event, saturation_event};
