//! The Count sketch (Charikar, Chen & Farach-Colton 2002) with signed,
//! weighted updates — the paper's vague part (§II-C, §III-A).
//!
//! Layout: `d` rows × `w` columns of a [`SketchCounter`] cell type. On
//! update of key `x` with weight `Δ`, every row adds `S_i(x)·Δ` to
//! `C_i[h_i(x)]`; on query, the estimate is the median over rows of
//! `S_i(x)·C_i[h_i(x)]` (Algorithm 1). The sign hashes make collisions
//! cancel in expectation, which is what keeps narrow counters from
//! overflowing even under heavy key loads (§III-B Technical Details) and
//! makes the estimator unbiased (Theorem 1).

use crate::counter::SketchCounter;
use crate::snapshot::{SketchShape, SketchState, SKETCH_KIND_CS};
use crate::traits::{median_in_place, WeightSketch};
use qf_hash::wire::{ByteReader, ByteWriter, WireError};
use qf_hash::{HashFamily, RowLanes, StreamKey};

/// Maximum supported depth. Figure 9 sweeps `d` up to 20; 32 leaves room.
pub const MAX_DEPTH: usize = 32;

/// Items per stack block in the column-wise batch entry points. Sized so the
/// per-row value matrix (`MAX_LANES × BATCH_BLOCK` i64s) stays a small,
/// cache-resident stack array.
pub const BATCH_BLOCK: usize = 32;

/// A Count sketch over cells of type `C`.
#[derive(Debug, Clone)]
pub struct CountSketch<C: SketchCounter = i32> {
    cells: Vec<C>,
    family: HashFamily,
    rows: usize,
    width: usize,
}

impl<C: SketchCounter> CountSketch<C> {
    /// Create a sketch with `rows` arrays of `width` counters, seeded.
    ///
    /// # Panics
    /// Panics if `rows == 0`, `rows > MAX_DEPTH`, or `width == 0`.
    pub fn new(rows: usize, width: usize, seed: u64) -> Self {
        assert!(
            rows > 0 && rows <= MAX_DEPTH,
            "rows must be in 1..={MAX_DEPTH}"
        );
        assert!(width > 0, "width must be positive");
        Self {
            cells: vec![C::zero(); rows * width],
            family: HashFamily::new(rows, width, seed),
            rows,
            width,
        }
    }

    /// Build the sketch that fits a byte budget at the given depth, with at
    /// least one column per row.
    pub fn with_memory_budget(rows: usize, bytes: usize, seed: u64) -> Self {
        let width = (bytes / (rows * C::BYTES)).max(1);
        Self::new(rows, width, seed)
    }

    /// Number of rows `d`.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `w` per row.
    #[inline(always)]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline(always)]
    fn cell(&self, row: usize, col: usize) -> C {
        self.cells[row * self.width + col]
    }

    #[inline(always)]
    fn cell_mut(&mut self, row: usize, col: usize) -> &mut C {
        &mut self.cells[row * self.width + col]
    }

    /// Saturating-add `w` into one cell and return the post-add value —
    /// the shared kernel of the fused one-pass entry points.
    #[inline(always)]
    fn bump_cell(&mut self, row: usize, col: usize, w: i64) -> i64 {
        let cell = &mut self.cells[row * self.width + col];
        #[cfg(feature = "telemetry")]
        let before = cell.to_i64();
        *cell = cell.saturating_add_i64(w);
        // A cell that clamped instead of absorbing the full delta is a
        // saturation event (§III-B's overflow-reversal guard engaging).
        // Detection is telemetry's per-insert cost (PR 2's ≤2% bar); the
        // trace emit rides inside the branch telemetry already takes, so
        // the `trace` feature alone adds nothing to this loop.
        #[cfg(feature = "telemetry")]
        if before.checked_add(w) != Some(cell.to_i64()) {
            crate::telemetry::saturation_event();
            crate::trace::saturation(row, col);
        }
        cell.to_i64()
    }

    /// Direct read of the raw counter grid (tests and diagnostics).
    pub fn raw_cells(&self) -> &[C] {
        &self.cells
    }

    /// Sum of absolute counter values — a cheap saturation diagnostic used
    /// by the experiment harness.
    pub fn l1_mass(&self) -> u64 {
        self.cells.iter().map(|c| c.to_i64().unsigned_abs()).sum()
    }

    /// Fraction of cells pinned at the counter type's min/max bound.
    pub fn saturation_ratio(&self) -> f64 {
        let max = C::zero().saturating_add_i64(i64::MAX).to_i64();
        let min = C::zero().saturating_add_i64(i64::MIN).to_i64();
        let saturated = self
            .cells
            .iter()
            .filter(|c| {
                let v = c.to_i64();
                v == max || v == min
            })
            .count();
        saturated as f64 / self.cells.len() as f64
    }
}

impl<C: SketchCounter> crate::invariants::CheckInvariants for CountSketch<C> {
    fn check_invariants(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        const S: &str = "CountSketch";
        if self.rows == 0 || self.rows > MAX_DEPTH {
            return Err(V::new(
                S,
                format!("rows {} outside 1..={MAX_DEPTH}", self.rows),
            ));
        }
        if self.width == 0 {
            return Err(V::new(S, "width is zero"));
        }
        if self.cells.len() != self.rows * self.width {
            return Err(V::new(
                S,
                format!(
                    "cell grid holds {} cells for {}x{} dims",
                    self.cells.len(),
                    self.rows,
                    self.width
                ),
            ));
        }
        if self.family.rows() != self.rows {
            return Err(V::new(
                S,
                format!(
                    "hash family has {} rows, grid has {}",
                    self.family.rows(),
                    self.rows
                ),
            ));
        }
        if self.family.width() != self.width {
            return Err(V::new(
                S,
                format!(
                    "hash family maps to width {}, grid has {}",
                    self.family.width(),
                    self.width
                ),
            ));
        }
        if self.family.seeds().len() != self.rows {
            return Err(V::new(
                S,
                format!(
                    "{} row seeds for {} rows",
                    self.family.seeds().len(),
                    self.rows
                ),
            ));
        }
        Ok(())
    }
}

impl<C: SketchCounter> SketchState for CountSketch<C> {
    fn shape(&self) -> SketchShape {
        SketchShape {
            kind: SKETCH_KIND_CS,
            counter_bytes: C::BYTES as u8,
            rows: self.rows as u64,
            width: self.width as u64,
        }
    }

    fn write_state(&self, w: &mut ByteWriter) {
        for &seed in self.family.seeds() {
            w.put_u64(seed);
        }
        for cell in &self.cells {
            w.put_int_narrow(cell.to_i64(), C::BYTES);
        }
    }

    fn from_state(shape: SketchShape, r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        if shape.kind != SKETCH_KIND_CS {
            return Err(WireError::Invalid("sketch kind mismatch (want CS)"));
        }
        if usize::from(shape.counter_bytes) != C::BYTES {
            return Err(WireError::Invalid("sketch counter width mismatch"));
        }
        let (rows, width) = shape.checked_dims()?;
        if rows > MAX_DEPTH {
            return Err(WireError::Invalid("sketch depth out of range"));
        }
        let mut seeds = Vec::with_capacity(rows);
        for _ in 0..rows {
            seeds.push(r.get_u64()?);
        }
        let family = HashFamily::from_seeds(seeds, width)
            .ok_or(WireError::Invalid("degenerate hash family"))?;
        let mut cells = Vec::with_capacity(rows * width);
        for _ in 0..rows * width {
            // The narrow read yields values already within C's range, so
            // the saturating conversion is exact.
            cells.push(C::zero().saturating_add_i64(r.get_int_narrow(C::BYTES)?));
        }
        Ok(Self {
            cells,
            family,
            rows,
            width,
        })
    }
}

impl<C: SketchCounter> WeightSketch for CountSketch<C> {
    #[inline]
    fn add<K: StreamKey + ?Sized>(&mut self, key: &K, delta: i64) {
        for row in 0..self.rows {
            let (col, sign) = self.family.column_and_sign(row, key);
            let cell = self.cell_mut(row, col);
            let w = sign * delta;
            #[cfg(feature = "telemetry")]
            let before = cell.to_i64();
            *cell = cell.saturating_add_i64(w);
            // A cell that clamped instead of absorbing the full delta is a
            // saturation event (§III-B's overflow-reversal guard engaging).
            #[cfg(feature = "telemetry")]
            if before.checked_add(w) != Some(cell.to_i64()) {
                crate::telemetry::saturation_event();
                crate::trace::saturation(row, col);
            }
        }
    }

    #[inline]
    fn estimate<K: StreamKey + ?Sized>(&self, key: &K) -> i64 {
        let mut buf = [0i64; MAX_DEPTH];
        for (row, slot) in buf.iter_mut().enumerate().take(self.rows) {
            let (col, sign) = self.family.column_and_sign(row, key);
            *slot = sign * self.cell(row, col).to_i64();
        }
        median_in_place(&mut buf[..self.rows])
    }

    #[inline]
    fn remove_estimate<K: StreamKey + ?Sized>(&mut self, key: &K) -> i64 {
        let est = self.estimate(key);
        if est != 0 {
            for row in 0..self.rows {
                let (col, sign) = self.family.column_and_sign(row, key);
                let cell = self.cell_mut(row, col);
                *cell = cell.saturating_add_i64(-sign * est);
            }
        }
        est
    }

    #[inline]
    fn prepare_lanes<K: StreamKey + ?Sized>(&self, key: &K) -> RowLanes {
        self.family.lanes(key)
    }

    #[inline]
    fn add_and_estimate<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        lanes: &RowLanes,
        delta: i64,
    ) -> i64 {
        if lanes.len() != self.rows {
            self.add(key, delta);
            return self.estimate(key);
        }
        // One pass: each row's cell is bumped and then read back. Rows live
        // in disjoint slices of the grid, and within a row the read hits the
        // very cell just written, so the result is bit-identical to a full
        // `add` followed by a full `estimate` — at d row hashes saved.
        if self.rows == 3 {
            // The paper-default depth stays entirely in registers: no
            // median buffer to zero, no selection call — median3 returns
            // the same middle value median_in_place would.
            let (s0, s1, s2) = (lanes.sign(0), lanes.sign(1), lanes.sign(2));
            let e0 = s0 * self.bump_cell(0, lanes.col(0), s0 * delta);
            let e1 = s1 * self.bump_cell(1, lanes.col(1), s1 * delta);
            let e2 = s2 * self.bump_cell(2, lanes.col(2), s2 * delta);
            return crate::traits::median3(e0, e1, e2);
        }
        // Lanes exist, so rows ≤ MAX_LANES — the buffer is sized for the
        // hot path's depth ceiling, not the full MAX_DEPTH.
        let mut buf = [0i64; qf_hash::MAX_LANES];
        for (row, slot) in buf.iter_mut().enumerate().take(self.rows) {
            let (col, sign) = (lanes.col(row), lanes.sign(row));
            *slot = sign * self.bump_cell(row, col, sign * delta);
        }
        median_in_place(&mut buf[..self.rows])
    }

    #[inline]
    fn fetch_remove<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        lanes: &RowLanes,
        estimate: i64,
    ) -> i64 {
        if lanes.len() != self.rows {
            return self.remove_estimate(key);
        }
        if estimate != 0 {
            if self.rows == 3 {
                // Constant trip count unrolls; same stores as the loop below.
                for row in 0..3 {
                    let (col, sign) = (lanes.col(row), lanes.sign(row));
                    let cell = self.cell_mut(row, col);
                    *cell = cell.saturating_add_i64(-sign * estimate);
                }
            } else {
                for row in 0..self.rows {
                    let (col, sign) = (lanes.col(row), lanes.sign(row));
                    let cell = self.cell_mut(row, col);
                    *cell = cell.saturating_add_i64(-sign * estimate);
                }
            }
        }
        estimate
    }

    fn fill_lanes<K: StreamKey>(&self, keys: &[K], out: &mut [RowLanes]) {
        let n = keys.len();
        assert!(out.len() >= n, "lane buffer shorter than keys");
        let mut j = 0;
        while j < n {
            let end = (j + BATCH_BLOCK).min(n);
            // Fixed-width keys factor through a seed-independent prehash
            // digest; gathering a block of digests first lets the family's
            // row-major fill keep each row seed register-resident. A key
            // without a digest sends its block down the per-key path —
            // same values either way.
            let mut pre = [0u64; BATCH_BLOCK];
            let mut all_prehashed = true;
            for (slot, key) in pre.iter_mut().zip(&keys[j..end]) {
                match key.prehash() {
                    Some(p) => *slot = p,
                    None => {
                        all_prehashed = false;
                        break;
                    }
                }
            }
            if all_prehashed {
                self.family
                    .fill_lanes_prehashed(&pre[..end - j], &mut out[j..end]);
            } else {
                for (slot, key) in out[j..end].iter_mut().zip(&keys[j..end]) {
                    *slot = self.family.lanes(key);
                }
            }
            j = end;
        }
    }

    #[inline]
    fn prefetch_lanes(&self, lanes: &RowLanes) {
        if lanes.len() != self.rows {
            return;
        }
        for row in 0..self.rows {
            let idx = row * self.width + lanes.col(row);
            if let Some(cell) = self.cells.get(idx) {
                crate::traits::prefetch_read(cell);
            }
        }
    }

    fn add_and_estimate_batch<K: StreamKey>(
        &mut self,
        keys: &[K],
        lanes: &[RowLanes],
        deltas: &[i64],
        out: &mut [i64],
    ) {
        let n = keys.len();
        assert!(
            lanes.len() >= n && deltas.len() >= n && out.len() >= n,
            "batch slices shorter than keys"
        );
        let rows = self.rows;
        let mut j = 0;
        while j < n {
            let end = (j + BATCH_BLOCK).min(n);
            if lanes[j..end].iter().any(|l| l.len() != rows) {
                // Any lane-less item (deep family, unhashable key) sends the
                // whole block down the scalar path — same item order, so
                // still bit-identical, just unvectorized.
                for jj in j..end {
                    out[jj] = self.add_and_estimate(&keys[jj], &lanes[jj], deltas[jj]);
                }
                j = end;
                continue;
            }
            // Column-wise core: one pass of bumps per counter row, streaming
            // the block's lanes in item order. Rows occupy disjoint grid
            // slices and within a row the item order matches the sequential
            // path, so every cell sees the identical op sequence and every
            // post-add read returns the identical value.
            let mut vals = [[0i64; BATCH_BLOCK]; qf_hash::MAX_LANES];
            for (row, row_vals) in vals.iter_mut().enumerate().take(rows) {
                for (idx, l) in lanes[j..end].iter().enumerate() {
                    let sign = l.sign(row);
                    row_vals[idx] = sign * self.bump_cell(row, l.col(row), sign * deltas[j + idx]);
                }
            }
            if rows == 3 {
                for idx in 0..end - j {
                    out[j + idx] = crate::traits::median3(vals[0][idx], vals[1][idx], vals[2][idx]);
                }
            } else {
                let mut buf = [0i64; qf_hash::MAX_LANES];
                for idx in 0..end - j {
                    for (row, slot) in buf.iter_mut().enumerate().take(rows) {
                        *slot = vals[row][idx];
                    }
                    out[j + idx] = median_in_place(&mut buf[..rows]);
                }
            }
            j = end;
        }
    }

    fn fetch_remove_batch<K: StreamKey>(
        &mut self,
        keys: &[K],
        lanes: &[RowLanes],
        estimates: &[i64],
    ) {
        let n = keys.len();
        assert!(
            lanes.len() >= n && estimates.len() >= n,
            "batch slices shorter than keys"
        );
        let rows = self.rows;
        let mut j = 0;
        while j < n {
            let end = (j + BATCH_BLOCK).min(n);
            if lanes[j..end].iter().any(|l| l.len() != rows) {
                for jj in j..end {
                    let _ = self.fetch_remove(&keys[jj], &lanes[jj], estimates[jj]);
                }
                j = end;
                continue;
            }
            for row in 0..rows {
                for (idx, l) in lanes[j..end].iter().enumerate() {
                    let est = estimates[j + idx];
                    if est != 0 {
                        let sign = l.sign(row);
                        let cell = self.cell_mut(row, l.col(row));
                        *cell = cell.saturating_add_i64(-sign * est);
                    }
                }
            }
            j = end;
        }
    }

    fn clear(&mut self) {
        self.cells.fill(C::zero());
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * C::BYTES
    }

    fn kind_name(&self) -> &'static str {
        "CS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_exact_when_alone() {
        let mut cs = CountSketch::<i64>::new(3, 64, 1);
        cs.add(&7u64, 10);
        cs.add(&7u64, -3);
        assert_eq!(cs.estimate(&7u64), 7);
    }

    #[test]
    fn absent_key_estimates_zero_on_empty_sketch() {
        let cs = CountSketch::<i32>::new(3, 64, 2);
        assert_eq!(cs.estimate(&123u64), 0);
    }

    #[test]
    fn remove_estimate_zeroes_lone_key() {
        let mut cs = CountSketch::<i64>::new(5, 128, 3);
        cs.add(&42u64, 99);
        let removed = cs.remove_estimate(&42u64);
        assert_eq!(removed, 99);
        assert_eq!(cs.estimate(&42u64), 0);
        assert_eq!(cs.l1_mass(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cs = CountSketch::<i16>::new(3, 32, 4);
        for k in 0u64..100 {
            cs.add(&k, 5);
        }
        cs.clear();
        assert_eq!(cs.l1_mass(), 0);
    }

    #[test]
    fn memory_accounting() {
        let cs = CountSketch::<i16>::new(3, 1000, 5);
        assert_eq!(cs.memory_bytes(), 3 * 1000 * 2);
        let cs = CountSketch::<i8>::with_memory_budget(4, 4096, 6);
        assert!(cs.memory_bytes() <= 4096);
        assert!(cs.memory_bytes() >= 4096 - 4); // within one column per row
    }

    #[test]
    fn unbiased_over_random_collisions() {
        // Theorem 1 (unbiasedness): average the estimate of one key across
        // many independently-seeded sketches under heavy collision load.
        let truth = 50i64;
        let trials = 300;
        let mut sum = 0i64;
        for seed in 0..trials {
            let mut cs = CountSketch::<i64>::new(1, 16, seed);
            cs.add(&0u64, truth);
            for k in 1u64..200 {
                cs.add(&k, 7);
            }
            sum += cs.estimate(&0u64);
        }
        let mean = sum as f64 / trials as f64;
        // Collision noise per trial is large but the mean converges to 50.
        assert!(
            (mean - truth as f64).abs() < 12.0,
            "mean {mean} should approximate {truth}"
        );
    }

    #[test]
    fn median_suppresses_collision_outliers() {
        // With d = 5 rows, one collided row cannot corrupt the median.
        let mut cs = CountSketch::<i64>::new(5, 4096, 7);
        cs.add(&1u64, 100);
        for k in 2u64..50 {
            cs.add(&k, 1000);
        }
        let est = cs.estimate(&1u64);
        assert!((est - 100).abs() < 1000, "estimate {est}");
    }

    #[test]
    fn narrow_counters_saturate_but_do_not_wrap() {
        let mut cs = CountSketch::<i8>::new(1, 1, 8);
        // Everything lands in the single cell; drive it far past i8::MAX.
        // Sign of key 0 under this seed is fixed; push in its positive
        // direction and ensure the estimate is pinned, never negative flip.
        let sign_probe = {
            cs.add(&0u64, 1);
            let s = cs.estimate(&0u64).signum();
            cs.clear();
            s
        };
        for _ in 0..1000 {
            cs.add(&0u64, sign_probe);
        }
        let est = cs.estimate(&0u64);
        assert_eq!(est, sign_probe * 127);
        assert!(cs.saturation_ratio() > 0.99);
    }

    #[test]
    fn deletion_matches_algorithm_one() {
        // After report+delete, re-inserting accumulates from zero again.
        let mut cs = CountSketch::<i64>::new(3, 256, 9);
        cs.add(&5u64, 60);
        assert_eq!(cs.remove_estimate(&5u64), 60);
        cs.add(&5u64, 4);
        assert_eq!(cs.estimate(&5u64), 4);
    }

    #[test]
    #[should_panic(expected = "rows must be")]
    fn zero_rows_rejected() {
        let _ = CountSketch::<i32>::new(0, 8, 0);
    }

    #[test]
    fn add_and_estimate_matches_separate_ops() {
        // The fused one-pass update must be bit-identical to add + estimate
        // on an identically-seeded twin, across a colliding workload.
        let mut fused = CountSketch::<i8>::new(3, 32, 21);
        let mut split = CountSketch::<i8>::new(3, 32, 21);
        for step in 0u64..5_000 {
            let key = step % 97;
            let delta = (step as i64 % 9) - 4;
            let lanes = fused.prepare_lanes(&key);
            let got = fused.add_and_estimate(&key, &lanes, delta);
            split.add(&key, delta);
            let want = split.estimate(&key);
            assert_eq!(got, want, "step {step}");
            assert_eq!(fused.raw_cells(), split.raw_cells(), "step {step}");
        }
    }

    #[test]
    fn fetch_remove_matches_remove_estimate() {
        let mut fused = CountSketch::<i64>::new(5, 64, 22);
        let mut split = CountSketch::<i64>::new(5, 64, 22);
        for k in 0u64..200 {
            fused.add(&k, (k as i64 % 13) - 6);
            split.add(&k, (k as i64 % 13) - 6);
        }
        for k in 0u64..200 {
            let lanes = fused.prepare_lanes(&k);
            let est = fused.estimate(&k);
            assert_eq!(
                fused.fetch_remove(&k, &lanes, est),
                split.remove_estimate(&k)
            );
        }
        assert_eq!(fused.raw_cells(), split.raw_cells());
    }

    #[test]
    fn empty_lanes_fall_back_to_key_hashing() {
        let mut cs = CountSketch::<i64>::new(3, 64, 23);
        let got = cs.add_and_estimate(&5u64, &RowLanes::empty(), 12);
        assert_eq!(got, 12);
        assert_eq!(cs.fetch_remove(&5u64, &RowLanes::empty(), got), 12);
        assert_eq!(cs.estimate(&5u64), 0);
    }

    fn batch_twin_trial(rows: usize, len: usize) {
        // The column-wise batch entry points must be bit-identical to the
        // sequential fused path on an identically-seeded twin: same returned
        // estimates, same raw cells, for aligned and unaligned lengths and
        // for depths on both sides of the lane ceiling.
        let mut batch = CountSketch::<i8>::new(rows, 32, 31);
        let mut seq = CountSketch::<i8>::new(rows, 32, 31);
        let keys: Vec<u64> = (0..len as u64).map(|k| k % 41).collect();
        let deltas: Vec<i64> = (0..len as i64).map(|i| (i % 11) - 5).collect();
        let lanes: Vec<RowLanes> = keys.iter().map(|k| batch.prepare_lanes(k)).collect();
        let mut got = vec![0i64; len];
        batch.add_and_estimate_batch(&keys, &lanes, &deltas, &mut got);
        for j in 0..len {
            let want = seq.add_and_estimate(&keys[j], &lanes[j], deltas[j]);
            assert_eq!(got[j], want, "rows {rows} len {len} item {j}");
        }
        assert_eq!(batch.raw_cells(), seq.raw_cells());
        // Remove every third estimate (some zero, some not) both ways.
        let ests: Vec<i64> = got
            .iter()
            .enumerate()
            .map(|(j, &e)| if j % 3 == 0 { e } else { 0 })
            .collect();
        batch.fetch_remove_batch(&keys, &lanes, &ests);
        for j in 0..len {
            let _ = seq.fetch_remove(&keys[j], &lanes[j], ests[j]);
        }
        assert_eq!(batch.raw_cells(), seq.raw_cells());
    }

    #[test]
    fn batch_ops_match_sequential_fused_path() {
        for rows in [1, 3, 5, qf_hash::MAX_LANES, qf_hash::MAX_LANES + 2] {
            for len in [0, 1, BATCH_BLOCK - 1, BATCH_BLOCK, BATCH_BLOCK + 1, 300] {
                batch_twin_trial(rows, len);
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_add_then_remove_restores_empty(keys in proptest::collection::vec(0u64..1000, 1..40)) {
            // Insert a batch, then remove each key's estimate in reverse;
            // an isolated single key sketch (wide) must return to zero mass.
            let mut cs = CountSketch::<i64>::new(3, 4096, 11);
            let k = keys[0];
            let mut total = 0i64;
            for (i, _) in keys.iter().enumerate() {
                let w = (i as i64 % 7) - 3;
                cs.add(&k, w);
                total += w;
            }
            proptest::prop_assert_eq!(cs.estimate(&k), total);
            cs.remove_estimate(&k);
            proptest::prop_assert_eq!(cs.estimate(&k), 0);
        }

        #[test]
        fn prop_estimates_exact_when_no_collisions(weights in proptest::collection::vec(-50i64..50, 1..20)) {
            // A huge width makes collisions vanishingly unlikely for a
            // handful of keys: estimates must be exact sums.
            let mut cs = CountSketch::<i64>::new(5, 1 << 16, 13);
            for (i, &w) in weights.iter().enumerate() {
                cs.add(&(i as u64), w);
            }
            for (i, &w) in weights.iter().enumerate() {
                proptest::prop_assert_eq!(cs.estimate(&(i as u64)), w);
            }
        }
    }
}
