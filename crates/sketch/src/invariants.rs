//! Checked structural invariants for the sketch structures.
//!
//! Every sketch owns a handful of relationships that must hold at *all*
//! times — grid dimensions vs. cell-vector length, hash-family arity vs.
//! row count — and that no unit test can pin down once the structure is
//! driven by restored snapshots or long adversarial streams. The
//! [`CheckInvariants`] trait makes those relationships executable:
//! `check_invariants()` walks the structure and returns the first
//! violation found, as data rather than a panic, so harnesses can assert
//! on it and production code can log it.
//!
//! The checks are `O(structure size)` — far too slow for per-item calls on
//! the hot path. Callers gate them behind `debug_assertions` or the
//! `strict-invariants` feature (see `quantile-filter`'s hooks), or invoke
//! them at natural barriers: after restore, after an epoch rollover, every
//! N items in a replay harness.

/// A violated structural invariant: which structure, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The structure that failed ("CountSketch", "CandidatePart", ...).
    pub structure: &'static str,
    /// Human-readable description of the violated relationship.
    pub detail: String,
}

impl InvariantViolation {
    /// Build a violation report.
    pub fn new(structure: &'static str, detail: impl Into<String>) -> Self {
        Self {
            structure,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} invariant violated: {}", self.structure, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

/// Structures whose internal consistency can be audited on demand.
pub trait CheckInvariants {
    /// Verify every structural invariant; `Err` carries the first
    /// violation found. Runs in time linear in the structure size and
    /// never panics.
    fn check_invariants(&self) -> Result<(), InvariantViolation>;
}
