//! SpaceSaving (Metwally, Agrawal & El Abbadi, ICDT 2005): the classic
//! fixed-capacity heavy-hitter tracker.
//!
//! Keeps at most `capacity` keys with `(count, err)` pairs. When a new key
//! arrives at a full table, the minimum-count entry is evicted and the
//! newcomer inherits `min + 1` with error `min` — guaranteeing
//! `true_count ≤ count ≤ true_count + err` and that any key with frequency
//! above `n/capacity` is present. The SQUAD-style baseline composes this
//! with per-key GK summaries.

use std::collections::HashMap;

/// A tracked entry: estimated count and over-estimation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsEntry {
    /// Estimated frequency (upper bound).
    pub count: u64,
    /// Maximum over-estimation (the evicted minimum inherited on entry).
    pub err: u64,
}

/// A SpaceSaving table over `u64` keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    entries: HashMap<u64, SsEntry>,
    capacity: usize,
    items: u64,
}

impl SpaceSaving {
    /// Create a table tracking at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: HashMap::with_capacity(capacity),
            capacity,
            items: 0,
        }
    }

    /// Total items observed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Observe one occurrence of `key`. Returns `Some(evicted_key)` when a
    /// previously tracked key was displaced.
    pub fn observe(&mut self, key: u64) -> Option<u64> {
        self.items += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.count += 1;
            return None;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key, SsEntry { count: 1, err: 0 });
            return None;
        }
        // Evict the minimum-count entry. The map is nonempty here: its
        // length just compared ≥ capacity, and capacity ≥ 1.
        let Some((&victim, &SsEntry { count: min, .. })) =
            self.entries.iter().min_by_key(|&(_, e)| e.count)
        else {
            self.entries.insert(key, SsEntry { count: 1, err: 0 });
            return None;
        };
        self.entries.remove(&victim);
        self.entries.insert(
            key,
            SsEntry {
                count: min + 1,
                err: min,
            },
        );
        Some(victim)
    }

    /// Estimated count of a key (`None` if not tracked).
    pub fn estimate(&self, key: u64) -> Option<SsEntry> {
        self.entries.get(&key).copied()
    }

    /// Whether a key is currently tracked.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Keys whose *guaranteed* count (`count − err`) is at least
    /// `threshold`, sorted by estimated count descending.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(u64, SsEntry)> {
        let mut out: Vec<(u64, SsEntry)> = self
            .entries
            .iter()
            .filter(|&(_, e)| e.count - e.err >= threshold)
            .map(|(&k, &e)| (k, e))
            .collect();
        out.sort_unstable_by_key(|e| std::cmp::Reverse(e.1.count));
        out
    }

    /// Iterate over all tracked `(key, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, SsEntry)> + '_ {
        self.entries.iter().map(|(&k, &e)| (k, e))
    }

    /// Clear the table.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.items = 0;
    }

    /// Approximate bytes (entry payload + map overhead).
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * (8 + 16 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_within_capacity_exactly() {
        let mut ss = SpaceSaving::new(4);
        for _ in 0..10 {
            ss.observe(1);
        }
        for _ in 0..5 {
            ss.observe(2);
        }
        assert_eq!(ss.estimate(1), Some(SsEntry { count: 10, err: 0 }));
        assert_eq!(ss.estimate(2), Some(SsEntry { count: 5, err: 0 }));
    }

    #[test]
    fn eviction_inherits_min() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(1);
        ss.observe(1);
        ss.observe(2);
        let evicted = ss.observe(3); // table full: evicts key 2 (count 1)
        assert_eq!(evicted, Some(2));
        assert_eq!(ss.estimate(3), Some(SsEntry { count: 2, err: 1 }));
        assert!(ss.contains(1));
    }

    #[test]
    fn overestimate_invariant() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(1);
        let mut ss = SpaceSaving::new(16);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..50_000 {
            // Zipf-ish skew via powers.
            let key = (rng.gen_range(0.0f64..1.0).powi(3) * 200.0) as u64;
            ss.observe(key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for (k, e) in ss.iter() {
            let t = truth[&k];
            assert!(e.count >= t, "count {} < true {t}", e.count);
            assert!(e.count - e.err <= t, "guaranteed bound broken for {k}");
        }
    }

    #[test]
    fn frequent_keys_always_present() {
        // Any key with frequency > n/capacity must be tracked.
        let mut ss = SpaceSaving::new(10);
        let n = 10_000;
        for i in 0..n {
            let key = if i % 5 == 0 { 999 } else { i as u64 % 2000 };
            ss.observe(key);
        }
        // Key 999 has n/5 = 2000 > n/10 = 1000 occurrences.
        assert!(ss.contains(999));
        let hh = ss.heavy_hitters(1000);
        assert!(hh.iter().any(|&(k, _)| k == 999), "{hh:?}");
    }

    #[test]
    fn heavy_hitters_sorted_desc() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..30 {
            ss.observe(1);
        }
        for _ in 0..20 {
            ss.observe(2);
        }
        for _ in 0..10 {
            ss.observe(3);
        }
        let hh = ss.heavy_hitters(5);
        let counts: Vec<u64> = hh.iter().map(|&(_, e)| e.count).collect();
        assert_eq!(counts, vec![30, 20, 10]);
    }

    #[test]
    fn clear_and_len() {
        let mut ss = SpaceSaving::new(4);
        ss.observe(1);
        assert_eq!(ss.len(), 1);
        assert!(!ss.is_empty());
        ss.clear();
        assert!(ss.is_empty());
        assert_eq!(ss.items(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::new(0);
    }
}
