//! Saturating signed counters for sketch cells.
//!
//! The paper's space savings come partly from narrow counters: "we can adopt
//! 16-bit or even 8-bit counters to conserve space while maintaining close
//! to 100% accuracy. Yet, it is crucial to prevent counters from naturally
//! rolling over due to overflow … Operations must prevent overflow
//! reversals, ignoring any addition or subtraction that would cause it"
//! (§III-B). [`SketchCounter`] encodes exactly that contract: `saturating
//! add` semantics where an increment that would wrap is clamped at the
//! numeric bound instead.

/// A signed counter cell usable inside a sketch array.
///
/// All four built-in signed integer widths implement this. Conversions to
/// and from `i64` are provided because estimation math (medians, weighted
/// sums) is always carried out at 64-bit precision regardless of the cell
/// width.
pub trait SketchCounter:
    Copy + Default + PartialEq + std::fmt::Debug + Send + Sync + 'static
{
    /// Number of bytes one cell occupies.
    const BYTES: usize;
    /// Human-readable width name for experiment logs ("i8", "i16", ...).
    const NAME: &'static str;

    /// Widen to `i64` for estimation math.
    fn to_i64(self) -> i64;

    /// Add `delta` (an `i64`) to this cell, clamping at the cell's numeric
    /// bounds instead of wrapping. This is the paper's overflow-reversal
    /// guard.
    fn saturating_add_i64(self, delta: i64) -> Self;

    /// The zero cell.
    #[inline(always)]
    fn zero() -> Self {
        Self::default()
    }
}

macro_rules! impl_counter {
    ($t:ty, $name:literal) => {
        impl SketchCounter for $t {
            const BYTES: usize = core::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            #[inline(always)]
            fn to_i64(self) -> i64 {
                i64::from(self)
            }

            #[inline(always)]
            fn saturating_add_i64(self, delta: i64) -> Self {
                let wide = i64::from(self).saturating_add(delta);
                if wide > <$t>::MAX as i64 {
                    <$t>::MAX
                } else if wide < <$t>::MIN as i64 {
                    <$t>::MIN
                } else {
                    wide as $t
                }
            }
        }
    };
}

impl_counter!(i8, "i8");
impl_counter!(i16, "i16");
impl_counter!(i32, "i32");

impl SketchCounter for i64 {
    const BYTES: usize = 8;
    const NAME: &'static str = "i64";

    #[inline(always)]
    fn to_i64(self) -> i64 {
        self
    }

    #[inline(always)]
    fn saturating_add_i64(self, delta: i64) -> Self {
        self.saturating_add(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_names() {
        assert_eq!(<i8 as SketchCounter>::BYTES, 1);
        assert_eq!(<i16 as SketchCounter>::BYTES, 2);
        assert_eq!(<i32 as SketchCounter>::BYTES, 4);
        assert_eq!(<i64 as SketchCounter>::BYTES, 8);
        assert_eq!(<i16 as SketchCounter>::NAME, "i16");
    }

    #[test]
    fn i8_saturates_at_max_without_reversal() {
        let c: i8 = 126;
        let c = c.saturating_add_i64(1);
        assert_eq!(c, 127);
        // This is the overflow-reversal case the paper forbids: 127 + 1
        // must stay 127, never become −128.
        let c = c.saturating_add_i64(1);
        assert_eq!(c, 127);
        // A subtraction still works after saturation.
        let c = c.saturating_add_i64(-3);
        assert_eq!(c, 124);
    }

    #[test]
    fn i8_saturates_at_min() {
        let c: i8 = -127;
        let c = c.saturating_add_i64(-5);
        assert_eq!(c, -128);
        let c = c.saturating_add_i64(-1);
        assert_eq!(c, -128);
    }

    #[test]
    fn large_delta_clamps() {
        let c: i16 = 10;
        assert_eq!(c.saturating_add_i64(1 << 40), i16::MAX);
        assert_eq!(c.saturating_add_i64(-(1 << 40)), i16::MIN);
    }

    #[test]
    fn i64_saturates_at_extremes() {
        let c: i64 = i64::MAX - 1;
        assert_eq!(c.saturating_add_i64(5), i64::MAX);
        let c: i64 = i64::MIN + 1;
        assert_eq!(c.saturating_add_i64(-5), i64::MIN);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(<i32 as SketchCounter>::zero(), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_i16_matches_wide_clamp(start in i16::MIN..=i16::MAX, delta in -100_000i64..100_000) {
            let got = start.saturating_add_i64(delta);
            let want = (i64::from(start) + delta).clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16;
            proptest::prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_i8_never_wraps_sign_on_positive_add(start in 0i8..=i8::MAX, delta in 0i64..1_000) {
            let got = start.saturating_add_i64(delta);
            proptest::prop_assert!(got >= start);
        }
    }
}
