//! Unbiased stochastic rounding of fractional weights.
//!
//! Sketch counters are integers, but the item Qweight `δ/(1−δ)` is usually
//! fractional (δ = 0.95 ⇒ weight 19 exactly, but δ = 0.9 ⇒ 9, δ = 0.8 ⇒ 4,
//! δ = 0.85 ⇒ 5.666…). The paper's §III-A Technical Details prescribe:
//! add `⌊Qw⌋`, then add one more with probability `Qw − ⌊Qw⌋`. The expected
//! increment is exactly `Qw` (unbiased) and the variance is
//! `frac·(1−frac) < 0.25`.
//!
//! [`StochasticRounder`] implements that with a self-contained SplitMix64
//! stream so results are reproducible from the experiment seed without
//! pulling a full RNG dependency into the hot path.

use qf_hash::SplitMix64;

/// Stateful unbiased rounder: converts `f64` weights into `i64` increments.
#[derive(Debug, Clone)]
pub struct StochasticRounder {
    rng: SplitMix64,
}

impl StochasticRounder {
    /// Create a rounder with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    /// Round `w` to an integer with expectation exactly `w`.
    ///
    /// Works for negative weights too: `-2.3` becomes `-3` with probability
    /// 0.3 and `-2` with probability 0.7 (floor-based, so the fractional
    /// part is always in `[0, 1)`).
    #[inline]
    pub fn round(&mut self, w: f64) -> i64 {
        let floor = w.floor();
        let frac = w - floor; // in [0, 1)
        let base = floor as i64;
        if frac == 0.0 {
            return base;
        }
        // Draw a uniform in [0,1) from 53 random mantissa bits.
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        let up = u < frac;
        // No-op unless the `telemetry` feature is on; never touches the RNG.
        crate::telemetry::rounding_event(up, frac);
        if up {
            base + 1
        } else {
            base
        }
    }

    /// The RNG state, for snapshotting: a rounder rebuilt with
    /// [`Self::from_state`] makes the exact same rounding decisions.
    #[inline]
    pub fn state(&self) -> u64 {
        self.rng.state()
    }

    /// Resume a rounder from a snapshotted [`Self::state`].
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Self {
            rng: SplitMix64::from_state(state),
        }
    }

    /// Round a weight that is known to be integral (fast path, no RNG).
    #[inline(always)]
    pub fn round_exact(w: f64) -> Option<i64> {
        if w.fract() == 0.0 && w.abs() < 9.0e18 {
            Some(w as i64)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_weights_pass_through() {
        let mut r = StochasticRounder::new(1);
        assert_eq!(r.round(19.0), 19);
        assert_eq!(r.round(-1.0), -1);
        assert_eq!(r.round(0.0), 0);
    }

    #[test]
    fn round_exact_detects_integers() {
        assert_eq!(StochasticRounder::round_exact(4.0), Some(4));
        assert_eq!(StochasticRounder::round_exact(-7.0), Some(-7));
        assert_eq!(StochasticRounder::round_exact(5.5), None);
    }

    #[test]
    fn fractional_weight_is_unbiased() {
        // δ = 0.85 ⇒ weight = 17/3 ≈ 5.6667. Mean over many draws must be
        // close to the true weight.
        let w = 0.85 / (1.0 - 0.85);
        let mut r = StochasticRounder::new(42);
        let n = 200_000;
        let sum: i64 = (0..n).map(|_| r.round(w)).sum();
        let mean = sum as f64 / f64::from(n);
        assert!((mean - w).abs() < 0.01, "mean {mean} vs {w}");
    }

    #[test]
    fn outputs_are_floor_or_ceil() {
        let mut r = StochasticRounder::new(9);
        for _ in 0..10_000 {
            let v = r.round(2.3);
            assert!(v == 2 || v == 3);
        }
    }

    #[test]
    fn negative_fractional_unbiased() {
        let mut r = StochasticRounder::new(5);
        let n = 200_000;
        let sum: i64 = (0..n).map(|_| r.round(-2.25)).sum();
        let mean = sum as f64 / f64::from(n);
        assert!((mean + 2.25).abs() < 0.01, "mean {mean}");
        // And every draw is −3 or −2.
        let v = r.round(-2.25);
        assert!(v == -3 || v == -2);
    }

    #[test]
    fn variance_below_quarter() {
        // Paper: variance = frac(1−frac) < 0.25; empirically check for the
        // worst case frac = 0.5.
        let mut r = StochasticRounder::new(17);
        let n = 100_000;
        let draws: Vec<i64> = (0..n).map(|_| r.round(3.5)).collect();
        let mean = draws.iter().sum::<i64>() as f64 / n as f64;
        let var = draws
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(var < 0.26, "variance {var}");
        assert!(var > 0.20, "variance suspiciously low {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StochasticRounder::new(123);
        let mut b = StochasticRounder::new(123);
        for _ in 0..1000 {
            assert_eq!(a.round(1.77), b.round(1.77));
        }
    }
}
