//! ops_demo: drive a supervised pipeline and hold the ops endpoint open.
//!
//! The CI ops-smoke job (and anyone following the README quick-start)
//! runs this binary, then curls `/health`, `/metrics`, and
//! `/flight?shard=N` against it while it serves. With `--chaos` a panic
//! fault is injected into shard 0 partway through the stream, so the
//! serve window shows a real restart: `/health` reports the bumped
//! generation and cause, and (with the `trace` feature) a
//! `flight-0-0.json` dump lands in `--flight-dir`.
//!
//! ```text
//! ops_demo [--items N] [--shards N] [--addr HOST:PORT]
//!          [--serve-secs S] [--chaos] [--flight-dir DIR]
//! ```

use qf_ops::OpsServer;
use qf_pipeline::{
    BackpressurePolicy, ChaosPlan, Fault, Pipeline, PipelineConfig, SupervisorConfig,
};
use quantile_filter::Criteria;
use std::time::Duration;

struct Args {
    items: u64,
    shards: usize,
    addr: String,
    serve_secs: u64,
    chaos: bool,
    flight_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        items: 200_000,
        shards: 4,
        addr: "127.0.0.1:9898".to_string(),
        serve_secs: 0,
        chaos: false,
        flight_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--items" => args.items = value("--items")?.parse().map_err(|e| format!("{e}"))?,
            "--shards" => args.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--addr" => args.addr = value("--addr")?,
            "--serve-secs" => {
                args.serve_secs = value("--serve-secs")?.parse().map_err(|e| format!("{e}"))?
            }
            "--chaos" => args.chaos = true,
            "--flight-dir" => args.flight_dir = Some(value("--flight-dir")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| {
        format!("{e}\nusage: ops_demo [--items N] [--shards N] [--addr HOST:PORT] [--serve-secs S] [--chaos] [--flight-dir DIR]")
    })?;
    let config = PipelineConfig {
        shards: args.shards,
        criteria: Criteria::new(30.0, 0.95, 150.0)?,
        memory_bytes_per_shard: 64 * 1024,
        queue_capacity: 1024,
        slab_capacity: 256,
        policy: BackpressurePolicy::DropOldest,
        seed: 1,
    };
    let sup = SupervisorConfig {
        checkpoint_interval: 2048,
        ..SupervisorConfig::default()
    };
    let mut pipe = if args.chaos {
        // One mid-stream panic on shard 0: enough to exercise fence,
        // checkpoint+journal recovery, restart, and a flight dump.
        let plan = ChaosPlan::new().with(Fault::Panic {
            shard: 0,
            at_pop: (args.items / (4 * args.shards as u64)).max(1),
        });
        Pipeline::launch_chaos(config, sup, &plan)?
    } else {
        Pipeline::launch_supervised(config, sup)?
    };
    if let Some(dir) = &args.flight_dir {
        pipe.set_flight_dir(dir.clone());
    }
    let server = OpsServer::start(args.addr.as_str(), pipe.ops_view())?;
    println!("qf-ops listening on http://{}", server.addr());

    // Zipf-ish synthetic stream: a rotating background population plus a
    // sparse heavy tail that trips reports.
    let mut reports = 0usize;
    for i in 0..args.items {
        let key = (i.wrapping_mul(2_654_435_761)) % 1024;
        let value = if i % 97 == 0 { 400.0 } else { (i % 23) as f64 };
        let _ = pipe.ingest(key, value)?;
        if i % 8192 == 0 {
            reports += pipe.poll_reports().len();
        }
    }
    reports += pipe.poll_reports().len();
    println!(
        "ingested {} items across {} shards, {} reports so far, {} restarts",
        args.items,
        args.shards,
        reports,
        pipe.restarts()
    );

    // Hold the endpoint open for scrapers before draining.
    std::thread::sleep(Duration::from_secs(args.serve_secs));
    let summary = pipe.shutdown()?;
    println!(
        "shutdown: processed={} shed={} lost_to_crash={} restarts={} recoveries={}",
        summary.processed,
        summary.shed,
        summary.lost_to_crash,
        summary.restarts,
        summary.recoveries.len()
    );
    server.shutdown();
    Ok(())
}
