//! qf-ops: a live operations endpoint for the supervised pipeline.
//!
//! One background thread, one `std::net::TcpListener`, zero
//! dependencies — the same hand-rolled discipline as the rest of the
//! workspace. [`OpsServer::start`] takes an [`OpsView`] detached from a
//! running [`qf_pipeline::Pipeline`] and serves:
//!
//! | route            | body                                             |
//! |------------------|--------------------------------------------------|
//! | `/metrics`       | Prometheus text exposition of the global registry |
//! | `/metrics.json`  | the same snapshot as JSON                         |
//! | `/health`        | per-shard supervision state (JSON)                |
//! | `/flight?shard=N`| shard `N`'s flight recorder as `qf-flight/v1`     |
//!
//! `/health` works in every build (the supervision scoreboard is not
//! feature-gated); `/metrics` is only *interesting* with the `telemetry`
//! feature on (the registry exists regardless, so the route always
//! answers); `/flight` answers 404 unless the `trace` feature compiled
//! the flight recorders in.
//!
//! The HTTP dialect is deliberately minimal: `GET` only, `HTTP/1.1`,
//! `Connection: close` on every response, no keep-alive, no TLS. This is
//! an operational side-door for `curl` and scrapers on a trusted
//! network, not a web framework.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

use qf_pipeline::OpsView;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on request bytes read before answering; anything longer than a
/// header block this size is not a request this server understands.
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// Accept-loop poll interval while idle (the listener is non-blocking so
/// the stop flag is observed promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A running ops endpoint. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop and joins the
/// server thread.
pub struct OpsServer {
    addr: SocketAddr,
    // sync: counter — relaxed stop latch, polled by the accept loop;
    // the `join` in `stop_and_join` is the shutdown ordering edge.
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9898"`, or port `0` for an
    /// ephemeral port) and start serving `view` on a background thread.
    pub fn start(addr: impl ToSocketAddrs, view: OpsView) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("qf-ops".into())
            .spawn(move || accept_loop(listener, view, stop_flag))?;
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, view: OpsView, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => serve_connection(stream, &view),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (aborted handshake etc.): keep
            // serving; the endpoint outliving one bad connection is the
            // whole point.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Handle one request on `stream`; all errors are answered or dropped,
/// never propagated (a scraper must not be able to kill the server).
fn serve_connection(mut stream: TcpStream, view: &OpsView) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the end of the header block; the routes take no bodies.
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = match std::str::from_utf8(&req)
        .ok()
        .and_then(|s| s.lines().next())
    {
        Some(l) => l,
        None => return,
    };
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return,
    };
    let (status, content_type, body) = if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else {
        route(target, view)
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Method Not Allowed",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// Dispatch a request target to its response. Public-in-crate shape so
/// the tests can exercise routing without sockets.
fn route(target: &str, view: &OpsView) -> (u16, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            qf_telemetry::to_prometheus(&qf_telemetry::global().snapshot()),
        ),
        "/metrics.json" => (
            200,
            "application/json",
            qf_telemetry::to_json(&qf_telemetry::global().snapshot()),
        ),
        "/health" => (200, "application/json", view.health_json()),
        "/flight" => match shard_param(query) {
            None => (
                400,
                "text/plain",
                "expected /flight?shard=<index>\n".to_string(),
            ),
            Some(shard) => match view.flight_json(shard) {
                Some(body) => (200, "application/json", body),
                None => (
                    404,
                    "text/plain",
                    if shard < view.shard_count() {
                        "flight recording requires the `trace` feature\n".to_string()
                    } else {
                        format!("no such shard {shard}\n")
                    },
                ),
            },
        },
        _ => (
            404,
            "text/plain",
            "routes: /metrics /metrics.json /health /flight?shard=N\n".to_string(),
        ),
    }
}

/// Extract `shard=N` from a query string.
fn shard_param(query: &str) -> Option<usize> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("shard="))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_pipeline::{BackpressurePolicy, Pipeline, PipelineConfig};
    use quantile_filter::Criteria;

    fn pipeline() -> Pipeline {
        let criteria = match Criteria::new(5.0, 0.9, 100.0) {
            Ok(c) => c,
            Err(e) => panic!("criteria: {e:?}"),
        };
        match Pipeline::launch(PipelineConfig {
            shards: 2,
            criteria,
            memory_bytes_per_shard: 16 * 1024,
            queue_capacity: 32,
            slab_capacity: 1,
            policy: BackpressurePolicy::Block,
            seed: 0,
        }) {
            Ok(p) => p,
            Err(e) => panic!("launch: {e}"),
        }
    }

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => panic!("connect: {e}"),
        };
        let _ = write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n");
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_all_routes_over_tcp() {
        let pipe = pipeline();
        let server = match OpsServer::start("127.0.0.1:0", pipe.ops_view()) {
            Ok(s) => s,
            Err(e) => panic!("start: {e}"),
        };
        let addr = server.addr();

        let health = get(addr, "/health");
        assert!(health.starts_with("HTTP/1.1 200"), "health: {health}");
        assert!(health.contains("\"shards\":["));
        assert!(health.contains("\"state\":\"running\""));

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "metrics: {metrics}");
        assert!(metrics.contains("text/plain"));

        let json = get(addr, "/metrics.json");
        assert!(json.starts_with("HTTP/1.1 200"), "metrics.json: {json}");
        assert!(json.contains("application/json"));

        let flight = get(addr, "/flight?shard=0");
        if cfg!(feature = "trace") {
            assert!(flight.starts_with("HTTP/1.1 200"), "flight: {flight}");
            assert!(flight.contains("qf-flight/v1"));
        } else {
            assert!(flight.starts_with("HTTP/1.1 404"), "flight: {flight}");
        }

        assert!(get(addr, "/flight").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/flight?shard=99").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        server.shutdown();
        let _ = pipe.shutdown();
    }

    #[test]
    fn route_table_without_sockets() {
        let pipe = pipeline();
        let view = pipe.ops_view();
        assert_eq!(route("/health", &view).0, 200);
        assert_eq!(route("/metrics", &view).0, 200);
        assert_eq!(route("/metrics.json", &view).0, 200);
        assert_eq!(route("/flight", &view).0, 400);
        assert_eq!(route("/flight?shard=bogus", &view).0, 400);
        assert_eq!(route("/flight?shard=7", &view).0, 404);
        assert_eq!(route("/whatever", &view).0, 404);
        let expected = if cfg!(feature = "trace") { 200 } else { 404 };
        assert_eq!(route("/flight?shard=1", &view).0, expected);
        let _ = pipe.shutdown();
    }

    #[test]
    fn shard_param_parsing() {
        assert_eq!(shard_param("shard=3"), Some(3));
        assert_eq!(shard_param("a=1&shard=0"), Some(0));
        assert_eq!(shard_param(""), None);
        assert_eq!(shard_param("shard=x"), None);
    }
}
