//! Exhaustive model check of the flight-recorder seqlock.
//!
//! Runs only under `RUSTFLAGS='--cfg qf_model'` (via `cargo xtask
//! model`). A single-slot recorder forces a concurrent writer onto the
//! slot a reader is scanning — the contention the per-slot seqlock
//! exists to survive. The invariant: a snapshot never returns a *torn*
//! event (payload words from two different emits), in any interleaving
//! and any allowed weak-memory visibility.
//!
//! The payload discipline makes tearing detectable as a value error:
//! every emit writes `b = a * 7`, so a snapshot that mixes `a` from one
//! emit with `b` from another fails the multiplier check.
#![cfg(qf_model)]

use qf_model::sync::atomic::{fence, AtomicU64, Ordering};
use qf_model::sync::thread;
use qf_model::{try_model, Checker};
use qf_trace::{EventKind, FlightRecorder};
use std::sync::Arc;

fn check_event(e: &qf_trace::TraceEvent) {
    assert_eq!(e.b, e.a * 7, "torn snapshot: a={} b={}", e.a, e.b);
    assert_eq!(e.kind, EventKind::Report, "torn meta");
}

/// One writer re-stamping a single-slot ring while a reader snapshots:
/// the reader must see either the old event, the new event, or nothing
/// — never a mix.
#[test]
fn snapshot_never_torn_single_slot() {
    let stats = Checker::new()
        .preemption_bound(3)
        .check(|| {
            let rec = Arc::new(FlightRecorder::with_exact_capacity(1));
            // Seed the slot before the race so the reader's first stamp
            // load can see a published event.
            rec.emit(EventKind::Report, 0, 1, 3, 21);
            let w = {
                let rec = Arc::clone(&rec);
                thread::spawn(move || {
                    rec.emit(EventKind::Report, 0, 1, 5, 35);
                })
            };
            for e in rec.snapshot() {
                check_event(&e);
            }
            w.join().unwrap();
            // Quiescent snapshot sees exactly the newest event.
            let after = rec.snapshot();
            assert_eq!(after.len(), 1);
            assert_eq!(after[0].a, 5);
            check_event(&after[0]);
        })
        .expect("seqlock must never surface a torn event");
    assert!(stats.executions > 1, "stats: {stats:?}");
}

/// Two concurrent writers racing one slot, reader snapshotting: the
/// seqlock must discard in-flux slots, and the stamp uniqueness from
/// the global sequence counter must keep the ABA window closed.
#[test]
fn snapshot_never_torn_two_writers() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let rec = Arc::new(FlightRecorder::with_exact_capacity(1));
            let w1 = {
                let rec = Arc::clone(&rec);
                thread::spawn(move || {
                    rec.emit(EventKind::Report, 0, 1, 2, 14);
                })
            };
            let w2 = {
                let rec = Arc::clone(&rec);
                thread::spawn(move || {
                    rec.emit(EventKind::Report, 0, 1, 9, 63);
                })
            };
            for e in rec.snapshot() {
                check_event(&e);
            }
            w1.join().unwrap();
            w2.join().unwrap();
        })
        .expect("two-writer seqlock race must never surface a torn event");
}

/// Seeded-bug self-test: the same seqlock shape with the writer's
/// release fence removed — payload stores can then become visible
/// before the stamp is parked at 0, so a reader can pass the
/// stamp-match check around a torn payload. The checker must catch it.
///
/// This miniature is the justification for the `fence(Release)` in
/// `FlightRecorder::emit`: delete that fence and the real harnesses
/// above fail exactly like this.
#[test]
fn seeded_missing_release_fence_caught() {
    let v = try_model(|| {
        let stamp = Arc::new(AtomicU64::new(1));
        let a = Arc::new(AtomicU64::new(3));
        let b = Arc::new(AtomicU64::new(21));
        let (s2, a2, b2) = (Arc::clone(&stamp), Arc::clone(&a), Arc::clone(&b));
        let w = thread::spawn(move || {
            s2.store(0, Ordering::Release);
            // BUG under test: no fence(Release) here.
            a2.store(5, Ordering::Relaxed);
            b2.store(35, Ordering::Relaxed);
            s2.store(2, Ordering::Release);
        });
        let s1 = stamp.load(Ordering::Acquire);
        if s1 != 0 {
            let ra = a.load(Ordering::Relaxed);
            let rb = b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let sc = stamp.load(Ordering::Relaxed);
            if s1 == sc {
                assert_eq!(rb, ra * 7, "torn read accepted");
            }
        }
        w.join().unwrap();
    });
    let v = v.expect_err("missing release fence must admit a torn read");
    assert!(v.message.contains("torn read accepted"), "{}", v.message);
}

/// The fixed miniature (release fence restored) verifies clean — the
/// positive twin that proves the seeded test fails for the right
/// reason.
#[test]
fn seeded_twin_with_release_fence_verified() {
    Checker::new()
        .check(|| {
            let stamp = Arc::new(AtomicU64::new(1));
            let a = Arc::new(AtomicU64::new(3));
            let b = Arc::new(AtomicU64::new(21));
            let (s2, a2, b2) = (Arc::clone(&stamp), Arc::clone(&a), Arc::clone(&b));
            let w = thread::spawn(move || {
                s2.store(0, Ordering::Relaxed);
                fence(Ordering::Release);
                a2.store(5, Ordering::Relaxed);
                b2.store(35, Ordering::Relaxed);
                s2.store(2, Ordering::Release);
            });
            let s1 = stamp.load(Ordering::Acquire);
            if s1 != 0 {
                let ra = a.load(Ordering::Relaxed);
                let rb = b.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                let sc = stamp.load(Ordering::Relaxed);
                if s1 == sc {
                    assert_eq!(rb, ra * 7, "torn read accepted");
                }
            }
            w.join().unwrap();
        })
        .expect("release-fenced seqlock must verify clean");
}
