//! Lock-free flight-recorder ring buffer.
//!
//! One [`FlightRecorder`] per shard: a bounded, overwrite-oldest ring of
//! fixed-size event slots. The write side is wait-free (one `fetch_add`
//! to claim a slot, four relaxed stores to fill it) and is safe to call
//! from any thread — the worker that owns the shard, the router emitting
//! backpressure edges, and the supervisor emitting restart events can
//! all write concurrently. The read side ([`FlightRecorder::snapshot`])
//! is a cold-path scan that tolerates racing writers by detecting torn
//! slots and skipping them.
//!
//! Every slot is a per-slot seqlock made of four `AtomicU64` words:
//! `[stamp, meta, a, b]`. A writer parks the stamp at 0, fills the
//! payload, then publishes the stamp with a release store. A reader
//! takes the stamp with an acquire load, copies the payload, fences, and
//! re-reads the stamp: any mismatch (including 0) means a writer raced
//! the read and the slot is discarded. Because stamps are globally
//! unique sequence numbers drawn from one process-wide counter, a slot
//! can never be republished under the stamp a reader first saw, so the
//! check has no ABA window.
//!
//! Nothing here reads a clock: events are ordered by the global sequence
//! counter, not timestamps, which keeps the emit path compliant with
//! QF-L002 (no clock reads or allocation on hot paths).

use crate::event::{pack_meta, unpack_meta, EventKind, TraceEvent};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Process-wide event sequence. Starts at 0; the first event gets seq 1,
/// so a stamp of 0 always means "slot never written / being written".
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Claim the next global sequence number (>= 1).
#[inline(always)]
pub fn next_seq() -> u64 {
    GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// Last sequence number handed out so far (0 if none). Cold; used by
/// dumps and tests to bound expectations.
pub fn current_seq() -> u64 {
    GLOBAL_SEQ.load(Ordering::Relaxed)
}

/// One event slot: `[stamp, meta, a, b]`. `stamp` is the event's global
/// sequence number + still doubles as the seqlock word (0 = in flux).
struct Slot {
    stamp: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    const fn empty() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A bounded, overwrite-oldest ring of trace events for one shard.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Monotone claim counter; slot index = head & mask.
    head: AtomicU64,
    mask: u64,
}

impl FlightRecorder {
    /// Build a recorder holding at least `capacity` events (rounded up
    /// to a power of two, minimum 8). Capacity is fixed for the life of
    /// the recorder; older events are silently overwritten.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(Slot::empty());
        }
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            mask: (cap - 1) as u64,
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event. Wait-free: one `fetch_add` and four atomic
    /// stores; never allocates, never blocks, never reads a clock.
    /// Returns the event's global sequence number.
    #[inline]
    pub fn emit(&self, kind: EventKind, shard: u16, generation: u32, a: u64, b: u64) -> u64 {
        let seq = next_seq();
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) & self.mask) as usize;
        let slot = &self.slots[idx];
        // Park the stamp so a concurrent reader discards the slot while
        // the payload is in flux, then publish with a release store.
        slot.stamp.store(0, Ordering::Release);
        slot.meta
            .store(pack_meta(kind, shard, generation), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(seq, Ordering::Release);
        seq
    }

    /// Copy out every intact event, oldest first (global sequence
    /// order). Cold path: allocates the result vector and may observe —
    /// and skip — slots a concurrent writer is mid-way through.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // Order the payload loads before the confirming stamp load.
            fence(Ordering::Acquire);
            let s2 = slot.stamp.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // torn: a writer reclaimed the slot mid-read
            }
            if let Some((kind, shard, generation)) = unpack_meta(meta) {
                out.push(TraceEvent {
                    seq: s1,
                    kind,
                    shard,
                    generation,
                    a,
                    b,
                });
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRecorder::with_capacity(0).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(9).capacity(), 16);
        assert_eq!(FlightRecorder::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn events_come_back_in_emit_order() {
        let rec = FlightRecorder::with_capacity(16);
        let mut seqs = Vec::new();
        for i in 0..10u64 {
            seqs.push(rec.emit(EventKind::Report, 3, 7, i, i * 2));
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, seqs[i]);
            assert_eq!(e.kind, EventKind::Report);
            assert_eq!(e.shard, 3);
            assert_eq!(e.generation, 7);
            assert_eq!(e.a, i as u64);
            assert_eq!(e.b, 2 * i as u64);
        }
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            rec.emit(EventKind::Eviction, 0, 0, i, 0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 8);
        // The survivors are the 8 newest, still in order.
        let payloads: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, (12..20).collect::<Vec<u64>>());
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq, "sequence must be strictly monotone");
        }
    }

    #[test]
    fn sequence_is_global_across_recorders() {
        let r1 = FlightRecorder::with_capacity(8);
        let r2 = FlightRecorder::with_capacity(8);
        let s1 = r1.emit(EventKind::EpochRollover, 0, 0, 0, 0);
        let s2 = r2.emit(EventKind::EpochRollover, 1, 0, 0, 0);
        let s3 = r1.emit(EventKind::EpochRollover, 0, 0, 0, 0);
        assert!(
            s1 < s2 && s2 < s3,
            "cross-recorder causality: {s1} {s2} {s3}"
        );
        assert!(current_seq() >= s3);
    }

    #[test]
    fn concurrent_writers_and_reader_stay_consistent() {
        let rec = Arc::new(FlightRecorder::with_capacity(64));
        let writers: Vec<_> = (0..3u16)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    let n = if cfg!(miri) { 50 } else { 5_000 };
                    for i in 0..n {
                        rec.emit(EventKind::Report, w, 1, i, u64::from(w));
                    }
                })
            })
            .collect();
        // Read while writes are in flight: every snapshot must be
        // internally consistent even if it misses in-flux slots.
        let iters = if cfg!(miri) { 5 } else { 200 };
        for _ in 0..iters {
            let events = rec.snapshot();
            for w in events.windows(2) {
                assert!(w[0].seq < w[1].seq);
            }
            for e in &events {
                assert_eq!(e.b, u64::from(e.shard), "payload must match writer");
            }
        }
        for h in writers {
            if h.join().is_err() {
                panic!("writer panicked");
            }
        }
        let final_events = rec.snapshot();
        assert_eq!(final_events.len(), 64, "ring should be full");
    }
}
