//! Lock-free flight-recorder ring buffer.
//!
//! One [`FlightRecorder`] per shard: a bounded, overwrite-oldest ring of
//! fixed-size event slots. The write side is wait-free (one `fetch_add`
//! to claim a slot, four relaxed stores to fill it) and is safe to call
//! from any thread — the worker that owns the shard, the router emitting
//! backpressure edges, and the supervisor emitting restart events can
//! all write concurrently. The read side ([`FlightRecorder::snapshot`])
//! is a cold-path scan that tolerates racing writers by detecting torn
//! slots and skipping them.
//!
//! Every slot is a per-slot seqlock made of four `AtomicU64` words:
//! `[stamp, meta, a, b]`. The stamp is tri-state: 0 means "never
//! written", [`IN_FLUX`] means "payload being written", anything else
//! is the published event's global sequence number. A writer *claims*
//! the slot by CAS-ing a settled stamp to `IN_FLUX` (a racing writer
//! that lands on the same slot backs off and drops its event), fills
//! the payload behind a release fence, then publishes the stamp with a
//! release store. A reader takes the stamp with an acquire load, copies
//! the payload, fences, and re-reads the stamp: any mismatch (or a
//! non-published first read) means a writer raced the read and the slot
//! is discarded. Because stamps are globally unique sequence numbers
//! drawn from one process-wide counter, a slot can never be republished
//! under the stamp a reader first saw, so the check has no ABA window.
//!
//! Both ordering obligations here were pinned down by the qf-model
//! exhaustive harness (`tests/model_seqlock.rs`): the claim CAS
//! (two writers interleaving payload stores under a plain parking
//! store) and the post-claim release fence (payload stores drifting
//! ahead of the parking store past a reader's stamp-match check).
//!
//! Nothing here reads a clock: events are ordered by the global sequence
//! counter, not timestamps, which keeps the emit path compliant with
//! QF-L002 (no clock reads or allocation on hot paths).

use crate::event::{pack_meta, unpack_meta, EventKind, TraceEvent};
use qf_model::sync::atomic::{fence, AtomicU64, Ordering};

/// Process-wide event sequence. Starts at 0; the first event gets seq 1,
/// so a stamp of 0 always means "slot never written / being written".
// sync: counter — relaxed uniqueness counter; ordering comes from the
// per-slot `stamp` seqlock, never from this word.
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Stamp value marking a slot whose payload is being written. Distinct
/// from 0 ("never written") so the claim CAS can tell a free virgin
/// slot from one that is mid-write; unreachable as a real sequence
/// number within any feasible process lifetime.
const IN_FLUX: u64 = u64::MAX;

/// Claim the next global sequence number (>= 1).
#[inline(always)]
pub fn next_seq() -> u64 {
    GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// Last sequence number handed out so far (0 if none). Cold; used by
/// dumps and tests to bound expectations.
pub fn current_seq() -> u64 {
    GLOBAL_SEQ.load(Ordering::Relaxed)
}

/// One event slot: `[stamp, meta, a, b]`. `stamp` is the event's global
/// sequence number and doubles as the seqlock/claim word (0 = never
/// written, [`IN_FLUX`] = being written).
struct Slot {
    // sync: release-acquire — emit's claim CAS parks the slot at
    // `IN_FLUX`, a Release fence orders the payload stores, and the
    // Release publish of the real seq pairs with snapshot's Acquire
    // first load; the confirming re-read is ordered by an Acquire
    // fence instead.
    stamp: AtomicU64,
    // sync: guarded-by stamp — payload word; the stamp seqlock orders
    // every access, so all traffic is Relaxed.
    meta: AtomicU64,
    // sync: guarded-by stamp — payload word (see `meta`).
    a: AtomicU64,
    // sync: guarded-by stamp — payload word (see `meta`).
    b: AtomicU64,
}

impl Slot {
    const fn empty() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A bounded, overwrite-oldest ring of trace events for one shard.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Monotone claim counter; slot index = head & mask.
    // sync: counter — relaxed slot-claim ticket; publication of the
    // claimed slot's contents goes through its `stamp`.
    head: AtomicU64,
    mask: u64,
}

impl FlightRecorder {
    /// Build a recorder holding at least `capacity` events (rounded up
    /// to a power of two, minimum 8). Capacity is fixed for the life of
    /// the recorder; older events are silently overwritten.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(Slot::empty());
        }
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            mask: (cap - 1) as u64,
        }
    }

    /// Model-build hook: a recorder with exactly `capacity` slots
    /// (must be a power of two, minimum 1). The interleaving harness
    /// uses a single-slot ring to force concurrent writers onto the
    /// same seqlock, the contention worth checking exhaustively.
    #[cfg(qf_model)]
    pub fn with_exact_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        assert!(
            cap.is_power_of_two(),
            "exact capacity must be a power of two"
        );
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(Slot::empty());
        }
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            mask: (cap - 1) as u64,
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event. Wait-free: one `fetch_add`, one claim CAS,
    /// and four atomic stores; never allocates, never blocks, never
    /// reads a clock. Returns the event's global sequence number.
    ///
    /// If the claimed slot is mid-write by another emitter — possible
    /// only when the ring wraps a full capacity while that write is in
    /// flight — the event is dropped rather than racing the payload.
    /// The recorder is overwrite-oldest lossy by design, and a
    /// collision means this event would have been overwritten
    /// within one wrap anyway.
    #[inline]
    pub fn emit(&self, kind: EventKind, shard: u16, generation: u32, a: u64, b: u64) -> u64 {
        let seq = next_seq();
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) & self.mask) as usize;
        let slot = &self.slots[idx];
        // Claim the slot by parking its stamp at IN_FLUX, so (a) a
        // concurrent reader discards the slot while the payload is in
        // flux, and (b) a concurrent writer that lands on the same slot
        // backs off instead of interleaving its payload stores with
        // ours. A plain parking store here excludes nobody: the
        // qf-model harness (`snapshot_never_torn_two_writers`) found
        // two writers publishing a mixed payload under a valid stamp.
        // The Acquire on success orders the previous publisher's
        // payload stores before ours.
        let cur = slot.stamp.load(Ordering::Relaxed); // sync: relaxed-ok — claim CAS below re-checks
        if cur == IN_FLUX
            || slot
                .stamp
                .compare_exchange(cur, IN_FLUX, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            return seq;
        }
        // The release fence is load-bearing: it keeps the payload
        // stores from becoming visible *before* the stamp is parked.
        // Without it, a reader that takes the stamp, reads a half-new
        // payload, and re-reads the stamp can pass the match check on
        // the old stamp — the classic seqlock tear, found by the
        // qf-model harness (`snapshot_never_torn_single_slot`) and
        // reproduced by its seeded twin
        // (`seeded_missing_release_fence_caught`).
        fence(Ordering::Release);
        slot.meta
            .store(pack_meta(kind, shard, generation), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(seq, Ordering::Release);
        seq
    }

    /// Copy out every intact event, oldest first (global sequence
    /// order). Cold path: allocates the result vector and may observe —
    /// and skip — slots a concurrent writer is mid-way through.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 || s1 == IN_FLUX {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // Order the payload loads before the confirming stamp load.
            fence(Ordering::Acquire);
            let s2 = slot.stamp.load(Ordering::Relaxed); // sync: relaxed-ok — ordered by the fence above
            if s1 != s2 {
                continue; // torn: a writer reclaimed the slot mid-read
            }
            if let Some((kind, shard, generation)) = unpack_meta(meta) {
                out.push(TraceEvent {
                    seq: s1,
                    kind,
                    shard,
                    generation,
                    a,
                    b,
                });
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRecorder::with_capacity(0).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(9).capacity(), 16);
        assert_eq!(FlightRecorder::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn events_come_back_in_emit_order() {
        let rec = FlightRecorder::with_capacity(16);
        let mut seqs = Vec::new();
        for i in 0..10u64 {
            seqs.push(rec.emit(EventKind::Report, 3, 7, i, i * 2));
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, seqs[i]);
            assert_eq!(e.kind, EventKind::Report);
            assert_eq!(e.shard, 3);
            assert_eq!(e.generation, 7);
            assert_eq!(e.a, i as u64);
            assert_eq!(e.b, 2 * i as u64);
        }
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            rec.emit(EventKind::Eviction, 0, 0, i, 0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 8);
        // The survivors are the 8 newest, still in order.
        let payloads: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, (12..20).collect::<Vec<u64>>());
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq, "sequence must be strictly monotone");
        }
    }

    #[test]
    fn sequence_is_global_across_recorders() {
        let r1 = FlightRecorder::with_capacity(8);
        let r2 = FlightRecorder::with_capacity(8);
        let s1 = r1.emit(EventKind::EpochRollover, 0, 0, 0, 0);
        let s2 = r2.emit(EventKind::EpochRollover, 1, 0, 0, 0);
        let s3 = r1.emit(EventKind::EpochRollover, 0, 0, 0, 0);
        assert!(
            s1 < s2 && s2 < s3,
            "cross-recorder causality: {s1} {s2} {s3}"
        );
        assert!(current_seq() >= s3);
    }

    #[test]
    fn concurrent_writers_and_reader_stay_consistent() {
        let rec = Arc::new(FlightRecorder::with_capacity(64));
        let writers: Vec<_> = (0..3u16)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    let n = if cfg!(miri) { 50 } else { 5_000 };
                    for i in 0..n {
                        rec.emit(EventKind::Report, w, 1, i, u64::from(w));
                    }
                })
            })
            .collect();
        // Read while writes are in flight: every snapshot must be
        // internally consistent even if it misses in-flux slots.
        let iters = if cfg!(miri) { 5 } else { 200 };
        for _ in 0..iters {
            let events = rec.snapshot();
            for w in events.windows(2) {
                assert!(w[0].seq < w[1].seq);
            }
            for e in &events {
                assert_eq!(e.b, u64::from(e.shard), "payload must match writer");
            }
        }
        for h in writers {
            if h.join().is_err() {
                panic!("writer panicked");
            }
        }
        let final_events = rec.snapshot();
        assert_eq!(final_events.len(), 64, "ring should be full");
    }
}
