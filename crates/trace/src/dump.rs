//! Flight-recorder dump encoding (`qf-flight/v1`).
//!
//! A dump is the JSON serialization of one shard's ring contents at a
//! moment of interest — the supervisor writes one on every restart and
//! quarantine, so each `RecoveryRecord` has a matching pre-crash event
//! trail on disk. The format is hand-rolled (qf-trace is
//! dependency-free) but strict JSON: CI and the chaos tests parse it
//! back.
//!
//! ```json
//! {
//!   "schema": "qf-flight/v1",
//!   "shard": 0,
//!   "generation": 2,
//!   "cause": "panic",
//!   "events": [
//!     {"seq": 41, "kind": 5, "name": "report", "shard": 0,
//!      "generation": 1, "a": 1001, "b": 0},
//!     ...
//!   ]
//! }
//! ```
//!
//! Events are oldest-first and strictly monotone in `seq`. The `cause`
//! string is free-form (the pipeline passes its `CrashCause` debug
//! form) and is JSON-escaped here.

use crate::event::TraceEvent;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Format tag carried in every dump.
pub const DUMP_SCHEMA: &str = "qf-flight/v1";

/// Escape a free-form string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render a dump document. `events` should come straight from
/// [`FlightRecorder::snapshot`](crate::FlightRecorder::snapshot) (oldest
/// first); the order is preserved verbatim.
pub fn render_dump(shard: u16, generation: u32, cause: &str, events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(128 + events.len() * 96);
    let _ = write!(
        out,
        "{{\n  \"schema\": \"{DUMP_SCHEMA}\",\n  \"shard\": {shard},\n  \"generation\": {generation},\n  \"cause\": \""
    );
    escape_json(cause, &mut out);
    out.push_str("\",\n  \"events\": [");
    for (i, e) in events.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    {{\"seq\": {}, \"kind\": {}, \"name\": \"{}\", \"shard\": {}, \"generation\": {}, \"a\": {}, \"b\": {}}}",
            e.seq,
            e.kind as u8,
            e.kind.name(),
            e.shard,
            e.generation,
            e.a,
            e.b
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Canonical dump file name for a shard/sequence pair:
/// `flight-<shard>-<seq>.json`.
pub fn dump_file_name(shard: u16, seq: u64) -> String {
    format!("flight-{shard}-{seq}.json")
}

/// Render and write a dump to `dir/flight-<shard>-<seq>.json`, creating
/// `dir` if needed. Writes to a temp sibling then renames, so a reader
/// never observes a half-written dump. Returns the final path.
///
/// `seq` is the caller's uniqueness axis for this shard — the pipeline
/// passes the fenced worker generation, which bumps on every recovery,
/// so successive dumps for one shard never collide.
pub fn write_dump(
    dir: &Path,
    shard: u16,
    seq: u64,
    generation: u32,
    cause: &str,
    events: &[TraceEvent],
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let body = render_dump(shard, generation, cause, events);
    let final_path = dir.join(dump_file_name(shard, seq));
    let tmp_path = dir.join(format!(".{}.tmp", dump_file_name(shard, seq)));
    fs::write(&tmp_path, body.as_bytes())?;
    fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ring::FlightRecorder;

    #[test]
    fn dump_carries_schema_cause_and_events_in_order() {
        let rec = FlightRecorder::with_capacity(8);
        rec.emit(EventKind::Report, 2, 1, 1001, 0);
        rec.emit(EventKind::WorkerRestart, 2, 2, 1, 5);
        let body = render_dump(2, 2, "panic: \"boom\"\n", &rec.snapshot());
        assert!(body.contains("\"schema\": \"qf-flight/v1\""));
        assert!(body.contains("\"cause\": \"panic: \\\"boom\\\"\\n\""));
        assert!(body.contains("\"name\": \"report\""));
        assert!(body.contains("\"name\": \"worker_restart\""));
        let report_at = match body.find("\"name\": \"report\"") {
            Some(i) => i,
            None => panic!("missing report"),
        };
        let restart_at = match body.find("\"name\": \"worker_restart\"") {
            Some(i) => i,
            None => panic!("missing restart"),
        };
        assert!(report_at < restart_at, "events must stay oldest-first");
    }

    #[test]
    fn empty_event_list_is_still_valid_json_shape() {
        let body = render_dump(0, 0, "", &[]);
        assert!(body.contains("\"events\": [\n  ]"));
    }

    #[test]
    fn write_dump_creates_dir_and_named_file() {
        let dir = std::env::temp_dir().join(format!(
            "qf-trace-dump-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        let rec = FlightRecorder::with_capacity(8);
        rec.emit(EventKind::WorkerQuarantine, 1, 3, 0, 9);
        let path = match write_dump(&dir, 1, 3, 3, "poison", &rec.snapshot()) {
            Ok(p) => p,
            Err(e) => panic!("write_dump: {e}"),
        };
        assert!(path.ends_with("flight-1-3.json"));
        let body = match fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => panic!("read back: {e}"),
        };
        assert!(body.contains("\"cause\": \"poison\""));
        assert!(body.contains("\"name\": \"worker_quarantine\""));
        let _ = fs::remove_dir_all(&dir);
    }
}
