//! qf-trace: dependency-free flight-recorder tracing.
//!
//! The observability layer for the QuantileFilter stack. Where
//! qf-telemetry answers "how many?" with aggregate counters, qf-trace
//! answers "what happened, in what order?" with a bounded trail of
//! fixed-size binary events — the last N things each shard did before a
//! crash, a quarantine, or an operator's `/flight` query.
//!
//! Three pieces:
//!
//! * [`TraceEvent`]/[`EventKind`] — fixed-size binary records for the
//!   control-flow joints that matter after the fact: epoch rollovers,
//!   candidate elections, evictions, reports, checkpoint seals,
//!   backpressure edges, worker restarts/quarantines, snapshot cuts,
//!   and sketch saturations.
//! * [`FlightRecorder`] — a lock-free, bounded, overwrite-oldest ring
//!   of per-slot seqlocks. Writes are wait-free and clock-free; reads
//!   are torn-slot-tolerant snapshots. Events carry process-wide
//!   sequence numbers so cross-shard causality survives the dump.
//! * [`tls`] — the thread-local emit context that lets library crates
//!   (qf-core, qf-sketch) emit without knowing which shard they run
//!   under, and [`dump`] — the `qf-flight/v1` JSON encoding the
//!   supervisor writes on every restart and quarantine.
//!
//! This crate is always compiled but costs nothing unless someone
//! installs a recorder; downstream crates additionally gate every emit
//! call site behind their own `trace` cargo feature so the
//! uninstrumented build compiles the calls out entirely (the same
//! pattern, and the same ≤2% bench bar, as the `telemetry` feature).

#![deny(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod event;
mod ring;

pub mod dump;
pub mod tls;

pub use dump::{dump_file_name, render_dump, write_dump, DUMP_SCHEMA};
pub use event::{pack_meta, unpack_meta, EventKind, TraceEvent};
pub use ring::{current_seq, FlightRecorder};
