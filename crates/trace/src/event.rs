//! Fixed-size binary trace events.
//!
//! A [`TraceEvent`] is the decoded form of one flight-recorder slot: a
//! globally ordered sequence number, an [`EventKind`], the shard and
//! worker generation it was emitted under, and two kind-specific `u64`
//! payload words. The encoded form packs kind/shard/generation into a
//! single `u64` meta word (see [`pack_meta`]/[`unpack_meta`]) so a slot
//! is exactly four machine words and can be written with four relaxed
//! atomic stores.

/// What happened. The discriminants are part of the `qf-flight/v1` dump
/// format: they appear verbatim in dumped JSON (`"kind"` numeric +
/// `"name"` string) and must not be reordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// An epoch boundary: the reset manager rolled the filter over.
    /// `a` = items observed in the finished epoch, `b` = epochs completed.
    EpochRollover = 1,
    /// A candidate election decided to replace the minimum entry.
    /// `a` = challenger's estimated Qweight (bits), `b` = incumbent
    /// minimum Qweight (bits).
    ElectionWin = 2,
    /// A candidate election kept the incumbent. Payload as `ElectionWin`.
    ElectionLoss = 3,
    /// A candidate entry was evicted into the vague part. `a` = evicted
    /// fingerprint, `b` = evicted Qweight (i64 bits).
    Eviction = 4,
    /// An outstanding-quantile report fired. `a` = estimated Qweight
    /// (i64 bits), `b` = 0 for a candidate-part (exact) report, 1 for a
    /// vague-part (estimated) report.
    Report = 5,
    /// The worker sealed a recovery checkpoint. `a` = checkpoint
    /// sequence number, `b` = items applied at seal time.
    CheckpointSeal = 6,
    /// The router's view of a shard queue crossed a backpressure edge.
    /// `a` = 1 entering backpressure, 0 leaving, `b` = items enqueued to
    /// the shard so far.
    Backpressure = 7,
    /// The supervisor restarted the shard's worker. `a` = crash cause
    /// code (see qf-pipeline `CrashCause`), `b` = items lost to the
    /// crash window.
    WorkerRestart = 8,
    /// The supervisor quarantined the shard. Payload as `WorkerRestart`.
    WorkerQuarantine = 9,
    /// A quiesce-barrier snapshot was cut on the worker. `a` = snapshot
    /// byte length, `b` = items applied at the cut.
    SnapshotCut = 10,
    /// A sketch counter saturated instead of wrapping. `a` = row,
    /// `b` = column.
    SketchSaturation = 11,
}

impl EventKind {
    /// Stable lower-case name used in dumped JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EpochRollover => "epoch_rollover",
            EventKind::ElectionWin => "election_win",
            EventKind::ElectionLoss => "election_loss",
            EventKind::Eviction => "eviction",
            EventKind::Report => "report",
            EventKind::CheckpointSeal => "checkpoint_seal",
            EventKind::Backpressure => "backpressure",
            EventKind::WorkerRestart => "worker_restart",
            EventKind::WorkerQuarantine => "worker_quarantine",
            EventKind::SnapshotCut => "snapshot_cut",
            EventKind::SketchSaturation => "sketch_saturation",
        }
    }

    /// Decode a discriminant byte; `None` for anything a torn slot or a
    /// future format could contain.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => EventKind::EpochRollover,
            2 => EventKind::ElectionWin,
            3 => EventKind::ElectionLoss,
            4 => EventKind::Eviction,
            5 => EventKind::Report,
            6 => EventKind::CheckpointSeal,
            7 => EventKind::Backpressure,
            8 => EventKind::WorkerRestart,
            9 => EventKind::WorkerQuarantine,
            10 => EventKind::SnapshotCut,
            11 => EventKind::SketchSaturation,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (process-wide, monotone, starts at 1).
    /// Events from different shards interleave on this axis, which is
    /// what makes cross-shard causality reconstructible from dumps.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Shard the event was emitted under.
    pub shard: u16,
    /// Worker generation at emit time (bumps on every restart).
    pub generation: u32,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

/// Pack kind/shard/generation into one meta word:
/// bits 0..8 kind, 8..24 shard, 24..56 generation (low 32 bits).
#[inline(always)]
pub fn pack_meta(kind: EventKind, shard: u16, generation: u32) -> u64 {
    (kind as u64) | ((shard as u64) << 8) | ((generation as u64) << 24)
}

/// Inverse of [`pack_meta`]; `None` if the kind byte is not a known
/// discriminant (torn slot).
#[inline]
pub fn unpack_meta(meta: u64) -> Option<(EventKind, u16, u32)> {
    let kind = EventKind::from_code((meta & 0xFF) as u8)?;
    let shard = ((meta >> 8) & 0xFFFF) as u16;
    let generation = ((meta >> 24) & 0xFFFF_FFFF) as u32;
    Some((kind, shard, generation))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrips_all_kinds() {
        for code in 1u8..=11 {
            let kind = match EventKind::from_code(code) {
                Some(k) => k,
                None => panic!("code {code} should decode"),
            };
            assert_eq!(kind as u8, code);
            let meta = pack_meta(kind, 0xBEEF, 0xDEAD_0001);
            assert_eq!(unpack_meta(meta), Some((kind, 0xBEEF, 0xDEAD_0001)));
        }
    }

    #[test]
    fn unknown_kind_codes_decode_to_none() {
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(12), None);
        assert_eq!(EventKind::from_code(0xFF), None);
        assert_eq!(unpack_meta(0), None);
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for code in 1u8..=11 {
            let kind = match EventKind::from_code(code) {
                Some(k) => k,
                None => panic!("code {code} should decode"),
            };
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
        }
    }
}
