//! Thread-local emit context.
//!
//! Library crates (qf-core, qf-sketch) emit events without knowing which
//! shard or recorder they run under: the pipeline worker calls
//! [`install`] when it takes ownership of a shard, and every
//! [`emit`] from that thread lands in the shard's flight recorder
//! stamped with the installed shard/generation. Threads with no context
//! installed (single-threaded eval runs, tests, the user's own threads)
//! drop events for free — `emit` is one thread-local read and a branch.

use crate::event::EventKind;
use crate::ring::FlightRecorder;
use qf_model::sync::atomic::{AtomicUsize, Ordering};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

struct TlsCtx {
    rec: Arc<FlightRecorder>,
    shard: u16,
    generation: u32,
}

thread_local! {
    // ACTIVE mirrors CTX.is_some() so the installed check is a TLS bool
    // read with no RefCell borrow-flag traffic.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CTX: RefCell<Option<TlsCtx>> = const { RefCell::new(None) };
}

/// Number of threads with a recorder currently installed, process-wide.
///
/// This is the real fast-path gate: a TLS access still costs several
/// nanoseconds on the saturated-sketch emit path (measured ~25% on the
/// internet-like hotpath workload, whose narrow counters clamp on most
/// inserts), while a relaxed load of a read-mostly static is an
/// ordinary L1 hit. Processes that never install a recorder — every
/// eval/bench/detect run — pay only that load per would-be event.
// sync: counter — relaxed install gate; an emit that misses a racing
// install only drops that event, which TLS handoff tolerates anyway.
static INSTALLED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Bind this thread's emits to `rec`, stamped `shard`/`generation`.
/// Called by the pipeline worker on spawn (and again after a restart
/// bumps the generation). Replaces any previous binding.
pub fn install(rec: Arc<FlightRecorder>, shard: u16, generation: u32) {
    CTX.with(|c| {
        let was_bound = c.borrow().is_some();
        *c.borrow_mut() = Some(TlsCtx {
            rec,
            shard,
            generation,
        });
        if !was_bound {
            INSTALLED_THREADS.fetch_add(1, Ordering::Relaxed);
        }
    });
    ACTIVE.with(|a| a.set(true));
}

/// Drop this thread's binding; subsequent emits are no-ops.
pub fn clear() {
    ACTIVE.with(|a| a.set(false));
    CTX.with(|c| {
        if c.borrow_mut().take().is_some() {
            INSTALLED_THREADS.fetch_sub(1, Ordering::Relaxed);
        }
    });
}

/// Whether this thread currently has a recorder installed. Pre-filtered
/// by the process-wide count, so on recorder-free processes this is one
/// relaxed load — cheap enough for hot emit points to call per event.
#[inline]
pub fn installed() -> bool {
    INSTALLED_THREADS.load(Ordering::Relaxed) != 0 && ACTIVE.with(Cell::get)
}

/// Record one event against this thread's installed recorder, or do
/// nothing if none is installed. Returns the global sequence number of
/// the recorded event (0 when dropped).
#[inline]
pub fn emit(kind: EventKind, a: u64, b: u64) -> u64 {
    if !installed() {
        return 0;
    }
    emit_installed(kind, a, b)
}

/// The installed-thread slow half of [`emit`], kept out of line so the
/// drop path stays a leaf.
#[inline(never)]
fn emit_installed(kind: EventKind, a: u64, b: u64) -> u64 {
    CTX.with(|c| match &*c.borrow() {
        Some(ctx) => ctx.rec.emit(kind, ctx.shard, ctx.generation, a, b),
        None => 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_context_is_dropped() {
        clear();
        assert!(!installed());
        assert_eq!(emit(EventKind::Report, 1, 2), 0);
    }

    #[test]
    fn installed_context_stamps_shard_and_generation() {
        let rec = Arc::new(FlightRecorder::with_capacity(8));
        install(Arc::clone(&rec), 5, 3);
        assert!(installed());
        let seq = emit(EventKind::SnapshotCut, 10, 20);
        assert!(seq > 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, seq);
        assert_eq!(events[0].shard, 5);
        assert_eq!(events[0].generation, 3);
        assert_eq!((events[0].a, events[0].b), (10, 20));
        clear();
        assert_eq!(emit(EventKind::SnapshotCut, 0, 0), 0);
        assert_eq!(rec.snapshot().len(), 1, "post-clear emits must not land");
    }

    #[test]
    fn reinstall_rebinds_generation() {
        let rec = Arc::new(FlightRecorder::with_capacity(8));
        install(Arc::clone(&rec), 2, 1);
        emit(EventKind::CheckpointSeal, 0, 0);
        install(Arc::clone(&rec), 2, 2);
        emit(EventKind::CheckpointSeal, 1, 0);
        let gens: Vec<u32> = rec.snapshot().iter().map(|e| e.generation).collect();
        assert_eq!(gens, vec![1, 2]);
        clear();
    }
}
