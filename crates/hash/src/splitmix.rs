//! SplitMix64: a tiny, high-quality 64-bit mixer and sequence generator.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is used in two roles:
//!
//! 1. [`mix64`] is the finalizer applied to integer keys — it is a bijection
//!    on `u64` with full avalanche, which makes it an excellent stand-in for
//!    a random oracle on fixed-width keys and is far cheaper than running a
//!    byte-oriented hash over eight bytes.
//! 2. [`SplitMix64`] is the seed-expansion generator used to derive the
//!    per-row seeds of a [`crate::family::HashFamily`] from a single user
//!    seed, guaranteeing the rows are pairwise distinct.

/// Finalization mix of SplitMix64: a full-avalanche bijection on `u64`.
#[inline(always)]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix two words into one; used to combine a seed with a key.
#[inline(always)]
pub fn mix64_pair(seed: u64, x: u64) -> u64 {
    mix64(seed ^ mix64(x))
}

/// A deterministic stream of decorrelated 64-bit values.
///
/// This is *not* a statistical RNG for simulation (the workload generators
/// use the `rand` crate); it exists purely to expand one experiment seed
/// into the many internal seeds a sketch needs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an arbitrary seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// The current internal state, for snapshotting. A generator rebuilt
    /// with [`Self::from_state`] continues the exact same sequence.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Resume a generator from a snapshotted [`Self::state`].
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_sample() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0u64..10_000).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn mix64_avalanches_single_bit_flips() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let trials = 64 * 64;
        for i in 0..64u64 {
            for j in 0..64 {
                let a = mix64(1u64 << i);
                let b = mix64((1u64 << i) ^ (1u64 << j));
                if i != j {
                    total += (a ^ b).count_ones();
                }
            }
        }
        let avg = f64::from(total) / f64::from(trials - 64);
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg}");
    }

    #[test]
    fn splitmix_sequence_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_streams_differ_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
