//! Seeded hash families: the `h_i`, `S_i` and `h_b` functions of Table I.
//!
//! A [`HashFamily`] owns `d` independent per-row seeds derived from one
//! master seed. For each row `i` it can produce
//!
//! * a column index `h_i(x) ∈ [0, w)` ([`HashFamily::column`]), and
//! * a sign `S_i(x) ∈ {−1, +1}` ([`HashFamily::sign`])
//!
//! from a *single* 64-bit hash evaluation per row: the low bits select the
//! column and bit 63 selects the sign, which keeps the per-item work of the
//! Count sketch at `d` hash calls, matching the paper's constant-time
//! insertion claim.

use crate::key::StreamKey;
use crate::splitmix::{mix64, SplitMix64};

/// Bit 63 of the raw hash carries the sign `S_i(x)`; the column computation
/// masks it out so sign and column are statistically independent.
const SIGN_MASK: u64 = (1 << 63) - 1;

/// A family of `d` seeded hash functions over `[0, w)` with paired signs.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u64>,
    width: usize,
}

impl HashFamily {
    /// Build a family of `rows` functions over columns `[0, width)` from a
    /// master seed.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `width == 0`.
    pub fn new(rows: usize, width: usize, master_seed: u64) -> Self {
        assert!(rows > 0, "hash family needs at least one row");
        assert!(width > 0, "hash family needs a positive width");
        let mut gen = SplitMix64::new(master_seed);
        let seeds = (0..rows).map(|_| gen.next_u64()).collect();
        Self { seeds, width }
    }

    /// Number of rows `d`.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.seeds.len()
    }

    /// Number of columns `w`.
    #[inline(always)]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raw 64-bit hash of `key` in row `i`.
    #[inline(always)]
    pub fn raw<K: StreamKey + ?Sized>(&self, row: usize, key: &K) -> u64 {
        key.hash_with_seed(self.seeds[row])
    }

    /// Column index `h_i(x)` for row `i`.
    #[inline(always)]
    pub fn column<K: StreamKey + ?Sized>(&self, row: usize, key: &K) -> usize {
        // Multiply-shift range reduction avoids the modulo bias and the
        // division; requires only that the hash's high bits be good, which
        // mix64/xxh64 guarantee. Bit 63 is masked out because it is reserved
        // for the sign — the column must be independent of S_i(x).
        let h = self.raw(row, key) & SIGN_MASK;
        ((u128::from(h) * (self.width as u128)) >> 63) as usize
    }

    /// Sign `S_i(x) ∈ {−1, +1}` for row `i`.
    #[inline(always)]
    pub fn sign<K: StreamKey + ?Sized>(&self, row: usize, key: &K) -> i64 {
        // Bit 63 is independent of the bits consumed by `column` (which uses
        // bits 0..=62 via the multiply-shift above).
        if self.raw(row, key) >> 63 == 0 {
            1
        } else {
            -1
        }
    }

    /// Column and sign together from one hash evaluation — the hot path.
    #[inline(always)]
    pub fn column_and_sign<K: StreamKey + ?Sized>(&self, row: usize, key: &K) -> (usize, i64) {
        let h = self.raw(row, key);
        let col = ((u128::from(h & SIGN_MASK) * (self.width as u128)) >> 63) as usize;
        let sign = if h >> 63 == 0 { 1 } else { -1 };
        (col, sign)
    }

    /// Raw row hash from a key's [`StreamKey::prehash`] digest. Bit-identical
    /// to [`HashFamily::raw`] by the prehash contract, one mix round instead
    /// of two.
    #[inline(always)]
    pub fn raw_prehashed(&self, row: usize, prehash: u64) -> u64 {
        mix64(self.seeds[row] ^ prehash)
    }

    /// Column and sign from a prehash digest — bit-identical to
    /// [`HashFamily::column_and_sign`] for the key that produced it.
    #[inline(always)]
    pub fn column_and_sign_prehashed(&self, row: usize, prehash: u64) -> (usize, i64) {
        let h = self.raw_prehashed(row, prehash);
        let col = ((u128::from(h & SIGN_MASK) * (self.width as u128)) >> 63) as usize;
        let sign = if h >> 63 == 0 { 1 } else { -1 };
        (col, sign)
    }

    /// Heap size of this family in bytes (seed table only).
    pub fn memory_bytes(&self) -> usize {
        self.seeds.len() * core::mem::size_of::<u64>()
    }

    /// The per-row seed table, for snapshotting.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Rebuild a family from a snapshotted seed table and width. Returns
    /// `None` (instead of panicking) when the dimensions are degenerate, so
    /// the restore path stays panic-free on corrupted input.
    pub fn from_seeds(seeds: Vec<u64>, width: usize) -> Option<Self> {
        if seeds.is_empty() || width == 0 {
            return None;
        }
        Some(Self { seeds, width })
    }
}

/// A single seeded hash over `[0, buckets)` — the bucket hash `h_b` of the
/// candidate part.
#[derive(Debug, Clone)]
pub struct RowHasher {
    seed: u64,
    range: usize,
}

impl RowHasher {
    /// Build a hasher over `[0, range)`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    pub fn new(range: usize, seed: u64) -> Self {
        assert!(range > 0, "RowHasher range must be positive");
        Self { seed, range }
    }

    /// The output range.
    #[inline(always)]
    pub fn range(&self) -> usize {
        self.range
    }

    /// The seed, for snapshotting.
    #[inline(always)]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rebuild a hasher from snapshotted parts; `None` when `range == 0`.
    pub fn from_parts(range: usize, seed: u64) -> Option<Self> {
        if range == 0 {
            return None;
        }
        Some(Self { seed, range })
    }

    /// Map a key to `[0, range)`.
    #[inline(always)]
    pub fn index<K: StreamKey + ?Sized>(&self, key: &K) -> usize {
        let h = key.hash_with_seed(self.seed);
        ((u128::from(h) * (self.range as u128)) >> 64) as usize
    }

    /// Map a key's [`StreamKey::prehash`] digest to `[0, range)` —
    /// bit-identical to [`RowHasher::index`] for the key that produced it.
    #[inline(always)]
    pub fn index_prehashed(&self, prehash: u64) -> usize {
        let h = mix64(self.seed ^ prehash);
        ((u128::from(h) * (self.range as u128)) >> 64) as usize
    }
}

/// A seeded ±1 hash usable on its own (e.g. by the naive dual-sketch
/// solution, which signs each sketch independently).
#[derive(Debug, Clone)]
pub struct SignHasher {
    seed: u64,
}

impl SignHasher {
    /// Build a sign hasher.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Return +1 or −1 with equal probability over keys.
    #[inline(always)]
    pub fn sign<K: StreamKey + ?Sized>(&self, key: &K) -> i64 {
        if key.hash_with_seed(self.seed) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_in_range() {
        let fam = HashFamily::new(4, 97, 42);
        for row in 0..4 {
            for k in 0u64..5000 {
                assert!(fam.column(row, &k) < 97);
            }
        }
    }

    #[test]
    fn columns_roughly_uniform() {
        let fam = HashFamily::new(1, 64, 7);
        let mut counts = vec![0u32; 64];
        for k in 0u64..64_000 {
            counts[fam.column(0, &k)] += 1;
        }
        for &c in &counts {
            let dev = (f64::from(c) - 1000.0).abs() / 1000.0;
            assert!(dev < 0.25, "deviation {dev}");
        }
    }

    #[test]
    fn signs_balanced() {
        let fam = HashFamily::new(3, 16, 9);
        for row in 0..3 {
            let pos: i64 = (0u64..20_000).map(|k| fam.sign(row, &k)).sum();
            assert!(pos.abs() < 600, "row {row} imbalance {pos}");
        }
    }

    #[test]
    fn rows_are_independent() {
        // Same key must land in different columns in most row pairs.
        let fam = HashFamily::new(8, 1024, 1);
        let mut collisions = 0;
        for k in 0u64..1000 {
            for a in 0..8 {
                for b in (a + 1)..8 {
                    if fam.column(a, &k) == fam.column(b, &k) {
                        collisions += 1;
                    }
                }
            }
        }
        // 28 row pairs * 1000 keys, expected collisions ≈ 28000/1024 ≈ 27.
        assert!(collisions < 100, "collisions {collisions}");
    }

    #[test]
    fn column_and_sign_matches_separate_calls() {
        let fam = HashFamily::new(5, 333, 77);
        for row in 0..5 {
            for k in 0u64..200 {
                let (c, s) = fam.column_and_sign(row, &k);
                assert_eq!(c, fam.column(row, &k));
                assert_eq!(s, fam.sign(row, &k));
            }
        }
    }

    #[test]
    fn sign_independent_of_column_collisions() {
        // Regression test: colliding keys must NOT share signs, or the
        // Count sketch estimator becomes positively biased.
        let mut sum = 0i64;
        let mut n = 0i64;
        for seed in 0..500u64 {
            let fam = HashFamily::new(1, 16, seed);
            let c0 = fam.column(0, &0u64);
            let s0 = fam.sign(0, &0u64);
            for k in 1u64..100 {
                if fam.column(0, &k) == c0 {
                    sum += s0 * fam.sign(0, &k);
                    n += 1;
                }
            }
        }
        let mean = sum as f64 / n as f64;
        assert!(
            mean.abs() < 0.05,
            "sign/column correlation {mean} over {n} collisions"
        );
    }

    #[test]
    fn row_hasher_range_and_uniformity() {
        let rh = RowHasher::new(13, 5);
        let mut counts = vec![0u32; 13];
        for k in 0u64..13_000 {
            let i = rh.index(&k);
            assert!(i < 13);
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) - 1000.0).abs() < 250.0);
        }
    }

    #[test]
    fn sign_hasher_balanced() {
        let sh = SignHasher::new(3);
        let sum: i64 = (0u64..10_000).map(|k| sh.sign(&k)).sum();
        assert!(sum.abs() < 400, "imbalance {sum}");
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_panics() {
        let _ = HashFamily::new(1, 0, 0);
    }

    #[test]
    fn prehashed_paths_match_direct_hashing() {
        let fam = HashFamily::new(5, 333, 77);
        let rh = RowHasher::new(97, 0xFACE);
        for k in 0u64..500 {
            let p = k.prehash().expect("u64 keys expose a prehash");
            for row in 0..5 {
                assert_eq!(fam.raw_prehashed(row, p), fam.raw(row, &k));
                assert_eq!(
                    fam.column_and_sign_prehashed(row, p),
                    fam.column_and_sign(row, &k)
                );
            }
            assert_eq!(rh.index_prehashed(p), rh.index(&k));
        }
    }
}
