//! MurmurHash3 x64/128 implemented from scratch.
//!
//! Kept as an independent hash family from [`crate::xxhash`] so that tests
//! and experiments can cross-validate that results do not depend on one
//! specific hash function's quirks (the paper's guarantees assume only
//! pairwise-independent hashing).

const C1: u64 = 0x87C3_7B91_1142_53D5;
const C2: u64 = 0x4CF5_AD43_2745_937F;

#[inline(always)]
fn read_u64_le(bytes: &[u8], at: usize) -> u64 {
    let b = &bytes[at..at + 8];
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[inline(always)]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^ (k >> 33)
}

/// Compute MurmurHash3 x64/128 of `data` under a 64-bit seed, returning the
/// two 64-bit halves `(h1, h2)`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let len = data.len();
    let n_blocks = len / 16;
    let mut h1 = seed;
    let mut h2 = seed;

    for b in 0..n_blocks {
        let k1 = read_u64_le(data, b * 16);
        let k2 = read_u64_le(data, b * 16 + 8);

        h1 ^= k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52DC_E729);

        h2 ^= k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5AB5);
    }

    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    // The reference implementation switches on len & 15 with fallthrough;
    // the chained ifs below replicate that byte accumulation exactly.
    let t = tail.len();
    if t >= 9 {
        for i in (8..t).rev() {
            k2 ^= u64::from(tail[i]) << ((i - 8) * 8);
        }
        h2 ^= k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
    }
    if t >= 1 {
        for i in (0..t.min(8)).rev() {
            k1 ^= u64::from(tail[i]) << (i * 8);
        }
        h1 ^= k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// Convenience wrapper returning only the first 64-bit half.
#[inline]
pub fn murmur3_64(data: &[u8], seed: u64) -> u64 {
    murmur3_x64_128(data, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let msg = b"quantile filter";
        assert_eq!(murmur3_x64_128(msg, 5), murmur3_x64_128(msg, 5));
        assert_ne!(murmur3_64(msg, 5), murmur3_64(msg, 6));
    }

    #[test]
    fn halves_are_decorrelated() {
        let (h1, h2) = murmur3_x64_128(b"some key material", 0);
        assert_ne!(h1, h2);
    }

    #[test]
    fn tail_lengths_all_distinct() {
        let data: Vec<u8> = (1u8..=32).collect();
        let mut seen = std::collections::HashSet::new();
        for l in 0..=32usize {
            assert!(
                seen.insert(murmur3_64(&data[..l], 1)),
                "collision at len {l}"
            );
        }
    }

    #[test]
    fn distribution_uniform_over_buckets() {
        let mut buckets = [0u32; 128];
        for k in 0u64..32768 {
            let h = murmur3_64(&k.to_le_bytes(), 0);
            buckets[(h % 128) as usize] += 1;
        }
        let expect = 32768.0 / 128.0;
        for &b in &buckets {
            assert!((f64::from(b) - expect).abs() / expect < 0.35);
        }
    }

    #[test]
    fn agrees_with_itself_across_block_boundaries() {
        // 16-byte block boundary handling: prefix property must NOT hold.
        let long = vec![0xABu8; 48];
        let h48 = murmur3_64(&long, 9);
        let h32 = murmur3_64(&long[..32], 9);
        assert_ne!(h48, h32);
    }
}
