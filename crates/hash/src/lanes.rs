//! Per-insert hash precomputation: [`HashedKey`] and [`RowLanes`].
//!
//! The paper's O(1)-per-item claim is about *hash evaluations*, not just
//! counter touches: Table I's functions `h_b`, `h_fp`, `h_i`, `S_i` are
//! each supposed to run once per item. The original hot path recomputed
//! the per-row `(h_i(x), S_i(x))` pairs inside every sketch operation —
//! `add`, `estimate`, and `remove_estimate` each rehashed the key against
//! all `d` row seeds, so a vague-path insert cost up to `4d` row hashes
//! instead of `d` (Ivkin et al. make the same observation for KLL-family
//! summaries: update cost, not space, binds at line rate).
//!
//! This module is the fix. A [`RowLanes`] value captures every per-row
//! coordinate of one key in a single pass over the hash family; the
//! sketches then accept the lanes instead of the key, so the row hashes
//! are computed exactly once per insert no matter how many sketch
//! operations the control flow performs. [`HashedKey`] is the analogous
//! capture of the candidate-part coordinates: the 128-bit digest formed by
//! the bucket hash word and the fingerprint hash word, reduced to
//! `(h_b(x), h_fp(x))` once and carried through the whole insert.
//!
//! Both types are plain `Copy` data with no heap storage, so caching them
//! per insert costs a few stack bytes and nothing else.

use crate::family::HashFamily;
use crate::key::StreamKey;

/// Maximum number of rows a [`RowLanes`] can carry. Deliberately *smaller*
/// than the sketches' depth ceiling (`qf_sketch::count_sketch::MAX_DEPTH` is
/// 32): a `RowLanes` lives on the per-item hot path, where its fixed column
/// array is zero-initialized and copied on every insert, so its footprint is
/// sized for the depths that path actually runs (the paper's default is
/// `d = 3`; Table II never exceeds 8) rather than the diagnostic sweeps of
/// Fig. 9. Families deeper than this fall back to per-call hashing — slower,
/// never wrong.
pub const MAX_LANES: usize = 8;

/// The candidate-part coordinates of one key: bucket index `h_b(x)` and
/// 16-bit fingerprint `h_fp(x)`, computed once per insert from the two
/// 64-bit halves of the key's candidate digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedKey {
    /// The candidate bucket `h_b(x)`.
    pub bucket: usize,
    /// The candidate fingerprint `h_fp(x)`.
    pub fp: u16,
}

/// All `d` per-row `(h_i(x), S_i(x))` coordinates of one key under a
/// [`HashFamily`], computed in one pass.
///
/// Columns are stored as a fixed array (no allocation — this type is built
/// on the per-item hot path); signs are packed into one bitmask word. A
/// family deeper than [`MAX_LANES`] yields an *empty* lanes value, which
/// consumers treat as "no precomputation available" and serve from the key
/// instead — so correctness never depends on the depth ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowLanes {
    cols: [u32; MAX_LANES],
    /// Bit `i` set ⇔ row `i`'s sign is −1.
    neg: u32,
    len: u8,
}

impl RowLanes {
    /// The "no precomputation" value: zero rows. Sketches receiving this
    /// fall back to hashing the key per call.
    #[inline(always)]
    pub const fn empty() -> Self {
        Self {
            cols: [0; MAX_LANES],
            neg: 0,
            len: 0,
        }
    }

    /// Number of rows captured.
    #[inline(always)]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// `true` when no rows are captured (the fallback marker).
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column index `h_i(x)` of row `i`.
    ///
    /// # Panics
    /// Panics if `row >= MAX_LANES` (callers iterate `0..self.len()`).
    #[inline(always)]
    pub fn col(&self, row: usize) -> usize {
        self.cols[row] as usize
    }

    /// Sign `S_i(x) ∈ {−1, +1}` of row `i`.
    #[inline(always)]
    pub fn sign(&self, row: usize) -> i64 {
        if self.neg >> row & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Iterate `(column, sign)` over the captured rows.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        (0..self.len()).map(move |row| (self.col(row), self.sign(row)))
    }
}

impl HashFamily {
    /// Capture every row's `(column, sign)` for `key` in one pass — the
    /// per-insert precomputation of the one-pass hot path. Returns
    /// [`RowLanes::empty`] when the family is deeper than [`MAX_LANES`] or
    /// wider than `u32` columns can index, in which case callers serve the
    /// key per call exactly as before.
    #[inline]
    pub fn lanes<K: StreamKey + ?Sized>(&self, key: &K) -> RowLanes {
        let rows = self.rows();
        if rows > MAX_LANES || self.width() > u32::MAX as usize {
            return RowLanes::empty();
        }
        // Fixed-width keys factor through a seed-independent prehash digest
        // (see `StreamKey::prehash`): the d row hashes then each cost one
        // mix round instead of two, bit-identically.
        if let Some(p) = key.prehash() {
            return self.lanes_prehashed_unchecked(p, rows);
        }
        let mut lanes = RowLanes {
            cols: [0; MAX_LANES],
            neg: 0,
            len: rows as u8,
        };
        for row in 0..rows {
            let (col, sign) = self.column_and_sign(row, key);
            lanes.cols[row] = col as u32;
            lanes.neg |= u32::from(sign < 0) << row;
        }
        lanes
    }

    /// [`HashFamily::lanes`] from a key's [`StreamKey::prehash`] digest —
    /// bit-identical lanes at one mix round per row. Same depth/width
    /// fallback as `lanes`.
    #[inline]
    pub fn lanes_prehashed(&self, prehash: u64) -> RowLanes {
        let rows = self.rows();
        if rows > MAX_LANES || self.width() > u32::MAX as usize {
            return RowLanes::empty();
        }
        self.lanes_prehashed_unchecked(prehash, rows)
    }

    #[inline(always)]
    fn lanes_prehashed_unchecked(&self, prehash: u64, rows: usize) -> RowLanes {
        let mut lanes = RowLanes {
            cols: [0; MAX_LANES],
            neg: 0,
            len: rows as u8,
        };
        for row in 0..rows {
            let (col, sign) = self.column_and_sign_prehashed(row, prehash);
            lanes.cols[row] = col as u32;
            lanes.neg |= u32::from(sign < 0) << row;
        }
        lanes
    }

    /// Column-wise batch lane fill: capture lanes for a whole chunk of
    /// prehash digests, walking row-major so each row's seed stays hot and
    /// the digest slice streams once per row. Bit-identical to calling
    /// [`HashFamily::lanes_prehashed`] per digest; on depth/width fallback
    /// every output is [`RowLanes::empty`].
    ///
    /// # Panics
    /// Panics if `out` is shorter than `prehashes`.
    #[inline]
    pub fn fill_lanes_prehashed(&self, prehashes: &[u64], out: &mut [RowLanes]) {
        let n = prehashes.len();
        assert!(out.len() >= n, "lane output buffer too short");
        let rows = self.rows();
        if rows > MAX_LANES || self.width() > u32::MAX as usize {
            for lanes in &mut out[..n] {
                *lanes = RowLanes::empty();
            }
            return;
        }
        for lanes in &mut out[..n] {
            *lanes = RowLanes {
                cols: [0; MAX_LANES],
                neg: 0,
                len: rows as u8,
            };
        }
        for row in 0..rows {
            for (lanes, &p) in out[..n].iter_mut().zip(prehashes) {
                let (col, sign) = self.column_and_sign_prehashed(row, p);
                lanes.cols[row] = col as u32;
                lanes.neg |= u32::from(sign < 0) << row;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_per_call_hashing() {
        let fam = HashFamily::new(7, 513, 0xABCD);
        for k in 0u64..500 {
            let lanes = fam.lanes(&k);
            assert_eq!(lanes.len(), 7);
            assert!(!lanes.is_empty());
            for row in 0..7 {
                let (col, sign) = fam.column_and_sign(row, &k);
                assert_eq!(lanes.col(row), col, "key {k} row {row} column");
                assert_eq!(lanes.sign(row), sign, "key {k} row {row} sign");
            }
        }
    }

    #[test]
    fn iter_yields_all_rows_in_order() {
        let fam = HashFamily::new(4, 64, 9);
        let lanes = fam.lanes(&1234u64);
        let collected: Vec<(usize, i64)> = lanes.iter().collect();
        assert_eq!(collected.len(), 4);
        for (row, &(col, sign)) in collected.iter().enumerate() {
            assert_eq!((col, sign), fam.column_and_sign(row, &1234u64));
        }
    }

    #[test]
    fn empty_lanes_are_the_fallback_marker() {
        let lanes = RowLanes::empty();
        assert!(lanes.is_empty());
        assert_eq!(lanes.len(), 0);
        assert_eq!(lanes.iter().count(), 0);
    }

    #[test]
    fn max_depth_families_still_capture() {
        let fam = HashFamily::new(MAX_LANES, 100, 3);
        let lanes = fam.lanes(&7u64);
        assert_eq!(lanes.len(), MAX_LANES);
        // Row 31's sign must round-trip through the top bit of the mask.
        assert_eq!(lanes.sign(MAX_LANES - 1), fam.sign(MAX_LANES - 1, &7u64));
    }

    #[test]
    fn prehashed_lanes_match_keyed_lanes() {
        let fam = HashFamily::new(3, 2184, 0x7A63);
        for k in 0u64..800 {
            let p = k.prehash().expect("u64 keys expose a prehash");
            let direct = fam.lanes(&k);
            let pre = fam.lanes_prehashed(p);
            assert_eq!(pre.len(), direct.len());
            for row in 0..3 {
                assert_eq!(pre.col(row), direct.col(row), "key {k} row {row}");
                assert_eq!(pre.sign(row), direct.sign(row), "key {k} row {row}");
            }
        }
    }

    #[test]
    fn batch_fill_matches_per_key_lanes() {
        let fam = HashFamily::new(4, 509, 0xBEEF);
        let prehashes: Vec<u64> = (0u64..100)
            .map(|k| k.prehash().expect("u64 keys expose a prehash"))
            .collect();
        let mut out = [RowLanes::empty(); 128];
        fam.fill_lanes_prehashed(&prehashes, &mut out);
        for (i, k) in (0u64..100).enumerate() {
            let want = fam.lanes(&k);
            assert_eq!(out[i].len(), want.len());
            for row in 0..4 {
                assert_eq!(out[i].col(row), want.col(row), "key {k} row {row}");
                assert_eq!(out[i].sign(row), want.sign(row), "key {k} row {row}");
            }
        }
    }

    #[test]
    fn batch_fill_deep_family_yields_empty_lanes() {
        let fam = HashFamily::new(MAX_LANES + 1, 64, 5);
        let prehashes = [1u64, 2, 3];
        let mut out = [RowLanes::empty(); 3];
        fam.fill_lanes_prehashed(&prehashes, &mut out);
        for lanes in &out {
            assert!(lanes.is_empty());
        }
    }

    #[test]
    fn string_keys_capture_like_integers() {
        let fam = HashFamily::new(3, 4096, 11);
        let lanes = fam.lanes("flow-key-17");
        for row in 0..3 {
            assert_eq!(
                (lanes.col(row), lanes.sign(row)),
                fam.column_and_sign(row, "flow-key-17")
            );
        }
    }
}
