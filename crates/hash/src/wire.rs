//! Little-endian binary serialization primitives for snapshot files.
//!
//! The crash-safety layer (qf-core's `snapshot` module) persists every
//! structure as a flat byte stream. This module provides the two halves of
//! that wire format:
//!
//! * [`ByteWriter`] — an append-only buffer with fixed-width little-endian
//!   integer/float encoders. Writing is infallible.
//! * [`ByteReader`] — a cursor over a byte slice whose every read is
//!   fallible: a truncated or corrupted snapshot surfaces as a
//!   [`WireError`] instead of a panic, which is the foundation of the
//!   panic-free restore path.
//!
//! All multi-byte values are little-endian. Floats are serialized via
//! their IEEE-754 bit patterns ([`f64::to_bits`]) so round-trips are
//! byte-exact, including for non-canonical NaNs.

/// Decoding failure: the snapshot bytes cannot be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value could be read.
    Truncated,
    /// A field decoded to a structurally invalid value.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::Invalid(reason) => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Start an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// View the encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (byte-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append the low `width` bytes of `v` (two's complement). Used for
    /// narrow sketch counters, whose cell width is 1–8 bytes.
    pub fn put_int_narrow(&mut self, v: i64, width: usize) {
        debug_assert!((1..=8).contains(&width));
        self.buf.extend_from_slice(&v.to_le_bytes()[..width]);
    }
}

/// Fallible little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the cursor is at the end.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.get_bytes(1)?[0])
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.get_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.get_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.get_bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read an `i32`.
    pub fn get_i32(&mut self) -> Result<i32, WireError> {
        let b = self.get_bytes(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        let b = self.get_bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `width`-byte two's-complement integer, sign-extended to
    /// `i64` — the inverse of [`ByteWriter::put_int_narrow`].
    pub fn get_int_narrow(&mut self, width: usize) -> Result<i64, WireError> {
        if !(1..=8).contains(&width) {
            return Err(WireError::Invalid("counter width out of range"));
        }
        let b = self.get_bytes(width)?;
        // Sign-extend: place the bytes at the top of a u64 and shift down
        // arithmetically.
        let mut a = [0u8; 8];
        a[8 - width..].copy_from_slice(b);
        Ok(i64::from_le_bytes(a) >> (8 * (8 - width)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_i32(-12345);
        w.put_i64(-987_654_321_000);
        w.put_f64(-2.5e-300);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i32().unwrap(), -12345);
        assert_eq!(r.get_i64().unwrap(), -987_654_321_000);
        assert_eq!(r.get_f64().unwrap(), -2.5e-300);
        assert_eq!(r.get_bytes(4).unwrap(), b"tail");
        assert!(r.is_empty());
    }

    #[test]
    fn f64_bit_exact_nan() {
        let weird_nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = ByteWriter::new();
        w.put_f64(weird_nan);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).get_f64().unwrap();
        assert_eq!(got.to_bits(), weird_nan.to_bits());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u64(), Err(WireError::Truncated));
        // Cursor untouched by the failed read's partial progress guard.
        assert_eq!(r.get_u16().unwrap(), 0x0201);
        assert_eq!(r.get_u32(), Err(WireError::Truncated));
        assert_eq!(r.get_u8().unwrap(), 3);
        assert_eq!(r.get_u8(), Err(WireError::Truncated));
    }

    #[test]
    fn narrow_ints_sign_extend() {
        for width in 1..=8usize {
            let lo = i64::MIN >> (8 * (8 - width));
            let hi = i64::MAX >> (8 * (8 - width));
            for v in [lo, -1, 0, 1, hi] {
                let mut w = ByteWriter::new();
                w.put_int_narrow(v, width);
                let bytes = w.into_bytes();
                assert_eq!(bytes.len(), width);
                let got = ByteReader::new(&bytes).get_int_narrow(width).unwrap();
                assert_eq!(got, v, "width {width} value {v}");
            }
        }
    }

    #[test]
    fn narrow_int_bad_width_rejected() {
        let mut r = ByteReader::new(&[0; 16]);
        assert!(matches!(r.get_int_narrow(0), Err(WireError::Invalid(_))));
        assert!(matches!(r.get_int_narrow(9), Err(WireError::Invalid(_))));
    }
}
