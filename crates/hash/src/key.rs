//! Stream key types and the [`StreamKey`] trait.
//!
//! The paper's stream model (Definition 1) is a sequence of `⟨key, value⟩`
//! pairs where keys may be anything hashable: the CAIDA dataset keys are
//! network five-tuples, the Zipf dataset uses integer ids, and §III-C's
//! multi-criteria extension forms composite `(key, criterion-id)` keys.
//! [`StreamKey`] abstracts over all of them with a single seeded 64-bit
//! hash entry point that the [`crate::family`] hash families build on.

use crate::splitmix::{mix64, mix64_pair};
use crate::xxhash::xxh64;

/// A key that can flow through the sketches.
///
/// Implementors must provide a high-quality seeded 64-bit hash: two distinct
/// seeds must behave like two independent hash functions. Fixed-width
/// integer keys use the SplitMix64 bijection; variable-length keys use
/// xxHash64.
pub trait StreamKey {
    /// Hash this key under `seed`.
    fn hash_with_seed(&self, seed: u64) -> u64;

    /// A seed-independent 64-bit digest `p` such that
    /// `hash_with_seed(seed) == mix64(seed ^ p)` for every seed, or `None`
    /// when no such factoring exists (variable-length keys hashed with
    /// xxHash64 mix the seed into every block).
    ///
    /// This is the data-parallel hot path's hash-sharing hook: a key hashed
    /// under `n` different seeds (bucket, fingerprint, `d` sketch rows)
    /// costs `n + 1` mix rounds instead of `2n`, and batch ingest can
    /// digest a whole chunk of keys in one dense pass before fanning out
    /// per-seed. Implementations MUST preserve the identity above exactly —
    /// every hash consumer assumes prehash-based and direct hashing are
    /// bit-identical.
    #[inline(always)]
    fn prehash(&self) -> Option<u64> {
        None
    }
}

impl StreamKey for u64 {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        mix64_pair(seed, *self)
    }

    // mix64_pair(seed, x) = mix64(seed ^ mix64(x)).
    #[inline(always)]
    fn prehash(&self) -> Option<u64> {
        Some(mix64(*self))
    }
}

impl StreamKey for u32 {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        mix64_pair(seed, u64::from(*self))
    }

    #[inline(always)]
    fn prehash(&self) -> Option<u64> {
        Some(mix64(u64::from(*self)))
    }
}

impl StreamKey for u128 {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        let lo = *self as u64;
        let hi = (*self >> 64) as u64;
        mix64_pair(seed ^ mix64(hi), lo)
    }

    // mix64_pair(seed ^ mix64(hi), lo) = mix64(seed ^ mix64(hi) ^ mix64(lo)).
    #[inline(always)]
    fn prehash(&self) -> Option<u64> {
        let lo = *self as u64;
        let hi = (*self >> 64) as u64;
        Some(mix64(hi) ^ mix64(lo))
    }
}

impl StreamKey for i64 {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        mix64_pair(seed, *self as u64)
    }

    #[inline(always)]
    fn prehash(&self) -> Option<u64> {
        Some(mix64(*self as u64))
    }
}

impl StreamKey for [u8] {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        xxh64(self, seed)
    }
}

impl StreamKey for str {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        xxh64(self.as_bytes(), seed)
    }
}

impl StreamKey for String {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        xxh64(self.as_bytes(), seed)
    }
}

impl<const N: usize> StreamKey for [u8; N] {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        xxh64(self, seed)
    }
}

impl<K: StreamKey + ?Sized> StreamKey for &K {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        (**self).hash_with_seed(seed)
    }

    #[inline(always)]
    fn prehash(&self) -> Option<u64> {
        (**self).prehash()
    }
}

/// Composite key for multi-criteria monitoring (§III-C): the original data
/// key combined with a criterion number, so one physical key can be watched
/// under `r` different `⟨ε, δ, T⟩` criteria as `r` logical keys.
impl<K: StreamKey> StreamKey for (K, u32) {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        self.0
            .hash_with_seed(seed ^ mix64(0x6372_6974 ^ u64::from(self.1)))
    }

    // With p0 = self.0.prehash(): hash_with_seed(seed)
    //   = mix64((seed ^ mix64(crit)) ^ p0) = mix64(seed ^ (p0 ^ mix64(crit))).
    #[inline]
    fn prehash(&self) -> Option<u64> {
        self.0
            .prehash()
            .map(|p0| p0 ^ mix64(0x6372_6974 ^ u64::from(self.1)))
    }
}

/// A network five-tuple: the key type of the paper's Internet (CAIDA) and
/// Cloud (Yahoo) datasets — source/destination IPv4 addresses, ports and
/// protocol number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, ...).
    pub protocol: u8,
}

impl FiveTuple {
    /// Pack the tuple into 13 canonical bytes (network order) for hashing
    /// and trace serialization.
    #[inline]
    pub fn to_bytes(self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        out[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = self.protocol;
        out
    }

    /// Rebuild a tuple from its canonical byte form.
    #[inline]
    pub fn from_bytes(bytes: &[u8; 13]) -> Self {
        Self {
            src_ip: u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            dst_ip: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            src_port: u16::from_be_bytes([bytes[8], bytes[9]]),
            dst_port: u16::from_be_bytes([bytes[10], bytes[11]]),
            protocol: bytes[12],
        }
    }

    /// Pack the tuple into a `u128` (13 significant bytes) — a compact id
    /// usable as a map key in ground-truth structures.
    #[inline]
    pub fn as_u128(self) -> u128 {
        let b = self.to_bytes();
        let mut x: u128 = 0;
        for &byte in &b {
            x = (x << 8) | u128::from(byte);
        }
        x
    }
}

impl StreamKey for FiveTuple {
    #[inline]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        // Two mix rounds over the packed 128-bit form: cheaper than running
        // xxh64 over 13 bytes and just as well-distributed for this width.
        self.as_u128().hash_with_seed(seed)
    }

    #[inline]
    fn prehash(&self) -> Option<u64> {
        self.as_u128().prehash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn integer_keys_distribute() {
        let hs: HashSet<u64> = (0u64..10_000).map(|k| k.hash_with_seed(1)).collect();
        assert_eq!(hs.len(), 10_000);
    }

    #[test]
    fn seeds_decorrelate() {
        // Over many keys, h(seed1) == h(seed2) should basically never occur.
        let matches = (0u64..10_000)
            .filter(|k| k.hash_with_seed(10) == k.hash_with_seed(11))
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn five_tuple_roundtrip() {
        let t = FiveTuple {
            src_ip: 0x0A00_0001,
            dst_ip: 0xC0A8_0101,
            src_port: 443,
            dst_port: 55321,
            protocol: 6,
        };
        assert_eq!(FiveTuple::from_bytes(&t.to_bytes()), t);
    }

    #[test]
    fn five_tuple_u128_injective_on_sample() {
        let mut seen = HashSet::new();
        for sp in 0u16..100 {
            for dp in 0u16..100 {
                let t = FiveTuple {
                    src_ip: 1,
                    dst_ip: 2,
                    src_port: sp,
                    dst_port: dp,
                    protocol: 17,
                };
                assert!(seen.insert(t.as_u128()));
            }
        }
    }

    #[test]
    fn composite_criterion_keys_differ() {
        let k = 77u64;
        let a = (k, 0u32).hash_with_seed(3);
        let b = (k, 1u32).hash_with_seed(3);
        assert_ne!(a, b);
    }

    #[test]
    fn str_and_string_agree() {
        let s = "flowkey";
        assert_eq!(s.hash_with_seed(4), s.to_string().hash_with_seed(4));
    }

    #[test]
    fn byte_array_matches_slice() {
        let arr = [1u8, 2, 3, 4];
        let slice: &[u8] = &arr;
        assert_eq!(arr.hash_with_seed(9), slice.hash_with_seed(9));
    }

    /// The contract every prehash-based fast path relies on:
    /// `hash_with_seed(seed) == mix64(seed ^ prehash)` for all seeds.
    fn assert_prehash_factors<K: StreamKey>(key: &K) {
        let p = key.prehash().expect("key should expose a prehash");
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            assert_eq!(key.hash_with_seed(seed), mix64(seed ^ p));
        }
    }

    #[test]
    fn prehash_identity_holds_for_fixed_width_keys() {
        for k in [0u64, 1, 77, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            assert_prehash_factors(&k);
            assert_prehash_factors(&(k as i64));
            assert_prehash_factors(&&k);
            assert_prehash_factors(&(k, 0u32));
            assert_prehash_factors(&(k, 9u32));
        }
        for k in [0u32, 3, u32::MAX] {
            assert_prehash_factors(&k);
        }
        for k in [0u128, 5, u128::MAX, 0xFFFF_0000_1234 << 64 | 0x77] {
            assert_prehash_factors(&k);
        }
        let t = FiveTuple {
            src_ip: 0x0A00_0001,
            dst_ip: 0xC0A8_0101,
            src_port: 443,
            dst_port: 55321,
            protocol: 6,
        };
        assert_prehash_factors(&t);
        assert_prehash_factors(&(t, 2u32));
    }

    #[test]
    fn variable_length_keys_have_no_prehash() {
        assert_eq!("abc".prehash(), None);
        assert_eq!([1u8, 2, 3].as_slice().prehash(), None);
        assert_eq!(("abc", 1u32).prehash(), None);
    }
}
