//! xxHash64 implemented from scratch.
//!
//! xxHash64 (Yann Collet) is a fast non-cryptographic hash with excellent
//! avalanche behaviour. It is the byte-string hash used by [`crate::key`]
//! for variable-length keys; fixed-width integer keys take the cheaper
//! [`crate::splitmix::mix64`] path instead.
//!
//! The implementation follows the canonical specification: four parallel
//! accumulation lanes over 32-byte stripes, a merge step, the length mix,
//! a 8/4/1-byte tail, and the final avalanche.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline(always)]
fn read_u64_le(bytes: &[u8], at: usize) -> u64 {
    let b = &bytes[at..at + 8];
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[inline(always)]
fn read_u32_le(bytes: &[u8], at: usize) -> u32 {
    let b = &bytes[at..at + 4];
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline(always)]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

/// Compute the 64-bit xxHash of `data` under `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut i = 0usize;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while i + 32 <= len {
            v1 = round(v1, read_u64_le(data, i));
            v2 = round(v2, read_u64_le(data, i + 8));
            v3 = round(v3, read_u64_le(data, i + 16));
            v4 = round(v4, read_u64_le(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while i + 8 <= len {
        h ^= round(0, read_u64_le(data, i));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        i += 8;
    }
    if i + 4 <= len {
        h ^= u64::from(read_u32_le(data, i)).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        i += 4;
    }
    while i < len {
        h ^= u64::from(data[i]).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        i += 1;
    }

    avalanche(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed with the canonical xxHash implementation.
    #[test]
    fn known_answer_empty() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn known_answer_a() {
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
    }

    #[test]
    fn known_answer_abc() {
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn known_answer_long_with_seed() {
        // "xxHash is an extremely fast non-cryptographic hash algorithm"
        let msg = b"xxHash is an extremely fast non-cryptographic hash algorithm";
        // Self-consistency across calls plus seed sensitivity.
        assert_eq!(xxh64(msg, 1), xxh64(msg, 1));
        assert_ne!(xxh64(msg, 1), xxh64(msg, 2));
    }

    #[test]
    fn all_tail_lengths_are_exercised() {
        // Lengths 0..=40 cover: empty, 1/4/8-byte tails and a 32-byte stripe.
        let data: Vec<u8> = (0u8..=40).collect();
        let mut seen = std::collections::HashSet::new();
        for l in 0..=40usize {
            assert!(seen.insert(xxh64(&data[..l], 99)), "collision at len {l}");
        }
    }

    #[test]
    fn distribution_low_bits_uniform() {
        // Hash 64k sequential keys and check bucket occupancy over 256
        // buckets stays within a loose chi-square-style band.
        let mut buckets = [0u32; 256];
        for k in 0u64..65536 {
            let h = xxh64(&k.to_le_bytes(), 0);
            buckets[(h & 0xFF) as usize] += 1;
        }
        let expect = 65536.0 / 256.0;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (f64::from(b) - expect).abs() / expect;
            assert!(dev < 0.30, "bucket {i} deviation {dev}");
        }
    }
}
