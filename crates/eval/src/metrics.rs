//! Accuracy metrics of §V-B: precision / recall / F1 over deduplicated
//! reported-key sets.

use std::collections::HashSet;

/// Precision/recall/F1 of a detector's deduplicated report set against the
/// exact outstanding-key set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Accuracy {
    /// Compare a reported set against the truth set.
    pub fn of(reported: &HashSet<u64>, truth: &HashSet<u64>) -> Self {
        let tp = reported.intersection(truth).count();
        Self {
            tp,
            fp: reported.len() - tp,
            fn_: truth.len() - tp,
        }
    }

    /// Compare only the keys satisfying `pred` (used by the Fig. 13–15
    /// modified/unmodified split).
    pub fn of_subset<F: Fn(u64) -> bool>(
        reported: &HashSet<u64>,
        truth: &HashSet<u64>,
        pred: F,
    ) -> Self {
        let r: HashSet<u64> = reported.iter().copied().filter(|&k| pred(k)).collect();
        let t: HashSet<u64> = truth.iter().copied().filter(|&k| pred(k)).collect();
        Self::of(&r, &t)
    }

    /// Precision = TP / (TP + FP); defined as 1 when nothing was reported.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall = TP / (TP + FN); defined as 1 when nothing was outstanding.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.4} R={:.4} F1={:.4}",
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u64]) -> HashSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn perfect_detection() {
        let a = Accuracy::of(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        assert_eq!(a.f1(), 1.0);
    }

    #[test]
    fn false_positives_cost_precision() {
        let a = Accuracy::of(&set(&[1, 2, 3, 4]), &set(&[1, 2]));
        assert_eq!(a.tp, 2);
        assert_eq!(a.fp, 2);
        assert_eq!(a.precision(), 0.5);
        assert_eq!(a.recall(), 1.0);
    }

    #[test]
    fn false_negatives_cost_recall() {
        let a = Accuracy::of(&set(&[1]), &set(&[1, 2, 3, 4]));
        assert_eq!(a.recall(), 0.25);
        assert_eq!(a.precision(), 1.0);
    }

    #[test]
    fn empty_report_empty_truth_is_perfect() {
        let a = Accuracy::of(&set(&[]), &set(&[]));
        assert_eq!(a.f1(), 1.0);
    }

    #[test]
    fn empty_report_with_truth_zero_f1() {
        let a = Accuracy::of(&set(&[]), &set(&[1]));
        assert_eq!(a.recall(), 0.0);
        assert_eq!(a.f1(), 0.0);
    }

    #[test]
    fn f1_harmonic_mean() {
        let a = Accuracy::of(&set(&[1, 2]), &set(&[1, 3]));
        // P = 0.5, R = 0.5 → F1 = 0.5.
        assert!((a.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn subset_split() {
        let reported = set(&[1, 2, 3, 4]);
        let truth = set(&[2, 4, 6]);
        let even = Accuracy::of_subset(&reported, &truth, |k| k % 2 == 0);
        assert_eq!(even.tp, 2); // 2 and 4
        assert_eq!(even.fp, 0);
        assert_eq!(even.fn_, 1); // 6
        let odd = Accuracy::of_subset(&reported, &truth, |k| k % 2 == 1);
        assert_eq!(odd.tp, 0);
        assert_eq!(odd.fp, 2); // 1 and 3
    }

    #[test]
    fn display_formats() {
        let a = Accuracy::of(&set(&[1]), &set(&[1]));
        assert!(format!("{a}").contains("F1=1.0000"));
    }
}
