//! Stream a workload through a detector: reports, dedup, wall-clock MOPS.

use qf_baselines::{ExactDetector, OutstandingDetector};
use qf_datasets::Item;
use quantile_filter::Criteria;
use std::collections::HashSet;
use std::time::Instant;

/// Outcome of one detector run over one stream.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Deduplicated keys the detector reported.
    pub reported: HashSet<u64>,
    /// Total (non-deduplicated) report events.
    pub report_events: u64,
    /// Items processed.
    pub items: usize,
    /// Wall-clock seconds for the full stream.
    pub seconds: f64,
    /// Detector memory after the run (live bytes for growing structures).
    pub memory_bytes: usize,
}

impl RunResult {
    /// Throughput in million operations per second (§V-C metric).
    pub fn mops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.items as f64 / self.seconds / 1e6
    }
}

/// Stream `items` through `detector`, collecting reports and timing the
/// whole loop (insert + online detection — the integrated operation the
/// paper measures).
pub fn run_detector(detector: &mut dyn OutstandingDetector, items: &[Item]) -> RunResult {
    let mut reported = HashSet::new();
    let mut report_events = 0u64;
    let start = Instant::now();
    for it in items {
        if detector.insert(it.key, it.value) {
            report_events += 1;
            reported.insert(it.key);
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    RunResult {
        reported,
        report_events,
        items: items.len(),
        seconds,
        memory_bytes: detector.memory_bytes(),
    }
}

/// The exact outstanding-key set of a stream under `criteria` — every key
/// the zero-error detector would report at least once (Definition 4 with
/// resets).
pub fn ground_truth(items: &[Item], criteria: &Criteria) -> HashSet<u64> {
    let mut exact = ExactDetector::new(*criteria);
    run_detector(&mut exact, items).reported
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_baselines::QfDetector;

    fn items_with_one_hot_key() -> Vec<Item> {
        let mut items = Vec::new();
        for i in 0..2000u64 {
            items.push(Item {
                key: i % 50,
                value: 5.0,
            });
            if i % 10 == 0 {
                items.push(Item {
                    key: 999,
                    value: 500.0,
                });
            }
        }
        items
    }

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn ground_truth_finds_hot_key() {
        let truth = ground_truth(&items_with_one_hot_key(), &crit());
        assert!(truth.contains(&999));
        assert_eq!(truth.len(), 1);
    }

    #[test]
    fn qf_run_matches_truth_with_ample_memory() {
        let items = items_with_one_hot_key();
        let truth = ground_truth(&items, &crit());
        let mut det = QfDetector::paper_default(crit(), 256 * 1024, 1);
        let result = run_detector(&mut det, &items);
        let acc = crate::metrics::Accuracy::of(&result.reported, &truth);
        assert_eq!(acc.f1(), 1.0, "{acc}");
    }

    #[test]
    fn run_result_counts_and_timing() {
        let items = items_with_one_hot_key();
        let mut det = QfDetector::paper_default(crit(), 64 * 1024, 2);
        let r = run_detector(&mut det, &items);
        assert_eq!(r.items, items.len());
        assert!(r.seconds >= 0.0);
        assert!(r.mops() > 0.0);
        assert!(r.report_events >= r.reported.len() as u64);
    }
}
