//! Multi-threaded ingestion wrapper.
//!
//! QuantileFilter itself is single-writer (like the paper's switch/FPGA
//! deployments, which dedicate the structure to one pipeline). For
//! multi-core software collectors the standard pattern — also used by
//! OctoSketch and friends — is sharding: each worker owns a private
//! filter, and keys are partitioned across workers by hash so per-key
//! state never crosses threads. [`ShardedDetector`] implements that
//! pattern over any `OutstandingDetector + Send`, with a
//! [`parking_lot::Mutex`] per shard (uncontended in the recommended
//! one-thread-per-shard setup, but safe under any scheduling).

use parking_lot::Mutex;
use qf_baselines::OutstandingDetector;
use qf_datasets::Item;
use std::collections::HashSet;

/// Hash-sharded detector bank for parallel ingestion.
pub struct ShardedDetector<D: OutstandingDetector> {
    shards: Vec<Mutex<D>>,
}

impl<D: OutstandingDetector + Send> ShardedDetector<D> {
    /// Build from per-shard detectors (usually identical configs with
    /// distinct seeds).
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<D>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        Self {
            shards: shards.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key belongs to. Delegates to [`qf_pipeline::shard_of`]
    /// so the batch harness and the live pipeline route identically —
    /// the per-shard item streams (and hence reported sets) of the two
    /// systems are comparable only because this function is shared.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        qf_pipeline::shard_of(key, self.shards.len())
    }

    /// Insert one item; routed to the owning shard.
    pub fn insert(&self, key: u64, value: f64) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard].lock().insert(key, value)
    }

    /// Total memory across shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().memory_bytes()).sum()
    }

    /// Ingest a stream with `threads` workers. Returns the deduplicated
    /// reported-key set; use [`Self::run_parallel_counted`] to also learn
    /// how many workers actually ran.
    pub fn run_parallel(&self, items: &[Item], threads: usize) -> HashSet<u64>
    where
        D: 'static,
    {
        self.run_parallel_counted(items, threads).reported
    }

    /// Ingest a stream with `threads` workers, reporting the *effective*
    /// parallelism alongside the reported-key set.
    ///
    /// `threads` is clamped to `[1, shard_count]` — a worker without a
    /// shard to own would sit idle. The clamp used to be silent, which
    /// made a benchmark asking for 8 threads over 4 shards (or running on
    /// a 1-core box) indistinguishable from a real scaling failure; the
    /// returned [`ParallelRun::effective_threads`] makes it visible.
    ///
    /// Items are pre-partitioned per shard in a single order-preserving
    /// pass (one shard hash per item, total), then each worker drains only
    /// its own shards' partitions with one lock acquisition per shard.
    /// An earlier version had every worker rescan the full slice and take
    /// the shard lock per item — O(threads × N) hashing and N lock
    /// round-trips per worker; this does O(N) work total with the identical
    /// reported-set semantics (per-shard item order is the stream order
    /// either way, and per-key state never crosses shards).
    pub fn run_parallel_counted(&self, items: &[Item], threads: usize) -> ParallelRun
    where
        D: 'static,
    {
        let requested_threads = threads;
        let threads = threads.max(1).min(self.shards.len());
        let shard_count = self.shards.len();
        let mut parts: Vec<Vec<(u64, f64)>> = (0..shard_count)
            .map(|_| Vec::with_capacity(items.len() / shard_count + 1))
            .collect();
        for it in items {
            parts[self.shard_of(it.key)].push((it.key, it.value));
        }
        let mut all = HashSet::new();
        let scope_result = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let this = &*self;
                let parts = &parts;
                handles.push(scope.spawn(move |_| {
                    let mut reported = Vec::new();
                    // Shard→worker mapping unchanged from the rescanning
                    // version: worker `t` owns shards ≡ t (mod threads).
                    for (shard, part) in parts.iter().enumerate() {
                        if shard % threads == t && !part.is_empty() {
                            this.shards[shard].lock().insert_batch(part, &mut reported);
                        }
                    }
                    reported
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(reported) => all.extend(reported),
                    // Re-raise a shard worker's panic on the caller.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if let Err(payload) = scope_result {
            std::panic::resume_unwind(payload);
        }
        ParallelRun {
            reported: all,
            requested_threads,
            effective_threads: threads,
        }
    }
}

/// The outcome of [`ShardedDetector::run_parallel_counted`]: the reported
/// keys plus the parallelism that actually materialized.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Deduplicated reported-key set.
    pub reported: HashSet<u64>,
    /// The thread count the caller asked for.
    pub requested_threads: usize,
    /// The worker count that actually ran: `requested_threads` clamped to
    /// `[1, shard_count]`.
    pub effective_threads: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_baselines::QfDetector;
    use quantile_filter::Criteria;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    fn sharded(n: usize) -> ShardedDetector<QfDetector> {
        ShardedDetector::new(
            (0..n)
                .map(|i| QfDetector::paper_default(crit(), 32 * 1024, i as u64))
                .collect(),
        )
    }

    fn workload() -> Vec<Item> {
        let mut items = Vec::new();
        for i in 0..20_000u64 {
            items.push(Item {
                key: i % 64,
                value: 5.0,
            });
            if i % 8 == 0 {
                items.push(Item {
                    key: 1000 + (i % 3),
                    value: 500.0,
                });
            }
        }
        items
    }

    #[test]
    fn sharding_is_stable() {
        let s = sharded(4);
        for k in 0u64..100 {
            assert_eq!(s.shard_of(k), s.shard_of(k));
            assert!(s.shard_of(k) < 4);
        }
    }

    #[test]
    fn parallel_run_detects_hot_keys() {
        let s = sharded(4);
        let reported = s.run_parallel(&workload(), 4);
        for hot in [1000u64, 1001, 1002] {
            assert!(reported.contains(&hot), "missing hot key {hot}");
        }
        // No quiet key reported.
        assert!(reported.iter().all(|&k| k >= 1000), "{reported:?}");
    }

    #[test]
    fn parallel_equals_serial_per_shard_routing() {
        // Same shard partitioning run with 1 thread and 4 threads must
        // report identical key sets (per-key state never crosses shards).
        let items = workload();
        let s1 = sharded(4);
        let s4 = sharded(4);
        let serial = s1.run_parallel(&items, 1);
        let parallel = s4.run_parallel(&items, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn effective_parallelism_is_reported_not_silent() {
        let items = workload();
        // More threads than shards: clamped down, and the clamp is visible.
        let run = sharded(4).run_parallel_counted(&items, 16);
        assert_eq!(run.requested_threads, 16);
        assert_eq!(run.effective_threads, 4);
        // Zero threads: clamped up to 1.
        let run = sharded(4).run_parallel_counted(&items, 0);
        assert_eq!(run.requested_threads, 0);
        assert_eq!(run.effective_threads, 1);
        // In range: passes through untouched, same reported set either way.
        let run2 = sharded(4).run_parallel_counted(&items, 2);
        assert_eq!(run2.effective_threads, 2);
        assert_eq!(run.reported, run2.reported);
    }

    #[test]
    fn memory_sums_shards() {
        let s = sharded(3);
        assert!(s.memory_bytes() > 3 * 24 * 1024);
        assert_eq!(s.shard_count(), 3);
    }
}
