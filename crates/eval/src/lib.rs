//! Evaluation harness: ground truth, accuracy metrics, throughput, and one
//! driver per figure of the paper's §V.
//!
//! The metrics follow §V-B exactly: stream the dataset through a detector
//! collecting its real-time reports, deduplicate the reported keys, and
//! compare against the exact set of outstanding keys:
//!
//! * Precision = TP / (TP + FP)
//! * Recall    = TP / (TP + FN)
//! * F1        = harmonic mean
//!
//! Throughput is reported in million operations (insert+detect) per second
//! (§V-C). Every figure of the paper has a driver in [`figures`]; each
//! returns a [`figures::FigureOutput`] table whose rows regenerate the
//! corresponding plot's series.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod concurrent;
pub mod figures;
pub mod metrics;
pub mod pipeline;
pub mod runner;
pub mod telemetry_sidecar;

pub use concurrent::{ParallelRun, ShardedDetector};
pub use metrics::Accuracy;
pub use pipeline::{PipelineDetector, PipelineRun};
pub use runner::{ground_truth, run_detector, RunResult};
pub use telemetry_sidecar::{run_detector_telemetered, TelemeteredRun, TelemetryConfig};
