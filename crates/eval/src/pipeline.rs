//! Adapter running the live `qf-pipeline` under the eval harness, so the
//! differential/equivalence suites exercise the concurrent system with
//! the same workloads and comparisons as the batch detectors.
//!
//! [`PipelineDetector`] deliberately mirrors the shape of
//! [`ShardedDetector::run_parallel`](crate::ShardedDetector): feed a
//! trace, get back the deduplicated reported-key set. Both route with
//! `qf_pipeline::shard_of` and seed shard `i` with `base_seed + i`, so a
//! `ShardedDetector` over `QfDetector::paper_default(criteria, mem, i)`
//! shards is the exact serial reference for a pipeline with `seed: 0` —
//! the equivalence the `pipeline_equivalence` test pins.

use qf_datasets::Item;
use qf_pipeline::{
    BackpressurePolicy, Pipeline, PipelineConfig, PipelineError, PipelineSummary, SupervisorConfig,
};
use quantile_filter::Criteria;
use std::collections::HashSet;

/// The detector-shaped face of a live pipeline: owns a config, runs
/// traces end to end (launch → ingest → drain → shutdown) per call.
#[derive(Debug, Clone, Copy)]
pub struct PipelineDetector {
    config: PipelineConfig,
}

/// A completed pipeline run over one trace.
#[derive(Debug)]
pub struct PipelineRun {
    /// Deduplicated reported keys — the currency of the eval suites.
    pub reported: HashSet<u64>,
    /// The pipeline's final accounting (conservation, per-shard stats).
    pub summary: PipelineSummary,
}

impl PipelineDetector {
    /// Lossless configuration matching the eval harness's sharded setup:
    /// `shards` filters of `memory_bytes_per_shard` each, shard `i`
    /// seeded with `i`, blocking backpressure.
    pub fn paper_default(criteria: Criteria, shards: usize, memory_bytes_per_shard: usize) -> Self {
        Self {
            config: PipelineConfig {
                shards,
                criteria,
                memory_bytes_per_shard,
                queue_capacity: 1024,
                slab_capacity: 256,
                policy: BackpressurePolicy::Block,
                seed: 0,
            },
        }
    }

    /// Use a custom pipeline config (drop policies, other seeds, …).
    pub fn with_config(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The wrapped config.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Stream `items` through a freshly-launched pipeline and drain it.
    pub fn run(&self, items: &[Item]) -> Result<PipelineRun, PipelineError> {
        self.drive(Pipeline::launch(self.config)?, items)
    }

    /// Same run, but through the self-healing layer: checkpointing and
    /// journaling on, watchdog armed. With no faults injected this must
    /// report exactly what [`run`](Self::run) reports — the equivalence
    /// suite pins that supervision is observationally free.
    pub fn run_supervised(
        &self,
        sup: SupervisorConfig,
        items: &[Item],
    ) -> Result<PipelineRun, PipelineError> {
        self.drive(Pipeline::launch_supervised(self.config, sup)?, items)
    }

    fn drive(&self, mut pipe: Pipeline, items: &[Item]) -> Result<PipelineRun, PipelineError> {
        let mut reported = HashSet::new();
        for item in items {
            pipe.ingest(item.key, item.value)?;
        }
        for ev in pipe.poll_reports() {
            reported.insert(ev.key);
        }
        let summary = pipe.shutdown()?;
        for ev in &summary.reports {
            reported.insert(ev.key);
        }
        Ok(PipelineRun { reported, summary })
    }
}
