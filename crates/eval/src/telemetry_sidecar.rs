//! Telemetry-aware detector runs: sampled insert-latency spans, periodic
//! sidecar flushes, and a per-run [`MetricsSnapshot`] delta.
//!
//! [`run_detector_telemetered`] wraps the plain
//! [`run_detector`](crate::runner::run_detector) loop with three additions:
//!
//! 1. **Sampled latency spans.** One insert in every
//!    2^[`TelemetryConfig::sample_shift`] is timed with `Instant` and the
//!    nanoseconds recorded into the global `qf_insert_latency_ns`
//!    histogram. Sampling keeps the timing overhead off the other 15/16 of
//!    the stream, so the run's wall-clock MOPS stays representative.
//! 2. **Periodic sidecars.** If a [`PeriodicReporter`] is configured, it is
//!    ticked every [`TICK_STRIDE`] items, emitting
//!    `<prefix>.metrics.{json,prom}` mid-run for live scraping, and flushed
//!    unconditionally at the end of the run.
//! 3. **Per-run isolation.** The global registry is process-wide and
//!    cumulative; this runner snapshots it before the loop and returns
//!    `after.delta_since(&before)`, so the caller sees only this run's
//!    events even when several runs share the process.
//!
//! The hot-path counters inside the returned snapshot are non-zero only
//! when the stack is compiled with the `telemetry` cargo feature; the
//! latency histogram and meta annotations are recorded here in the harness
//! and therefore present in every build.

use crate::runner::RunResult;
use qf_baselines::OutstandingDetector;
use qf_datasets::Item;
use qf_telemetry::{global, MetricsSnapshot, PeriodicReporter};
use std::collections::HashSet;
use std::io;
use std::time::{Duration, Instant};

/// Reporter ticks happen every this many items — a single `Instant`
/// comparison each, so the stride only bounds tick granularity, not cost.
pub const TICK_STRIDE: usize = 4096;

/// How a telemetered run samples latency and emits sidecars.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Time one insert in every `2^sample_shift` (default 4 ⇒ 1 in 16).
    pub sample_shift: u32,
    /// Sidecar path prefix (`<prefix>.metrics.json` / `.prom`), or `None`
    /// to skip file output and only return the snapshot.
    pub sidecar_prefix: Option<std::path::PathBuf>,
    /// Minimum interval between mid-run sidecar writes.
    pub report_interval: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            sample_shift: 4,
            sidecar_prefix: None,
            report_interval: Duration::from_secs(5),
        }
    }
}

impl TelemetryConfig {
    /// Config that writes sidecars under the given prefix.
    pub fn with_sidecar(prefix: impl Into<std::path::PathBuf>) -> Self {
        Self {
            sidecar_prefix: Some(prefix.into()),
            ..Self::default()
        }
    }
}

/// A [`RunResult`] plus the run's metric delta and sidecar paths.
#[derive(Debug)]
pub struct TelemeteredRun {
    /// The ordinary run outcome (reports, timing, memory).
    pub result: RunResult,
    /// This run's slice of the global registry, with meta annotations.
    pub metrics: MetricsSnapshot,
    /// Paths of the sidecars written, if a prefix was configured.
    pub sidecars: Option<(std::path::PathBuf, std::path::PathBuf)>,
}

/// Stream `items` through `detector` like
/// [`run_detector`](crate::runner::run_detector), recording sampled insert
/// latencies and (optionally) emitting telemetry sidecars.
pub fn run_detector_telemetered(
    detector: &mut dyn OutstandingDetector,
    items: &[Item],
    config: &TelemetryConfig,
) -> io::Result<TelemeteredRun> {
    let before = global().snapshot();
    let sample_mask = (1usize << config.sample_shift) - 1;
    let mut reporter = config
        .sidecar_prefix
        .as_ref()
        .map(|p| PeriodicReporter::new(p, config.report_interval));

    let mut reported = HashSet::new();
    let mut report_events = 0u64;
    let start = Instant::now();
    for (i, it) in items.iter().enumerate() {
        let hit = if i & sample_mask == 0 {
            let span = Instant::now();
            let hit = detector.insert(it.key, it.value);
            global()
                .insert_latency_ns
                .record(span.elapsed().as_nanos() as u64);
            hit
        } else {
            detector.insert(it.key, it.value)
        };
        if hit {
            report_events += 1;
            reported.insert(it.key);
        }
        if i % TICK_STRIDE == 0 {
            if let Some(rep) = reporter.as_mut() {
                rep.tick(|| global().snapshot().delta_since(&before))?;
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();

    let result = RunResult {
        reported,
        report_events,
        items: items.len(),
        seconds,
        memory_bytes: detector.memory_bytes(),
    };
    let metrics = global()
        .snapshot()
        .delta_since(&before)
        .with_meta("detector", detector.name())
        .with_meta("items", result.items)
        .with_meta("seconds", format!("{seconds:.6}"))
        .with_meta("mops", format!("{:.3}", result.mops()))
        .with_meta("memory_bytes", result.memory_bytes)
        .with_meta(
            "latency_sample_rate",
            format!("1/{}", 1usize << config.sample_shift),
        )
        .with_meta(
            "hotpath_counters",
            if cfg!(feature = "telemetry") {
                "enabled"
            } else {
                "compiled-out"
            },
        );

    let sidecars = match reporter.as_mut() {
        Some(rep) => {
            rep.flush(&metrics)?;
            Some((rep.json_path(), rep.prom_path()))
        }
        None => None,
    };

    Ok(TelemeteredRun {
        result,
        metrics,
        sidecars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_baselines::QfDetector;
    use quantile_filter::Criteria;
    use std::fs;
    use std::sync::{Mutex, MutexGuard};

    // The registry is process-wide; serialize these tests so one run's
    // delta window never overlaps another test's recording.
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    fn lock_registry() -> MutexGuard<'static, ()> {
        match REGISTRY_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn items_with_one_hot_key() -> Vec<Item> {
        let mut items = Vec::new();
        for i in 0..3000u64 {
            items.push(Item {
                key: i % 50,
                value: 5.0,
            });
            if i % 10 == 0 {
                items.push(Item {
                    key: 999,
                    value: 500.0,
                });
            }
        }
        items
    }

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn telemetered_run_matches_plain_run_semantics() {
        let _g = lock_registry();
        let items = items_with_one_hot_key();
        let mut det = QfDetector::paper_default(crit(), 256 * 1024, 1);
        let plain = crate::runner::run_detector(&mut det, &items);
        let mut det2 = QfDetector::paper_default(crit(), 256 * 1024, 1);
        let tele = run_detector_telemetered(&mut det2, &items, &TelemetryConfig::default())
            .expect("no sidecar configured, no io possible");
        assert_eq!(tele.result.reported, plain.reported);
        assert_eq!(tele.result.report_events, plain.report_events);
        assert_eq!(tele.result.items, plain.items);
        assert!(tele.sidecars.is_none());
    }

    #[test]
    fn latency_histogram_sampled_at_configured_rate() {
        let _g = lock_registry();
        let items = items_with_one_hot_key();
        let mut det = QfDetector::paper_default(crit(), 64 * 1024, 2);
        let cfg = TelemetryConfig {
            sample_shift: 4,
            ..TelemetryConfig::default()
        };
        let tele = run_detector_telemetered(&mut det, &items, &cfg).unwrap();
        let hist = tele.metrics.histogram("qf_insert_latency_ns").unwrap();
        let expected = items.len().div_ceil(16) as u64;
        assert_eq!(hist.count(), expected);
        assert!(hist.quantile(0.5) > 0, "p50 of real insert latencies");
    }

    #[test]
    fn sidecars_written_and_well_formed() {
        let _g = lock_registry();
        let items = items_with_one_hot_key();
        let mut det = QfDetector::paper_default(crit(), 64 * 1024, 3);
        let prefix =
            std::env::temp_dir().join(format!("qf_eval_sidecar_test_{}", std::process::id()));
        let cfg = TelemetryConfig::with_sidecar(&prefix);
        let tele = run_detector_telemetered(&mut det, &items, &cfg).unwrap();
        let (json_path, prom_path) = tele.sidecars.expect("sidecar prefix was configured");
        let json = fs::read_to_string(&json_path).unwrap();
        let prom = fs::read_to_string(&prom_path).unwrap();
        assert!(json.contains("\"qf_insert_latency_ns\""));
        assert!(json.contains("\"detector\""));
        assert!(prom.contains("# TYPE qf_insert_latency_ns histogram"));
        assert!(prom.contains("qf_insert_latency_ns_bucket{le=\"+Inf\"}"));
        let _ = fs::remove_file(json_path);
        let _ = fs::remove_file(prom_path);
    }

    #[test]
    fn metrics_meta_records_build_mode() {
        let _g = lock_registry();
        let items = items_with_one_hot_key();
        let mut det = QfDetector::paper_default(crit(), 64 * 1024, 4);
        let tele = run_detector_telemetered(&mut det, &items, &TelemetryConfig::default()).unwrap();
        let mode = tele
            .metrics
            .meta
            .iter()
            .find(|(k, _)| k == "hotpath_counters")
            .map(|(_, v)| v.as_str());
        // The counter delta agrees with the advertised mode.
        let inserts = tele.metrics.counter("qf_filter_inserts_total").unwrap();
        if mode == Some("enabled") {
            assert!(inserts >= items.len() as u64);
        } else {
            assert_eq!(inserts, 0);
        }
    }
}
