//! Throughput figures: Fig. 8 (scheme comparison) and Fig. 10 (parameter
//! effects on QuantileFilter speed).

use super::{all_detectors, fmt_f, paper_criteria, FigureOutput, Scale};
use crate::metrics::Accuracy;
use crate::runner::{ground_truth, run_detector};
use qf_baselines::QfDetector;
use qf_datasets::{cloud_like, internet_like};
use quantile_filter::ElectionStrategy;

const SEED: u64 = 0xF16_0008;

/// Fig. 8: throughput (MOPS) vs memory for every scheme on both datasets,
/// annotated with the F1 reached so the paper's "10–100× faster above 50%
/// F1" claim can be checked directly.
pub fn fig8(scale: Scale) -> FigureOutput {
    let datasets = [
        internet_like(&scale.internet_config()),
        cloud_like(&scale.cloud_config()),
    ];
    let mut out = FigureOutput::new(
        "fig8",
        "Throughput vs. memory (insert+detect), both datasets",
        &["dataset", "memory_bytes", "scheme", "mops", "f1"],
    );
    for dataset in &datasets {
        let criteria = paper_criteria(dataset);
        let truth = ground_truth(&dataset.items, &criteria);
        for memory in scale.memory_sweep() {
            for mut det in all_detectors(criteria, memory, SEED) {
                let name = det.name();
                let result = run_detector(det.as_mut(), &dataset.items);
                let acc = Accuracy::of(&result.reported, &truth);
                out.push_row(vec![
                    dataset.name.clone(),
                    memory.to_string(),
                    name,
                    fmt_f(result.mops()),
                    fmt_f(acc.f1()),
                ]);
            }
        }
    }
    out
}

/// Fig. 10: QuantileFilter throughput vs (a) vague-part array number `d`
/// and (b) candidate block length `b`, Internet dataset.
pub fn fig10(scale: Scale) -> FigureOutput {
    let dataset = internet_like(&scale.internet_config());
    let criteria = paper_criteria(&dataset);
    let memory = scale.reference_memory();
    let d_values: &[usize] = match scale {
        Scale::Tiny => &[1, 3, 8],
        _ => &[1, 2, 3, 4, 6, 8, 12, 16, 20],
    };
    let b_values: &[usize] = match scale {
        Scale::Tiny => &[2, 6],
        _ => &[1, 2, 4, 6, 8, 12, 16],
    };
    let mut out = FigureOutput::new(
        "fig10",
        "QuantileFilter throughput vs. parameters, Internet dataset",
        &["parameter", "value", "mops"],
    );
    for &d in d_values {
        let mut det = QfDetector::with_params(
            criteria,
            memory,
            6,
            d,
            0.8,
            ElectionStrategy::Comparative,
            SEED,
        );
        let result = run_detector(&mut det, &dataset.items);
        out.push_row(vec!["d".into(), d.to_string(), fmt_f(result.mops())]);
    }
    for &b in b_values {
        let mut det = QfDetector::with_params(
            criteria,
            memory,
            b,
            3,
            0.8,
            ElectionStrategy::Comparative,
            SEED,
        );
        let result = run_detector(&mut det, &dataset.items);
        out.push_row(vec![
            "block_len".into(),
            b.to_string(),
            fmt_f(result.mops()),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_tiny_covers_both_datasets() {
        let f = fig8(Scale::Tiny);
        let datasets: std::collections::HashSet<&String> = f.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(datasets.len(), 2);
        // All throughputs positive.
        for r in &f.rows {
            assert!(r[3].parse::<f64>().unwrap() > 0.0);
        }
    }

    #[test]
    fn fig10_tiny_sweeps_both_parameters() {
        let f = fig10(Scale::Tiny);
        let params: std::collections::HashSet<&String> = f.rows.iter().map(|r| &r[0]).collect();
        assert!(params.contains(&"d".to_string()));
        assert!(params.contains(&"block_len".to_string()));
    }
}
