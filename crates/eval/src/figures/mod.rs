//! One driver per figure of the paper's evaluation (§V, Figs. 4–15).
//!
//! Each driver returns a [`FigureOutput`] — a small table whose rows are
//! the series of the corresponding plot. Drivers accept a [`Scale`] so the
//! same code runs as a seconds-long smoke test (`Scale::Tiny`), a default
//! laptop run (`Scale::Small`) or a paper-sized run (`Scale::Full`).

mod accuracy;
mod dynamic;
mod params;
mod speed;

pub use accuracy::{fig4, fig5, fig6, fig7, spot1mb};
pub use dynamic::{fig13, fig14, fig15};
pub use params::{fig11, fig12, fig9};
pub use speed::{fig10, fig8};

use qf_baselines::{
    HistSketchDetector, NaiveDetector, OutstandingDetector, QfDetector, SketchPolymerDetector,
    SquadDetector,
};
use qf_datasets::{CloudConfig, Dataset, InternetConfig};
use quantile_filter::Criteria;

/// How large a run to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke run (integration tests).
    Tiny,
    /// Default laptop run (a few minutes for the full figure set).
    Small,
    /// Paper-sized datasets (tens of minutes).
    Full,
}

impl Scale {
    /// Items in the internet-like dataset.
    pub fn internet_config(self) -> InternetConfig {
        match self {
            Self::Tiny => InternetConfig::tiny(),
            Self::Small => InternetConfig {
                items: 1_000_000,
                keys: 30_000,
                ..InternetConfig::default()
            },
            Self::Full => InternetConfig::paper_scale(),
        }
    }

    /// Items in the cloud-like dataset.
    pub fn cloud_config(self) -> CloudConfig {
        match self {
            Self::Tiny => CloudConfig::tiny(),
            Self::Small => CloudConfig {
                items: 1_000_000,
                core_keys: 1_500,
                ..CloudConfig::default()
            },
            Self::Full => CloudConfig::paper_scale(),
        }
    }

    /// The memory sweep (bytes) for accuracy-vs-space figures.
    pub fn memory_sweep(self) -> Vec<usize> {
        match self {
            Self::Tiny => vec![1 << 12, 1 << 14, 1 << 16],
            Self::Small => (13..=22).step_by(2).map(|e| 1usize << e).collect(),
            Self::Full => (15..=26).map(|e| 1usize << e).collect(),
        }
    }

    /// A single representative memory for parameter sweeps.
    pub fn reference_memory(self) -> usize {
        match self {
            Self::Tiny => 1 << 14,
            Self::Small => 1 << 18,
            Self::Full => 1 << 20,
        }
    }

    /// A *binding* memory for sensitivity sweeps: small enough that the
    /// filter is under genuine space pressure, so parameter effects are
    /// visible instead of saturating at F1 = 1.
    pub fn tight_memory(self) -> usize {
        match self {
            Self::Tiny => 1 << 11,
            Self::Small => 1 << 13,
            Self::Full => 1 << 16,
        }
    }
}

/// A figure's regenerated data: headers plus one row per plotted point.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Figure id ("fig4", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl FigureOutput {
    pub(crate) fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub(crate) fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as CSV (header line + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for FigureOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join("\t"))?;
        }
        Ok(())
    }
}

/// Unwrap a criteria construction whose parameters come from a static
/// figure config — an invalid result is a programming error in the figure
/// definition, never a data-dependent condition.
///
/// # Panics
/// Panics if the construction failed.
pub(crate) fn expect_criteria<E: std::fmt::Display>(result: Result<Criteria, E>) -> Criteria {
    match result {
        Ok(c) => c,
        Err(e) => panic!("figure config produced invalid criteria: {e}"),
    }
}

/// The default experiment criteria of §V-A: ε = 30, δ = 95%, with `T`
/// taken from the dataset ("adjusted to ensure the proportion of abnormal
/// items is around 5%").
pub fn paper_criteria(dataset: &Dataset) -> Criteria {
    expect_criteria(Criteria::new(30.0, 0.95, dataset.threshold))
}

/// Construct the full comparator set at a memory budget.
pub fn all_detectors(
    criteria: Criteria,
    memory: usize,
    seed: u64,
) -> Vec<Box<dyn OutstandingDetector>> {
    vec![
        Box::new(QfDetector::paper_default(criteria, memory, seed)),
        Box::new(SquadDetector::new(criteria, memory, seed)),
        Box::new(SketchPolymerDetector::new(criteria, memory, seed)),
        Box::new(HistSketchDetector::new(criteria, memory, seed)),
        Box::new(NaiveDetector::new(criteria, memory, seed)),
    ]
}

fn fmt_f(x: f64) -> String {
    format!("{x:.4}")
}
