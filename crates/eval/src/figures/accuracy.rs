//! Accuracy-vs-space figures: Figs. 4–7 and the 1 MB spot check of §V-B.

use super::{all_detectors, fmt_f, paper_criteria, FigureOutput, Scale};
use crate::metrics::Accuracy;
use crate::runner::{ground_truth, run_detector};
use qf_baselines::QfDetector;
use qf_datasets::{cloud_like, internet_like, Dataset};
use quantile_filter::Criteria;

const SEED: u64 = 0xF16_0001;

/// Shared engine for Figs. 4 and 5: accuracy vs memory for every scheme.
fn accuracy_vs_memory(id: &str, title: &str, dataset: &Dataset, scale: Scale) -> FigureOutput {
    let criteria = paper_criteria(dataset);
    let truth = ground_truth(&dataset.items, &criteria);
    let mut out = FigureOutput::new(
        id,
        title,
        &[
            "memory_bytes",
            "scheme",
            "precision",
            "recall",
            "f1",
            "live_bytes",
        ],
    );
    for memory in scale.memory_sweep() {
        for mut det in all_detectors(criteria, memory, SEED) {
            let name = det.name();
            let result = run_detector(det.as_mut(), &dataset.items);
            let acc = Accuracy::of(&result.reported, &truth);
            out.push_row(vec![
                memory.to_string(),
                name,
                fmt_f(acc.precision()),
                fmt_f(acc.recall()),
                fmt_f(acc.f1()),
                result.memory_bytes.to_string(),
            ]);
        }
    }
    out
}

/// Fig. 4: accuracy vs memory on the Internet dataset.
pub fn fig4(scale: Scale) -> FigureOutput {
    let dataset = internet_like(&scale.internet_config());
    accuracy_vs_memory(
        "fig4",
        "Accuracy vs. memory, Internet dataset (P/R/F1 panels)",
        &dataset,
        scale,
    )
}

/// Fig. 5: accuracy vs memory on the Cloud dataset.
pub fn fig5(scale: Scale) -> FigureOutput {
    let dataset = cloud_like(&scale.cloud_config());
    accuracy_vs_memory(
        "fig5",
        "Accuracy vs. memory, Cloud dataset (P/R/F1 panels)",
        &dataset,
        scale,
    )
}

/// Fig. 6: QuantileFilter accuracy vs threshold `T` at several memory
/// settings ("we can maintain accuracy relatively stable across various
/// memory settings" — 1–512 ms on Internet data, 1–4096 s on Cloud).
pub fn fig6(scale: Scale) -> FigureOutput {
    let internet = internet_like(&scale.internet_config());
    let cloud = cloud_like(&scale.cloud_config());
    let internet_ts: &[f64] = match scale {
        Scale::Tiny => &[50.0, 300.0, 500.0],
        _ => &[1.0, 8.0, 32.0, 100.0, 300.0, 500.0],
    };
    let cloud_ts: &[f64] = match scale {
        Scale::Tiny => &[4.0, 20.0, 256.0],
        _ => &[1.0, 4.0, 20.0, 64.0, 512.0, 4096.0],
    };
    let memories = [
        scale.reference_memory() / 4,
        scale.reference_memory(),
        scale.reference_memory() * 4,
    ];
    let mut out = FigureOutput::new(
        "fig6",
        "QuantileFilter accuracy vs. threshold T, both datasets",
        &[
            "dataset",
            "threshold",
            "memory_bytes",
            "precision",
            "recall",
            "f1",
        ],
    );
    for (dataset, thresholds) in [(&internet, internet_ts), (&cloud, cloud_ts)] {
        for &t in thresholds {
            let criteria = super::expect_criteria(Criteria::new(30.0, 0.95, t));
            let truth = ground_truth(&dataset.items, &criteria);
            for memory in memories {
                let mut det = QfDetector::paper_default(criteria, memory, SEED);
                let result = run_detector(&mut det, &dataset.items);
                let acc = Accuracy::of(&result.reported, &truth);
                out.push_row(vec![
                    dataset.name.clone(),
                    t.to_string(),
                    memory.to_string(),
                    fmt_f(acc.precision()),
                    fmt_f(acc.recall()),
                    fmt_f(acc.f1()),
                ]);
            }
        }
    }
    out
}

/// Fig. 7: accuracy vs quantile δ for every scheme at the reference
/// memory.
pub fn fig7(scale: Scale) -> FigureOutput {
    let dataset = internet_like(&scale.internet_config());
    let deltas: &[f64] = match scale {
        Scale::Tiny => &[0.5, 0.95],
        _ => &[0.5, 0.75, 0.9, 0.95, 0.99],
    };
    let memory = scale.reference_memory();
    let mut out = FigureOutput::new(
        "fig7",
        "Accuracy vs. quantile delta, Internet dataset",
        &["delta", "scheme", "precision", "recall", "f1"],
    );
    for &delta in deltas {
        let criteria = super::expect_criteria(Criteria::new(30.0, delta, dataset.threshold));
        let truth = ground_truth(&dataset.items, &criteria);
        for mut det in all_detectors(criteria, memory, SEED) {
            let name = det.name();
            let result = run_detector(det.as_mut(), &dataset.items);
            let acc = Accuracy::of(&result.reported, &truth);
            out.push_row(vec![
                delta.to_string(),
                name,
                fmt_f(acc.precision()),
                fmt_f(acc.recall()),
                fmt_f(acc.f1()),
            ]);
        }
    }
    out
}

/// §V-B text claim: "when limited to 1MB, our solution attains an F1
/// accuracy of 99.77%, markedly surpassing the SOTA's F1 … below 25%."
pub fn spot1mb(scale: Scale) -> FigureOutput {
    let dataset = internet_like(&scale.internet_config());
    let criteria = paper_criteria(&dataset);
    let truth = ground_truth(&dataset.items, &criteria);
    let memory = match scale {
        Scale::Tiny => 64 * 1024,
        _ => 1024 * 1024,
    };
    let mut out = FigureOutput::new(
        "spot1mb",
        "1MB spot check (Internet dataset): F1 and throughput per scheme",
        &["scheme", "precision", "recall", "f1", "mops"],
    );
    for mut det in all_detectors(criteria, memory, SEED) {
        let name = det.name();
        let result = run_detector(det.as_mut(), &dataset.items);
        let acc = Accuracy::of(&result.reported, &truth);
        out.push_row(vec![
            name,
            fmt_f(acc.precision()),
            fmt_f(acc.recall()),
            fmt_f(acc.f1()),
            fmt_f(result.mops()),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_tiny_runs_and_has_all_schemes() {
        let f = fig4(Scale::Tiny);
        assert_eq!(f.headers.len(), 6);
        let schemes: std::collections::HashSet<&String> = f.rows.iter().map(|r| &r[1]).collect();
        assert!(schemes.len() >= 5, "schemes {schemes:?}");
        // 3 memories × 5 schemes.
        assert_eq!(f.rows.len(), 15);
    }

    #[test]
    fn fig4_qf_f1_grows_with_memory() {
        let f = fig4(Scale::Tiny);
        let qf_rows: Vec<f64> = f
            .rows
            .iter()
            .filter(|r| r[1] == "QuantileFilter")
            .map(|r| r[4].parse().unwrap())
            .collect();
        assert!(
            qf_rows.last().unwrap() >= qf_rows.first().unwrap(),
            "F1 must not degrade with memory: {qf_rows:?}"
        );
        assert!(*qf_rows.last().unwrap() > 0.5, "QF F1 too low: {qf_rows:?}");
    }

    #[test]
    fn fig6_tiny_has_threshold_sweep_on_both_datasets() {
        let f = fig6(Scale::Tiny);
        assert_eq!(f.rows.len(), 2 * 3 * 3);
        let datasets: std::collections::HashSet<&String> = f.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(datasets.len(), 2);
    }

    #[test]
    fn csv_rendering() {
        let f = spot1mb(Scale::Tiny);
        let csv = f.to_csv();
        assert!(csv.starts_with("scheme,"));
        assert!(csv.lines().count() >= 6);
    }
}
