//! Parameter and variant studies: Fig. 9 (d and block length), Fig. 11
//! (memory proportion), Fig. 12 (election strategy × vague sketch type).

use super::{fmt_f, paper_criteria, FigureOutput, Scale};
use crate::metrics::Accuracy;
use crate::runner::{ground_truth, run_detector};
use qf_baselines::{OutstandingDetector, QfDetector, SquadDetector};
use qf_datasets::{cloud_like, internet_like};
use quantile_filter::ElectionStrategy;

const SEED: u64 = 0xF16_0009;

/// Fig. 9: QuantileFilter F1 vs (a) array number `d` and (b) block length
/// `b` — both should show the "negligible impact on accuracy" the paper
/// reports.
pub fn fig9(scale: Scale) -> FigureOutput {
    let dataset = internet_like(&scale.internet_config());
    let criteria = paper_criteria(&dataset);
    let truth = ground_truth(&dataset.items, &criteria);
    // Run under space pressure so parameter effects are measurable.
    let memory = scale.tight_memory();
    let d_values: &[usize] = match scale {
        Scale::Tiny => &[1, 3, 8],
        _ => &[1, 2, 3, 4, 6, 8, 12, 16, 20],
    };
    let b_values: &[usize] = match scale {
        Scale::Tiny => &[2, 6],
        _ => &[1, 2, 4, 6, 8, 12, 16],
    };
    let mut out = FigureOutput::new(
        "fig9",
        "QuantileFilter accuracy vs. parameters, Internet dataset",
        &["parameter", "value", "precision", "recall", "f1"],
    );
    for &d in d_values {
        let mut det = QfDetector::with_params(
            criteria,
            memory,
            6,
            d,
            0.8,
            ElectionStrategy::Comparative,
            SEED,
        );
        let result = run_detector(&mut det, &dataset.items);
        let acc = Accuracy::of(&result.reported, &truth);
        out.push_row(vec![
            "d".into(),
            d.to_string(),
            fmt_f(acc.precision()),
            fmt_f(acc.recall()),
            fmt_f(acc.f1()),
        ]);
    }
    for &b in b_values {
        let mut det = QfDetector::with_params(
            criteria,
            memory,
            b,
            3,
            0.8,
            ElectionStrategy::Comparative,
            SEED,
        );
        let result = run_detector(&mut det, &dataset.items);
        let acc = Accuracy::of(&result.reported, &truth);
        out.push_row(vec![
            "block_len".into(),
            b.to_string(),
            fmt_f(acc.precision()),
            fmt_f(acc.recall()),
            fmt_f(acc.f1()),
        ]);
    }
    out
}

/// Fig. 11: F1 vs candidate:vague memory proportion ("extreme allocations
/// can lead to considerable fluctuations … we chose the more stable ratio
/// of 1:4 [vague:candidate]").
pub fn fig11(scale: Scale) -> FigureOutput {
    let dataset = internet_like(&scale.internet_config());
    let criteria = paper_criteria(&dataset);
    let truth = ground_truth(&dataset.items, &criteria);
    let fractions: &[f64] = match scale {
        Scale::Tiny => &[0.2, 0.8],
        _ => &[0.06, 0.11, 0.2, 0.33, 0.5, 0.67, 0.8, 0.89, 0.94],
    };
    // Extreme allocations only fluctuate when memory binds (the paper's
    // "considerable fluctuations" regime).
    let memories = [scale.tight_memory(), scale.tight_memory() * 4];
    let mut out = FigureOutput::new(
        "fig11",
        "QuantileFilter F1 vs. candidate-part fraction of memory",
        &["candidate_fraction", "memory_bytes", "f1"],
    );
    for &frac in fractions {
        for memory in memories {
            let mut det = QfDetector::with_params(
                criteria,
                memory,
                6,
                3,
                frac,
                ElectionStrategy::Comparative,
                SEED,
            );
            let result = run_detector(&mut det, &dataset.items);
            let acc = Accuracy::of(&result.reported, &truth);
            out.push_row(vec![frac.to_string(), memory.to_string(), fmt_f(acc.f1())]);
        }
    }
    out
}

/// Fig. 12: the six variants (Comparative/Probabilistic/Forceful ×
/// CS/CMS) on both datasets, with SQUAD as the reference line.
pub fn fig12(scale: Scale) -> FigureOutput {
    let datasets = [
        internet_like(&scale.internet_config()),
        cloud_like(&scale.cloud_config()),
    ];
    let mut out = FigureOutput::new(
        "fig12",
        "F1 of QuantileFilter variants (strategy x vague sketch)",
        &["dataset", "memory_bytes", "variant", "f1", "mops"],
    );
    for dataset in &datasets {
        let criteria = paper_criteria(dataset);
        let truth = ground_truth(&dataset.items, &criteria);
        for memory in scale.memory_sweep() {
            let mut variants: Vec<Box<dyn OutstandingDetector>> = Vec::new();
            for strategy in ElectionStrategy::ALL {
                variants.push(Box::new(QfDetector::with_params(
                    criteria, memory, 6, 3, 0.8, strategy, SEED,
                )));
                variants.push(Box::new(QfDetector::with_cms(
                    criteria, memory, 3, 0.8, strategy, SEED,
                )));
            }
            variants.push(Box::new(SquadDetector::new(criteria, memory, SEED)));
            for mut det in variants {
                let name = det.name();
                let result = run_detector(det.as_mut(), &dataset.items);
                let acc = Accuracy::of(&result.reported, &truth);
                out.push_row(vec![
                    dataset.name.clone(),
                    memory.to_string(),
                    name,
                    fmt_f(acc.f1()),
                    fmt_f(result.mops()),
                ]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_accuracy_insensitive_to_d() {
        let f = fig9(Scale::Tiny);
        let f1s: Vec<f64> = f
            .rows
            .iter()
            .filter(|r| r[0] == "d")
            .map(|r| r[4].parse().unwrap())
            .collect();
        assert!(f1s.len() >= 3);
        let spread = f1s.iter().cloned().fold(f64::MIN, f64::max)
            - f1s.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.5, "d matters too much: {f1s:?}");
    }

    #[test]
    fn fig11_covers_fractions() {
        let f = fig11(Scale::Tiny);
        assert_eq!(f.rows.len(), 2 * 2);
    }

    #[test]
    fn fig12_has_seven_series() {
        let f = fig12(Scale::Tiny);
        let variants: std::collections::HashSet<&String> = f.rows.iter().map(|r| &r[2]).collect();
        assert_eq!(variants.len(), 7, "{variants:?}");
    }
}
