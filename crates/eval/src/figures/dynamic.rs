//! Dynamic criteria modification (§III-C / §V-D, Figs. 13–15): change
//! ε, δ or T for half the keys mid-stream and compare the accuracy of
//! modified and unmodified keys against the unmodified baseline.
//!
//! Protocol (following §V-D): keys with even ids are the *modified* half.
//! At the stream midpoint each modified key's Qweight is deleted (the
//! §III-C modification procedure — "remove its Qweight via the deletion
//! operation, then insert under new criteria; following criteria change,
//! V_x resets to empty") and subsequent inserts carry the new criteria.
//! Ground truth applies the same reset-and-switch semantics exactly.

use super::{fmt_f, paper_criteria, FigureOutput, Scale};
use crate::metrics::Accuracy;
use crate::runner::{ground_truth, run_detector};
use qf_baselines::QfDetector;
use qf_datasets::{internet_like, Item};
use quantile_filter::qweight::QweightTracker;
use quantile_filter::Criteria;
use std::collections::{HashMap, HashSet};

const SEED: u64 = 0xF16_000D;

#[inline]
fn is_modified(key: u64) -> bool {
    key.is_multiple_of(2)
}

/// Exact outstanding set under the switch protocol.
fn truth_with_switch(
    items: &[Item],
    before: &Criteria,
    after: &Criteria,
    switch_at: usize,
) -> HashSet<u64> {
    let mut trackers: HashMap<u64, QweightTracker> = HashMap::new();
    let mut out = HashSet::new();
    for (i, it) in items.iter().enumerate() {
        if i == switch_at {
            // V_x resets to empty for modified keys at the switch.
            for (&k, t) in trackers.iter_mut() {
                if is_modified(k) {
                    t.reset();
                }
            }
        }
        let c = if i >= switch_at && is_modified(it.key) {
            after
        } else {
            before
        };
        let t = trackers.entry(it.key).or_default();
        t.observe(it.value, c);
        if t.quantile_exceeds(c) {
            out.insert(it.key);
            t.reset();
        }
    }
    out
}

/// QuantileFilter run under the switch protocol.
fn qf_with_switch(
    items: &[Item],
    before: &Criteria,
    after: &Criteria,
    switch_at: usize,
    memory: usize,
) -> HashSet<u64> {
    let mut det = QfDetector::paper_default(*before, memory, SEED);
    let modified_keys: HashSet<u64> = items
        .iter()
        .map(|it| it.key)
        .filter(|&k| is_modified(k))
        .collect();
    let mut reported = HashSet::new();
    for (i, it) in items.iter().enumerate() {
        if i == switch_at {
            // §III-C: deletion operation for every key whose criteria
            // change.
            for &k in &modified_keys {
                det.filter_mut().modify_key_criteria(&k);
            }
        }
        let c = if i >= switch_at && is_modified(it.key) {
            after
        } else {
            before
        };
        if det
            .filter_mut()
            .insert_with_criteria(&it.key, it.value, c)
            .is_some()
        {
            reported.insert(it.key);
        }
    }
    reported
}

/// Shared engine: sweep `after`-criteria variants, report modified /
/// unmodified subset F1 plus the no-modification baseline.
fn dynamic_figure(
    id: &str,
    title: &str,
    scale: Scale,
    variants: Vec<(String, Criteria)>,
) -> FigureOutput {
    let dataset = internet_like(&scale.internet_config());
    let base = paper_criteria(&dataset);
    // Space pressure makes the modification error effects visible.
    let memory = scale.tight_memory() * 2;
    let switch_at = dataset.items.len() / 2;

    // Baseline: no modification at all.
    let baseline_truth = ground_truth(&dataset.items, &base);
    let mut baseline_det = QfDetector::paper_default(base, memory, SEED);
    let baseline_run = run_detector(&mut baseline_det, &dataset.items);
    let base_mod = Accuracy::of_subset(&baseline_run.reported, &baseline_truth, is_modified);
    let base_unmod =
        Accuracy::of_subset(&baseline_run.reported, &baseline_truth, |k| !is_modified(k));

    let mut out = FigureOutput::new(
        id,
        title,
        &["modified_param", "subset", "f1", "baseline_f1"],
    );
    for (label, after) in variants {
        let truth = truth_with_switch(&dataset.items, &base, &after, switch_at);
        let reported = qf_with_switch(&dataset.items, &base, &after, switch_at, memory);
        let acc_mod = Accuracy::of_subset(&reported, &truth, is_modified);
        let acc_unmod = Accuracy::of_subset(&reported, &truth, |k| !is_modified(k));
        out.push_row(vec![
            label.clone(),
            "modified".into(),
            fmt_f(acc_mod.f1()),
            fmt_f(base_mod.f1()),
        ]);
        out.push_row(vec![
            label,
            "unmodified".into(),
            fmt_f(acc_unmod.f1()),
            fmt_f(base_unmod.f1()),
        ]);
    }
    out
}

/// Fig. 13: modifying ε ("making ε larger increases accuracy … unmodified
/// keys largely unaffected").
pub fn fig13(scale: Scale) -> FigureOutput {
    let base = super::expect_criteria(Criteria::new(30.0, 0.95, 300.0));
    let eps: &[f64] = match scale {
        Scale::Tiny => &[10.0, 60.0],
        _ => &[5.0, 10.0, 30.0, 60.0, 120.0],
    };
    let variants = eps
        .iter()
        .map(|&e| {
            (
                format!("eps={e}"),
                super::expect_criteria(base.with_epsilon(e)),
            )
        })
        .collect();
    dynamic_figure(
        "fig13",
        "Dynamic modification of epsilon for half the keys",
        scale,
        variants,
    )
}

/// Fig. 14: modifying δ ("the smaller the δ, the greater the error").
pub fn fig14(scale: Scale) -> FigureOutput {
    let base = super::expect_criteria(Criteria::new(30.0, 0.95, 300.0));
    let deltas: &[f64] = match scale {
        Scale::Tiny => &[0.9, 0.99],
        _ => &[0.5, 0.75, 0.9, 0.95, 0.99],
    };
    let variants = deltas
        .iter()
        .map(|&d| {
            (
                format!("delta={d}"),
                super::expect_criteria(base.with_delta(d)),
            )
        })
        .collect();
    dynamic_figure(
        "fig14",
        "Dynamic modification of delta for half the keys",
        scale,
        variants,
    )
}

/// Fig. 15: modifying T ("the smaller T is … increasing the error for
/// unmodified keys").
pub fn fig15(scale: Scale) -> FigureOutput {
    let base = super::expect_criteria(Criteria::new(30.0, 0.95, 300.0));
    let thresholds: &[f64] = match scale {
        Scale::Tiny => &[100.0, 500.0],
        _ => &[50.0, 100.0, 300.0, 500.0, 1000.0],
    };
    let variants = thresholds
        .iter()
        .map(|&t| {
            (
                format!("T={t}"),
                super::expect_criteria(base.with_threshold(t)),
            )
        })
        .collect();
    dynamic_figure(
        "fig15",
        "Dynamic modification of T for half the keys",
        scale,
        variants,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_switch_resets_modified_keys() {
        // Key 0 (modified) accumulates above-T items before the switch;
        // after the reset it must re-accumulate from zero.
        let c0 = Criteria::new(5.0, 0.9, 100.0).unwrap();
        let c1 = Criteria::new(20.0, 0.9, 100.0).unwrap(); // stricter ε
        let items: Vec<Item> = (0..10)
            .map(|_| Item {
                key: 0,
                value: 500.0,
            })
            .collect();
        // Switch right after item 5: the first 6 items would have fired
        // under c0 at item 6 — but the reset at index 5 wipes progress and
        // c1's threshold (20/0.1 = 200 Qweight ⇒ 23 items) is unreachable.
        let truth = truth_with_switch(&items, &c0, &c1, 5);
        assert!(!truth.contains(&0));
        // Without the switch it is outstanding.
        let truth_nomod = truth_with_switch(&items, &c0, &c0, usize::MAX);
        assert!(truth_nomod.contains(&0));
    }

    #[test]
    fn fig13_tiny_produces_both_subsets() {
        let f = fig13(Scale::Tiny);
        assert_eq!(f.rows.len(), 4); // 2 variants × 2 subsets
        let subsets: std::collections::HashSet<&String> = f.rows.iter().map(|r| &r[1]).collect();
        assert_eq!(subsets.len(), 2);
    }
}
