//! Equivalence suite for the pre-partitioned `run_parallel`.
//!
//! The rewrite replaced "every worker rescans the full item slice and
//! locks per item" with "partition once, one lock per shard per worker".
//! The contract is that the *reported-key set* is unchanged: per-shard
//! item order is still the stream order, per-key state never crosses
//! shards, and the shard→worker mapping is the same `shard % threads`.
//!
//! The reference here is [`ShardedDetector::insert`] driven serially over
//! the stream — exactly the old per-item routing (shard hash per item,
//! lock per item), so agreement with it across 1–8 threads pins the new
//! path to the old behavior on seeded Zipf and internet-shaped traces.

use qf_baselines::QfDetector;
use qf_datasets::{internet_like, zipf_dataset, InternetConfig, Item, ZipfConfig};
use qf_eval::ShardedDetector;
use quantile_filter::Criteria;
use std::collections::HashSet;

fn criteria(threshold: f64) -> Criteria {
    match Criteria::new(5.0, 0.9, threshold) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e}"),
    }
}

fn bank(shards: usize, threshold: f64) -> ShardedDetector<QfDetector> {
    ShardedDetector::new(
        (0..shards)
            .map(|i| QfDetector::paper_default(criteria(threshold), 32 * 1024, i as u64))
            .collect(),
    )
}

/// The old semantics, spelled out: walk the stream in order, route each
/// item to its shard, collect the deduplicated reported keys.
fn reference_reported(bank: &ShardedDetector<QfDetector>, items: &[Item]) -> HashSet<u64> {
    let mut reported = HashSet::new();
    for it in items {
        if bank.insert(it.key, it.value) {
            reported.insert(it.key);
        }
    }
    reported
}

fn assert_equivalent_across_threads(items: &[Item], threshold: f64, shards: usize) {
    let reference = {
        let b = bank(shards, threshold);
        reference_reported(&b, items)
    };
    assert!(
        !reference.is_empty(),
        "trace produced no reports — equivalence would be vacuous"
    );
    for threads in 1..=8 {
        let b = bank(shards, threshold);
        let got = b.run_parallel(items, threads);
        assert_eq!(
            got, reference,
            "reported set diverged from per-item routing at {threads} threads"
        );
    }
}

#[test]
fn partitioned_run_matches_per_item_routing_on_zipf() {
    let data = zipf_dataset(&ZipfConfig::tiny());
    assert_equivalent_across_threads(&data.items, data.threshold, 8);
}

#[test]
fn partitioned_run_matches_per_item_routing_on_internet_trace() {
    let data = internet_like(&InternetConfig::tiny());
    assert_equivalent_across_threads(&data.items, data.threshold, 8);
}

#[test]
fn partitioned_run_matches_with_more_shards_than_threads() {
    // 5 shards over up to 8 threads exercises the threads > shards clamp
    // and the uneven shard→worker assignment in one go.
    let data = zipf_dataset(&ZipfConfig::tiny());
    assert_equivalent_across_threads(&data.items, data.threshold, 5);
}

#[test]
fn empty_stream_reports_nothing() {
    let b = bank(4, 300.0);
    assert!(b.run_parallel(&[], 4).is_empty());
}
