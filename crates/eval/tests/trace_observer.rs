//! Observer-effect guard for the flight recorder: tracing must never
//! change what the filter reports.
//!
//! Mirror of `telemetry_observer.rs` for the `trace` feature. The trace
//! hooks are required to be pure observers — with the feature off they
//! compile to nothing, and with it on they only stamp events into a
//! thread-local ring (and drop them entirely on threads with no
//! recorder installed), never touching filter state or RNG streams. A
//! single binary cannot compile both feature configurations at once, so
//! the check is the same *golden* test: the full report sequence of a
//! fixed seeded Zipf trace is hashed and compared against the constant
//! computed from the uninstrumented build. CI runs this test with the
//! feature off and on; both builds must reproduce the identical hash.

use qf_baselines::{OutstandingDetector, QfDetector};
use qf_datasets::{zipf_dataset, ZipfConfig};
use quantile_filter::Criteria;

/// FNV-1a over the (item index, key) pairs of every report event.
fn report_sequence_hash(
    detector: &mut dyn OutstandingDetector,
    items: &[qf_datasets::Item],
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (i, it) in items.iter().enumerate() {
        if detector.insert(it.key, it.value) {
            fnv(i as u64);
            fnv(it.key);
        }
    }
    h
}

#[test]
fn report_sequence_identical_with_and_without_trace() {
    let cfg = ZipfConfig {
        items: 120_000,
        keys: 4_000,
        alpha: 1.2,
        seed: 77,
        ..ZipfConfig::default()
    };
    let ds = zipf_dataset(&cfg);
    let criteria = Criteria::new(30.0, 0.95, ds.threshold).expect("paper-default criteria");
    let mut det = QfDetector::paper_default(criteria, 128 * 1024, 9);
    let got = report_sequence_hash(&mut det, &ds.items);

    // Same golden value as telemetry_observer.rs — both instrumentation
    // layers are held to the same bar: bit-identical detection output.
    // The trace-enabled build runs with NO recorder installed on this
    // thread (the common case for library users), so this additionally
    // pins that the uninstalled fast path is free of side effects.
    const GOLDEN: u64 = 0x47b7_dc03_60ce_e143;
    assert_eq!(
        got, GOLDEN,
        "report sequence diverged (got {got:#018x}); trace hooks must be pure observers"
    );
}
