//! Observer-effect guard: instrumentation must never change what the
//! filter reports.
//!
//! The telemetry hooks are required to be pure observers — with the
//! `telemetry` feature off they compile to nothing, and with it on they
//! only touch atomic counters, never filter state or RNG streams. A
//! single binary cannot compile both feature configurations at once, so
//! the check is a *golden* test: the full report sequence of a fixed
//! seeded Zipf trace is hashed and compared against a hard-coded
//! constant. CI runs this same test with the feature off and on; both
//! builds must reproduce the identical hash, so any hook that perturbs
//! behaviour (an RNG draw, a reordered branch, a stats side effect)
//! fails exactly one of the two jobs.

use qf_baselines::{OutstandingDetector, QfDetector};
use qf_datasets::{zipf_dataset, ZipfConfig};
use quantile_filter::Criteria;

/// FNV-1a over the (item index, key) pairs of every report event.
fn report_sequence_hash(
    detector: &mut dyn OutstandingDetector,
    items: &[qf_datasets::Item],
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (i, it) in items.iter().enumerate() {
        if detector.insert(it.key, it.value) {
            fnv(i as u64);
            fnv(it.key);
        }
    }
    h
}

#[test]
fn report_sequence_identical_with_and_without_telemetry() {
    let cfg = ZipfConfig {
        items: 120_000,
        keys: 4_000,
        alpha: 1.2,
        seed: 77,
        ..ZipfConfig::default()
    };
    let ds = zipf_dataset(&cfg);
    let criteria = Criteria::new(30.0, 0.95, ds.threshold).expect("paper-default criteria");
    let mut det = QfDetector::paper_default(criteria, 128 * 1024, 9);
    let got = report_sequence_hash(&mut det, &ds.items);

    // Golden value computed from the telemetry-DISABLED build. The
    // telemetry-enabled build must reproduce it bit-for-bit; if either
    // build diverges, a hook has mutated filter behaviour.
    const GOLDEN: u64 = 0x47b7_dc03_60ce_e143;
    assert_eq!(
        got, GOLDEN,
        "report sequence diverged (got {got:#018x}); telemetry hooks must be pure observers"
    );
}
