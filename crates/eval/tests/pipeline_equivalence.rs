//! Differential suite: the live concurrent pipeline against the batch
//! sharded harness.
//!
//! Both systems route keys with `qf_pipeline::shard_of` and seed shard
//! `i`'s filter with `i`, so over the same trace their per-shard item
//! streams are identical. The contract ([`PipelineDetector`] docs, and
//! the issue's acceptance bar): for 1/2/4/8 shards, the concurrent
//! pipeline's reported key set equals single-threaded `ShardedDetector`
//! routing — regardless of how the OS interleaves the worker threads.

use qf_baselines::QfDetector;
use qf_datasets::{zipf_dataset, Item, ZipfConfig};
use qf_eval::{PipelineDetector, ShardedDetector};
use qf_pipeline::SupervisorConfig;
use quantile_filter::Criteria;
use std::collections::HashSet;

fn criteria(threshold: f64) -> Criteria {
    match Criteria::new(5.0, 0.9, threshold) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e}"),
    }
}

const SHARD_MEMORY: usize = 32 * 1024;

/// Single-threaded serial routing over the same shard bank geometry.
fn serial_reference(items: &[Item], threshold: f64, shards: usize) -> HashSet<u64> {
    let bank = ShardedDetector::new(
        (0..shards)
            .map(|i| QfDetector::paper_default(criteria(threshold), SHARD_MEMORY, i as u64))
            .collect::<Vec<_>>(),
    );
    let mut reported = HashSet::new();
    for it in items {
        if bank.insert(it.key, it.value) {
            reported.insert(it.key);
        }
    }
    reported
}

#[test]
fn pipeline_reports_equal_serial_sharded_routing() {
    let data = zipf_dataset(&ZipfConfig::tiny());
    for shards in [1usize, 2, 4, 8] {
        let reference = serial_reference(&data.items, data.threshold, shards);
        assert!(
            !reference.is_empty(),
            "trace produced no reports — equivalence would be vacuous"
        );
        let detector =
            PipelineDetector::paper_default(criteria(data.threshold), shards, SHARD_MEMORY);
        let run = match detector.run(&data.items) {
            Ok(r) => r,
            Err(e) => panic!("pipeline run (shards={shards}): {e}"),
        };
        assert_eq!(
            run.reported, reference,
            "pipeline vs serial divergence at shards={shards}"
        );
        // Lossless policy + full drain: conservation is exact.
        assert_eq!(run.summary.offered, data.items.len() as u64);
        assert_eq!(run.summary.dropped, 0);
        assert_eq!(run.summary.processed, run.summary.enqueued);
    }
}

#[test]
fn supervised_pipeline_reports_equal_serial_sharded_routing() {
    // Supervision (checkpointing, journaling, watchdog) must be
    // observationally free when nothing crashes: same key set as the
    // serial reference, zero loss, zero restarts.
    let data = zipf_dataset(&ZipfConfig::tiny());
    for shards in [2usize, 4] {
        let reference = serial_reference(&data.items, data.threshold, shards);
        let detector =
            PipelineDetector::paper_default(criteria(data.threshold), shards, SHARD_MEMORY);
        let run = match detector.run_supervised(SupervisorConfig::default(), &data.items) {
            Ok(r) => r,
            Err(e) => panic!("supervised pipeline run (shards={shards}): {e}"),
        };
        assert_eq!(
            run.reported, reference,
            "supervised pipeline vs serial divergence at shards={shards}"
        );
        assert_eq!(run.summary.lost_to_crash, 0);
        assert_eq!(run.summary.restarts, 0);
        assert_eq!(run.summary.rejected, 0);
        assert_eq!(run.summary.processed, run.summary.enqueued);
        assert!(run.summary.recoveries.is_empty());
    }
}

#[test]
fn pipeline_agrees_with_run_parallel() {
    // Transitivity check against the batch path actually used by the
    // benches: run_parallel over the same bank must also agree.
    let data = zipf_dataset(&ZipfConfig::tiny());
    let shards = 4;
    let bank = ShardedDetector::new(
        (0..shards)
            .map(|i| QfDetector::paper_default(criteria(data.threshold), SHARD_MEMORY, i as u64))
            .collect::<Vec<_>>(),
    );
    let batch = bank.run_parallel_counted(&data.items, shards);
    assert_eq!(batch.effective_threads, shards);
    let detector = PipelineDetector::paper_default(criteria(data.threshold), shards, SHARD_MEMORY);
    let live = match detector.run(&data.items) {
        Ok(r) => r,
        Err(e) => panic!("pipeline run: {e}"),
    };
    assert_eq!(live.reported, batch.reported);
}
