//! Synthetic key–value stream workloads for the QuantileFilter evaluation.
//!
//! The paper evaluates on three datasets (§V-A): CAIDA internet traffic
//! (26.1M items / 0.64M five-tuple keys, inter-arrival values), Yahoo cloud
//! flows (20.5M items / 16.9M keys, duration values) and a synthetic Zipf
//! dataset. The real traces are proprietary, so this crate generates
//! statistically matched substitutes (see DESIGN.md §4 for the
//! substitution argument):
//!
//! * [`generators::internet_like`] — Zipf(α≈1.1) key popularity, ~40
//!   items/key, heavy-tailed latency values, T = 300 yielding ≈7.6%
//!   abnormal items.
//! * [`generators::cloud_like`] — extreme key cardinality (most keys appear
//!   once or twice) over a small heavy core, duration values, T = 20s at
//!   ≈4.6% abnormal items.
//! * [`generators::zipf_dataset`] — the paper's synthetic model: item
//!   frequencies Zipf(α); each value is a Zipf-distributed component plus a
//!   per-key constant drawn from a normal distribution.
//!
//! All generation is deterministic in the config seed, parallelized with
//! crossbeam across chunks, and traces round-trip through a compact binary
//! format ([`trace`]).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod generators;
pub mod trace;
pub mod values;
pub mod zipf;

pub use config::{CloudConfig, DatasetKind, InternetConfig, ZipfConfig};
pub use generators::{cloud_like, internet_like, zipf_dataset, Dataset};
pub use zipf::ZipfSampler;

/// One stream item: a key identifier and a value.
///
/// Keys are dense `u64` ids; [`key_to_five_tuple`] provides the
/// deterministic network five-tuple view used when a workload must look
/// like packet data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Key identifier.
    pub key: u64,
    /// Observed value (latency ms, duration s, ...).
    pub value: f64,
}

/// Deterministically expand a key id into a plausible network five-tuple.
pub fn key_to_five_tuple(key: u64) -> qf_hash::FiveTuple {
    let h = qf_hash::mix64(key ^ 0x5EED_F17E);
    qf_hash::FiveTuple {
        src_ip: (h >> 32) as u32,
        dst_ip: (h & 0xFFFF_FFFF) as u32,
        src_port: (qf_hash::mix64(h) >> 48) as u16,
        dst_port: (qf_hash::mix64(h.wrapping_add(1)) >> 48) as u16,
        protocol: if h & 1 == 0 { 6 } else { 17 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tuple_view_deterministic_and_distinct() {
        assert_eq!(key_to_five_tuple(5), key_to_five_tuple(5));
        assert_ne!(key_to_five_tuple(5), key_to_five_tuple(6));
    }

    #[test]
    fn five_tuple_views_mostly_injective() {
        use std::collections::HashSet;
        let set: HashSet<_> = (0u64..10_000)
            .map(|k| key_to_five_tuple(k).as_u128())
            .collect();
        assert_eq!(set.len(), 10_000);
    }
}
