//! Per-key value models: heavy-tailed latencies/durations whose per-key
//! location decides whether a key is quantile-outstanding.
//!
//! Every generated key gets a *profile* — a median scale — and each of its
//! items draws `value = median · lognormal(0, σ)`. A configurable fraction
//! of keys are *laggy*: their median is multiplied by a boost factor that
//! pushes most of their values past the threshold `T`, making the frequent
//! ones quantile-outstanding. The paper's Zipf dataset instead adds a
//! per-key normal constant to a Zipf-distributed component
//! ([`ZipfValueModel`]).

use rand::Rng;

/// Draw a standard normal via Box–Muller.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A key's latency profile: the median of its lognormal value distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyProfile {
    /// Median of the key's value distribution.
    pub median: f64,
    /// Whether the key was boosted into the laggy population.
    pub laggy: bool,
}

/// Configuration for the lognormal latency model.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Median of the (lognormal) distribution of per-key medians.
    pub base_median: f64,
    /// σ of the per-key median spread (log scale).
    pub median_sigma: f64,
    /// σ of the per-item value noise (log scale).
    pub value_sigma: f64,
    /// Fraction of keys whose median is boosted.
    pub laggy_fraction: f64,
    /// Multiplier applied to laggy keys' medians.
    pub laggy_boost: f64,
}

impl LatencyModel {
    /// The internet-like default: ~50 ms typical latency, a 6% laggy
    /// population landing around 12× higher, moderate per-item jitter.
    /// With T = 300 ms the laggy keys put ~90% of their items above the
    /// threshold, so the item-level abnormal fraction lands in the
    /// several-percent range the paper reports (≈7.6%).
    pub fn internet_default() -> Self {
        Self {
            base_median: 50.0,
            median_sigma: 0.5,
            value_sigma: 0.6,
            laggy_fraction: 0.06,
            laggy_boost: 12.0,
        }
    }

    /// The cloud-like default: ~5 s flow durations, 3% laggy keys around
    /// 10× higher (T = 20 s).
    pub fn cloud_default() -> Self {
        Self {
            base_median: 5.0,
            median_sigma: 0.5,
            value_sigma: 0.5,
            laggy_fraction: 0.03,
            laggy_boost: 10.0,
        }
    }

    /// Deterministically derive key `k`'s profile from the model seed.
    pub fn profile(&self, key: u64, seed: u64) -> KeyProfile {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(qf_hash::mix64(seed ^ key));
        let mut median = self.base_median * (self.median_sigma * standard_normal(&mut rng)).exp();
        let laggy = rng.gen::<f64>() < self.laggy_fraction;
        if laggy {
            median *= self.laggy_boost;
        }
        KeyProfile { median, laggy }
    }

    /// Draw one value for a key with the given profile.
    #[inline]
    pub fn draw<R: Rng + ?Sized>(&self, profile: KeyProfile, rng: &mut R) -> f64 {
        profile.median * (self.value_sigma * standard_normal(rng)).exp()
    }
}

/// The paper's Zipf-dataset value model: "each value is derived by summing
/// two components: one that adheres to a fixed-parameter Zipf distribution,
/// and another that is constant given a key and varies with the key
/// according to a normal distribution with fixed mean and standard
/// deviation."
#[derive(Debug, Clone, Copy)]
pub struct ZipfValueModel {
    /// Exponent of the Zipf-distributed component.
    pub component_alpha: f64,
    /// Scale of the Zipf component (value of rank 1).
    pub component_scale: f64,
    /// Number of ranks in the Zipf component.
    pub component_ranks: u64,
    /// Mean of the per-key constant.
    pub key_mean: f64,
    /// Standard deviation of the per-key constant.
    pub key_std: f64,
}

impl ZipfValueModel {
    /// Defaults tuned so T = 300 puts a few percent of items above.
    pub fn paper_default() -> Self {
        Self {
            component_alpha: 1.2,
            component_scale: 400.0,
            component_ranks: 1000,
            key_mean: 100.0,
            key_std: 60.0,
        }
    }

    /// The per-key constant component.
    pub fn key_constant(&self, key: u64, seed: u64) -> f64 {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(qf_hash::mix64(seed ^ key ^ 0xC0));
        (self.key_mean + self.key_std * standard_normal(&mut rng)).max(0.0)
    }

    /// Draw the Zipf component: rank r drawn Zipf(α), value = scale / r.
    pub fn draw_component<R: Rng + ?Sized>(
        &self,
        sampler: &crate::zipf::ZipfSampler,
        rng: &mut R,
    ) -> f64 {
        let rank = sampler.sample(rng);
        self.component_scale / rank as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn profiles_deterministic() {
        let m = LatencyModel::internet_default();
        assert_eq!(m.profile(42, 7), m.profile(42, 7));
        assert_ne!(m.profile(42, 7), m.profile(43, 7));
    }

    #[test]
    fn laggy_fraction_approximated() {
        let m = LatencyModel::internet_default();
        let laggy = (0u64..50_000).filter(|&k| m.profile(k, 3).laggy).count();
        let frac = laggy as f64 / 50_000.0;
        assert!(
            (frac - m.laggy_fraction).abs() < 0.01,
            "laggy fraction {frac} vs configured {}",
            m.laggy_fraction
        );
    }

    #[test]
    fn laggy_keys_exceed_threshold_mostly() {
        let m = LatencyModel::internet_default();
        let mut rng = StdRng::seed_from_u64(9);
        // Find a laggy key and check most of its values clear T = 300.
        let key = (0u64..10_000).find(|&k| m.profile(k, 3).laggy).unwrap();
        let p = m.profile(key, 3);
        if p.median > 400.0 {
            let above = (0..1000).filter(|_| m.draw(p, &mut rng) > 300.0).count();
            assert!(above > 500, "laggy key only {above}/1000 above T");
        }
    }

    #[test]
    fn normal_keys_rarely_exceed_threshold() {
        let m = LatencyModel::internet_default();
        let mut rng = StdRng::seed_from_u64(10);
        let mut above = 0;
        let mut total = 0;
        for k in 0u64..200 {
            let p = m.profile(k, 5);
            if p.laggy {
                continue;
            }
            for _ in 0..100 {
                total += 1;
                if m.draw(p, &mut rng) > 300.0 {
                    above += 1;
                }
            }
        }
        let frac = f64::from(above) / f64::from(total);
        assert!(frac < 0.05, "normal keys abnormal fraction {frac}");
    }

    #[test]
    fn zipf_value_model_components() {
        let zm = ZipfValueModel::paper_default();
        assert_eq!(zm.key_constant(1, 2), zm.key_constant(1, 2));
        let sampler = crate::zipf::ZipfSampler::new(zm.component_ranks, zm.component_alpha);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let c = zm.draw_component(&sampler, &mut rng);
            assert!(c > 0.0 && c <= zm.component_scale);
        }
    }
}
