//! The three workload generators, each a statistical stand-in for one of
//! the paper's datasets (substitution rationale in DESIGN.md §4).
//!
//! Generation is deterministic in the config seed and parallelized with
//! crossbeam: the item range is split into chunks, each chunk gets an
//! independent RNG stream derived from `(seed, chunk_index)`, so the output
//! is identical regardless of thread count.

use crate::config::{CloudConfig, InternetConfig, ZipfConfig};
use crate::values::{KeyProfile, LatencyModel};
use crate::zipf::ZipfSampler;
use crate::Item;
use rand::prelude::*;
use rand::rngs::SmallRng;

/// A generated workload plus its provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable workload name ("internet", "cloud", "zipf-a1.1").
    pub name: String,
    /// The stream.
    pub items: Vec<Item>,
    /// The value threshold `T` the experiments use.
    pub threshold: f64,
    /// Distinct keys actually present.
    pub key_count: u64,
    /// Fraction of items whose value exceeds `T`.
    pub abnormal_fraction: f64,
}

impl Dataset {
    fn finalize(name: String, items: Vec<Item>, threshold: f64) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(items.len() / 4);
        let mut abnormal = 0usize;
        for it in &items {
            seen.insert(it.key);
            if it.value > threshold {
                abnormal += 1;
            }
        }
        let abnormal_fraction = abnormal as f64 / items.len().max(1) as f64;
        Self {
            name,
            key_count: seen.len() as u64,
            abnormal_fraction,
            items,
            threshold,
        }
    }

    /// Average items per distinct key.
    pub fn items_per_key(&self) -> f64 {
        self.items.len() as f64 / self.key_count.max(1) as f64
    }
}

/// Split `n` into chunks and run `f(chunk_index, start, len)` on scoped
/// threads, concatenating the per-chunk outputs in order.
fn parallel_chunks<F>(n: usize, threads: usize, f: F) -> Vec<Item>
where
    F: Fn(usize, usize, usize) -> Vec<Item> + Sync,
{
    let threads = threads.max(1);
    let chunk = n.div_ceil(threads);
    let mut outputs: Vec<Vec<Item>> = Vec::with_capacity(threads);
    let scope_result = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let len = chunk.min(n.saturating_sub(start));
            if len == 0 {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move |_| f(t, start, len)));
        }
        for h in handles {
            match h.join() {
                Ok(out) => outputs.push(out),
                // Re-raise a generator thread's panic on the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    let mut items = Vec::with_capacity(n);
    for o in outputs {
        items.extend_from_slice(&o);
    }
    items
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Precompute key profiles for a bounded key space.
fn profiles(model: &LatencyModel, keys: u64, seed: u64) -> Vec<KeyProfile> {
    (0..keys).map(|k| model.profile(k, seed)).collect()
}

/// CAIDA-like internet workload: Zipf key popularity, lognormal latencies,
/// a laggy key minority that crosses `T`.
pub fn internet_like(cfg: &InternetConfig) -> Dataset {
    let sampler = ZipfSampler::new(cfg.keys, cfg.alpha);
    let profs = profiles(&cfg.model, cfg.keys, cfg.seed);
    let items = parallel_chunks(cfg.items, default_threads(), |t, _start, len| {
        let mut rng = SmallRng::seed_from_u64(qf_hash::mix64(cfg.seed ^ (t as u64) << 32));
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let key = sampler.sample(&mut rng) - 1;
            let value = cfg.model.draw(profs[key as usize], &mut rng);
            out.push(Item { key, value });
        }
        out
    });
    Dataset::finalize("internet".into(), items, cfg.threshold)
}

/// Yahoo-like cloud workload: a small Zipf heavy core plus an ocean of
/// keys that appear only once or twice (the paper's 16.9M-unique-keys
/// regime, where HistSketch's space explodes).
pub fn cloud_like(cfg: &CloudConfig) -> Dataset {
    let core_sampler = ZipfSampler::new(cfg.core_keys, cfg.core_alpha);
    let core_profs = profiles(&cfg.model, cfg.core_keys, cfg.seed);
    let tail_keys = ((cfg.items as f64 * cfg.tail_key_fraction) as u64).max(1);
    let items = parallel_chunks(cfg.items, default_threads(), |t, _start, len| {
        let mut rng = SmallRng::seed_from_u64(qf_hash::mix64(cfg.seed ^ (t as u64) << 32 ^ 0xC1));
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let (key, profile) = if rng.gen::<f64>() < cfg.core_fraction {
                let k = core_sampler.sample(&mut rng) - 1;
                (k, core_profs[k as usize])
            } else {
                // Tail keys live above the core id range; profiles are
                // derived lazily (the key space is too large to table).
                let k = cfg.core_keys + rng.gen_range(0..tail_keys);
                (k, cfg.model.profile(k, cfg.seed))
            };
            let value = cfg.model.draw(profile, &mut rng);
            out.push(Item { key, value });
        }
        out
    });
    Dataset::finalize("cloud".into(), items, cfg.threshold)
}

/// The paper's synthetic Zipf dataset: Zipf(α) key popularity; values are
/// a Zipf-distributed component plus a per-key normal constant.
pub fn zipf_dataset(cfg: &ZipfConfig) -> Dataset {
    let key_sampler = ZipfSampler::new(cfg.keys, cfg.alpha);
    let component_sampler = ZipfSampler::new(
        cfg.value_model.component_ranks,
        cfg.value_model.component_alpha,
    );
    let items = parallel_chunks(cfg.items, default_threads(), |t, _start, len| {
        let mut rng = SmallRng::seed_from_u64(qf_hash::mix64(cfg.seed ^ (t as u64) << 32 ^ 0x21));
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let key = key_sampler.sample(&mut rng) - 1;
            let component = cfg.value_model.draw_component(&component_sampler, &mut rng);
            let constant = cfg.value_model.key_constant(key, cfg.seed);
            out.push(Item {
                key,
                value: component + constant,
            });
        }
        out
    });
    Dataset::finalize(format!("zipf-a{}", cfg.alpha), items, cfg.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internet_shape() {
        let d = internet_like(&InternetConfig::tiny());
        assert_eq!(d.items.len(), 50_000);
        assert!(d.key_count > 500, "keys {}", d.key_count);
        assert!(d.key_count <= 2_000);
        // Paper: ≈7.6% abnormal items at T = 300.
        assert!(
            (0.01..0.20).contains(&d.abnormal_fraction),
            "abnormal fraction {}",
            d.abnormal_fraction
        );
        assert!(d.items_per_key() > 10.0);
    }

    #[test]
    fn internet_deterministic() {
        let a = internet_like(&InternetConfig::tiny());
        let b = internet_like(&InternetConfig::tiny());
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items).take(1000) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn cloud_has_many_rare_keys() {
        let d = cloud_like(&CloudConfig::tiny());
        // The distinct-key count must be a large fraction of items.
        assert!(
            d.key_count as f64 > d.items.len() as f64 * 0.3,
            "only {} keys for {} items",
            d.key_count,
            d.items.len()
        );
        assert!(
            (0.005..0.25).contains(&d.abnormal_fraction),
            "abnormal fraction {}",
            d.abnormal_fraction
        );
    }

    #[test]
    fn cloud_heavy_core_is_hot() {
        let d = cloud_like(&CloudConfig::tiny());
        let core = CloudConfig::tiny().core_keys;
        let core_items = d.items.iter().filter(|it| it.key < core).count();
        let frac = core_items as f64 / d.items.len() as f64;
        assert!((frac - 0.30).abs() < 0.03, "core fraction {frac}");
    }

    #[test]
    fn zipf_dataset_values_positive() {
        let d = zipf_dataset(&ZipfConfig::tiny());
        assert!(d.items.iter().all(|it| it.value >= 0.0));
        assert!(d.abnormal_fraction > 0.0 && d.abnormal_fraction < 0.5);
    }

    #[test]
    fn zipf_key_skew_follows_alpha() {
        let mut steep_cfg = ZipfConfig::tiny();
        steep_cfg.alpha = 1.6;
        let steep = zipf_dataset(&steep_cfg);
        let flat = zipf_dataset(&ZipfConfig::tiny());
        let count_key0 = |d: &Dataset| d.items.iter().filter(|it| it.key == 0).count();
        assert!(
            count_key0(&steep) > count_key0(&flat),
            "steeper alpha must concentrate the top key"
        );
    }

    #[test]
    fn deterministic_across_runs_zipf() {
        let a = zipf_dataset(&ZipfConfig::tiny());
        let b = zipf_dataset(&ZipfConfig::tiny());
        assert_eq!(a.items[..100], b.items[..100]);
    }
}
