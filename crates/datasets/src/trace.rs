//! Compact binary trace serialization and CSV export.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   4 bytes  "QFTR"
//! version u32      1
//! count   u64      number of items
//! thresh  f64      the dataset's value threshold T
//! items   count × (key u64, value f64)
//! ```

use crate::Item;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"QFTR";
const VERSION: u32 = 1;

/// Serialize items and threshold into the binary trace format.
pub fn encode(items: &[Item], threshold: f64) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 4 + 8 + 8 + items.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(items.len() as u64);
    buf.put_f64_le(threshold);
    for it in items {
        buf.put_u64_le(it.key);
        buf.put_f64_le(it.value);
    }
    buf.freeze()
}

/// Errors when decoding a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The magic bytes or version did not match.
    BadHeader,
    /// The byte stream ended before the declared item count.
    Truncated,
    /// Bytes remained after the declared item count was consumed — the
    /// buffer is not (only) a trace.
    TrailingGarbage {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// Underlying IO failure.
    Io(io::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader => write!(f, "bad trace header"),
            Self::Truncated => write!(f, "trace truncated"),
            Self::TrailingGarbage { extra } => {
                write!(f, "trace has {extra} trailing garbage bytes")
            }
            Self::Io(e) => write!(f, "trace io error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Decode a binary trace; returns `(items, threshold)`.
pub fn decode(mut data: Bytes) -> Result<(Vec<Item>, f64), TraceError> {
    if data.remaining() < 4 + 4 + 8 + 8 {
        return Err(TraceError::BadHeader);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC || data.get_u32_le() != VERSION {
        return Err(TraceError::BadHeader);
    }
    let count = data.get_u64_le() as usize;
    let threshold = data.get_f64_le();
    // A corrupt count near usize::MAX must not wrap the byte total and
    // sneak past the length check.
    let payload = count.checked_mul(16).ok_or(TraceError::Truncated)?;
    if data.remaining() < payload {
        return Err(TraceError::Truncated);
    }
    if data.remaining() > payload {
        return Err(TraceError::TrailingGarbage {
            extra: data.remaining() - payload,
        });
    }
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let key = data.get_u64_le();
        let value = data.get_f64_le();
        items.push(Item { key, value });
    }
    Ok((items, threshold))
}

/// Write a trace file.
pub fn write_file<P: AsRef<Path>>(
    path: P,
    items: &[Item],
    threshold: f64,
) -> Result<(), TraceError> {
    let bytes = encode(items, threshold);
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Read a trace file; returns `(items, threshold)`.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<(Vec<Item>, f64), TraceError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode(Bytes::from(data))
}

/// Export items as `key,value` CSV (with header) for external plotting tools.
pub fn write_csv<W: Write>(mut w: W, items: &[Item]) -> io::Result<()> {
    writeln!(w, "key,value")?;
    for it in items {
        writeln!(w, "{},{}", it.key, it.value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_items() -> Vec<Item> {
        (0..100)
            .map(|i| Item {
                key: i * 7,
                value: i as f64 * 0.5 - 10.0,
            })
            .collect()
    }

    #[test]
    fn roundtrip_in_memory() {
        let items = sample_items();
        let bytes = encode(&items, 42.5);
        let (decoded, t) = decode(bytes).unwrap();
        assert_eq!(decoded, items);
        assert_eq!(t, 42.5);
    }

    #[test]
    fn roundtrip_through_file() {
        let items = sample_items();
        let dir = std::env::temp_dir().join("qf_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.qftr");
        write_file(&path, &items, 7.0).unwrap();
        let (decoded, t) = read_file(&path).unwrap();
        assert_eq!(decoded, items);
        assert_eq!(t, 7.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = encode(&sample_items(), 1.0).to_vec();
        raw[0] = b'X';
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(TraceError::BadHeader)
        ));
    }

    #[test]
    fn truncation_detected() {
        let raw = encode(&sample_items(), 1.0);
        let cut = raw.slice(0..raw.len() - 8);
        assert!(matches!(decode(cut), Err(TraceError::Truncated)));
    }

    #[test]
    fn trailing_garbage_detected() {
        // Regression: the decoder used to accept (and silently drop)
        // surplus bytes after the declared item count.
        let mut raw = encode(&sample_items(), 1.0).to_vec();
        raw.extend_from_slice(&[0xEE; 24]);
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(TraceError::TrailingGarbage { extra: 24 })
        ));
        // Even one extra byte counts.
        let mut raw1 = encode(&[], 0.0).to_vec();
        raw1.push(0);
        assert!(matches!(
            decode(Bytes::from(raw1)),
            Err(TraceError::TrailingGarbage { extra: 1 })
        ));
    }

    #[test]
    fn huge_count_does_not_wrap_length_check() {
        let mut raw = encode(&[], 0.0).to_vec();
        // Overwrite the count field (offset 8) with u64::MAX.
        raw[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode(&[], 0.0);
        let (items, _) = decode(bytes).unwrap();
        assert!(items.is_empty());
    }

    #[test]
    fn csv_export_format() {
        let mut out = Vec::new();
        write_csv(&mut out, &sample_items()[..2]).unwrap();
        let s = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "key,value");
        assert_eq!(lines[1], "0,-10");
    }
}
