//! Dataset configurations (serde-serializable so experiment runs can be
//! recorded alongside their exact workload parameters).

use crate::values::{LatencyModel, ZipfValueModel};
use serde::{Deserialize, Serialize};

/// Which of the paper's three datasets a config mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// CAIDA-like internet trace (§V-A dataset 1).
    Internet,
    /// Yahoo-like cloud trace (§V-A dataset 2).
    Cloud,
    /// Synthetic Zipf dataset (§V-A dataset 3).
    Zipf,
}

/// Configuration of the internet-like workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InternetConfig {
    /// Number of items to generate (paper: 26.1M; default scaled down).
    pub items: usize,
    /// Number of distinct keys (paper: 0.64M).
    pub keys: u64,
    /// Zipf exponent of key popularity.
    pub alpha: f64,
    /// Value threshold `T` in ms (paper: 300 ⇒ ≈7.6% abnormal).
    pub threshold: f64,
    /// Master seed.
    pub seed: u64,
    /// Latency model parameters.
    #[serde(skip, default = "LatencyModel::internet_default")]
    pub model: LatencyModel,
}

impl Default for InternetConfig {
    fn default() -> Self {
        Self {
            items: 2_000_000,
            keys: 50_000,
            alpha: 1.1,
            threshold: 300.0,
            seed: 0x1A7E_0001,
            model: LatencyModel::internet_default(),
        }
    }
}

impl InternetConfig {
    /// A small config for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            items: 50_000,
            keys: 2_000,
            ..Self::default()
        }
    }

    /// The paper-scale config (26.1M items, 0.64M keys).
    pub fn paper_scale() -> Self {
        Self {
            items: 26_100_000,
            keys: 640_000,
            ..Self::default()
        }
    }
}

/// Configuration of the cloud-like workload: a small heavy core plus a huge
/// population of keys seen only once or twice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CloudConfig {
    /// Number of items (paper: 20.5M).
    pub items: usize,
    /// Heavy-core key count.
    pub core_keys: u64,
    /// Fraction of items drawn from the heavy core.
    pub core_fraction: f64,
    /// Zipf exponent within the heavy core.
    pub core_alpha: f64,
    /// Tail key-space size as a fraction of `items` (pushes distinct-key
    /// count toward the paper's 16.9M/20.5M ratio).
    pub tail_key_fraction: f64,
    /// Value threshold `T` in seconds (paper: 20 ⇒ ≈4.6% abnormal).
    pub threshold: f64,
    /// Master seed.
    pub seed: u64,
    /// Duration model parameters.
    #[serde(skip, default = "LatencyModel::cloud_default")]
    pub model: LatencyModel,
}

impl Default for CloudConfig {
    fn default() -> Self {
        Self {
            items: 2_000_000,
            core_keys: 2_000,
            core_fraction: 0.30,
            core_alpha: 1.2,
            tail_key_fraction: 0.82,
            threshold: 20.0,
            seed: 0xC10D_0002,
            model: LatencyModel::cloud_default(),
        }
    }
}

impl CloudConfig {
    /// A small config for tests.
    pub fn tiny() -> Self {
        Self {
            items: 50_000,
            core_keys: 200,
            ..Self::default()
        }
    }

    /// The paper-scale config (20.5M items).
    pub fn paper_scale() -> Self {
        Self {
            items: 20_500_000,
            core_keys: 20_000,
            ..Self::default()
        }
    }
}

/// Configuration of the paper's synthetic Zipf dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfConfig {
    /// Number of items (paper: 25M per variant).
    pub items: usize,
    /// Number of distinct keys (paper variants: 4.2M and 120K).
    pub keys: u64,
    /// Zipf exponent of key popularity.
    pub alpha: f64,
    /// Value threshold `T` (paper: 300).
    pub threshold: f64,
    /// Master seed.
    pub seed: u64,
    /// Value model.
    #[serde(skip, default = "ZipfValueModel::paper_default")]
    pub value_model: ZipfValueModel,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        Self {
            items: 2_000_000,
            keys: 120_000,
            alpha: 1.1,
            threshold: 300.0,
            seed: 0x21FF_0003,
            value_model: ZipfValueModel::paper_default(),
        }
    }
}

impl ZipfConfig {
    /// A small config for tests.
    pub fn tiny() -> Self {
        Self {
            items: 50_000,
            keys: 5_000,
            ..Self::default()
        }
    }

    /// The many-keys paper variant (4.2M keys).
    pub fn many_keys() -> Self {
        Self {
            keys: 4_200_000,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let i = InternetConfig::default();
        assert!(i.items > 0 && i.keys > 0 && i.alpha > 0.0);
        let c = CloudConfig::default();
        assert!(c.core_fraction > 0.0 && c.core_fraction < 1.0);
        let z = ZipfConfig::default();
        assert!(z.threshold > 0.0);
    }

    #[test]
    fn serde_roundtrip_via_json_like() {
        // serde_json isn't a dependency; use the serde test through the
        // bincode-free path: Debug equality after clone suffices here, and
        // the derive compiles the Serialize/Deserialize impls.
        let i = InternetConfig::tiny();
        let i2 = i.clone();
        assert_eq!(format!("{i:?}"), format!("{i2:?}"));
    }

    #[test]
    fn paper_scales_match_claims() {
        let i = InternetConfig::paper_scale();
        assert_eq!(i.items, 26_100_000);
        assert_eq!(i.keys, 640_000);
        let c = CloudConfig::paper_scale();
        assert_eq!(c.items, 20_500_000);
        let z = ZipfConfig::many_keys();
        assert_eq!(z.keys, 4_200_000);
    }
}
