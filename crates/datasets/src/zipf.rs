//! Zipf-distributed sampling by rejection inversion (Hörmann & Derflinger),
//! O(1) per sample with no O(K) tables — essential for the cloud-like
//! workload's tens of millions of keys.

use rand::Rng;

/// Samples ranks `1..=n` with `P(k) ∝ k^{−α}`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    alpha: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl ZipfSampler {
    /// Build a sampler over `1..=n` with exponent `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha <= 0`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(alpha > 0.0, "alpha must be positive");
        let h_x1 = Self::h_integral_static(1.5, alpha) - 1.0;
        let h_n = Self::h_integral_static(n as f64 + 0.5, alpha);
        let s = 2.0
            - Self::h_integral_inverse_static(
                Self::h_integral_static(2.5, alpha) - Self::h_static(2.0, alpha),
                alpha,
            );
        Self {
            n,
            alpha,
            h_x1,
            h_n,
            s,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    #[inline]
    fn h_static(x: f64, alpha: f64) -> f64 {
        (-alpha * x.ln()).exp()
    }

    /// `H(x) = ∫ x^{−α} dx`: `(x^{1−α} − 1)/(1−α)`, or `ln x` at α = 1.
    #[inline]
    fn h_integral_static(x: f64, alpha: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - alpha) * log_x) * log_x
    }

    #[inline]
    fn h_integral_inverse_static(x: f64, alpha: f64) -> f64 {
        let mut t = x * (1.0 - alpha);
        if t < -1.0 {
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inverse_static(u, self.alpha);
            let mut k = (x + 0.5).floor() as i64;
            k = k.clamp(1, self.n as i64);
            let kf = k as f64;
            if kf - x <= self.s
                || u >= Self::h_integral_static(kf + 0.5, self.alpha)
                    - Self::h_static(kf, self.alpha)
            {
                return k as u64;
            }
        }
    }
}

/// `helper1(x) = ln(1+x)/x`, stable near 0.
#[inline]
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `helper2(x) = (e^x − 1)/x`, stable near 0.
#[inline]
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn empirical_frequencies(n: u64, alpha: f64, samples: usize, seed: u64) -> Vec<f64> {
        let z = ZipfSampler::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / samples as f64)
            .collect()
    }

    #[test]
    fn ranks_in_range() {
        let z = ZipfSampler::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn frequencies_match_power_law() {
        let alpha = 1.0;
        let freqs = empirical_frequencies(1000, alpha, 500_000, 2);
        // P(k)/P(1) should be ≈ k^{−α}.
        for &k in &[2usize, 5, 10, 50] {
            let expected = (k as f64).powf(-alpha);
            let observed = freqs[k - 1] / freqs[0];
            assert!(
                (observed - expected).abs() / expected < 0.15,
                "k={k}: observed ratio {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn alpha_steeper_means_more_skew() {
        let mild = empirical_frequencies(1000, 0.8, 200_000, 3);
        let steep = empirical_frequencies(1000, 1.5, 200_000, 3);
        assert!(steep[0] > mild[0], "steeper alpha must concentrate rank 1");
    }

    #[test]
    fn large_n_works_without_tables() {
        // 50M ranks would need a 400MB CDF table; rejection inversion is O(1).
        let z = ZipfSampler::new(50_000_000, 1.05);
        let mut rng = StdRng::seed_from_u64(4);
        let mut max_seen = 0;
        for _ in 0..100_000 {
            max_seen = max_seen.max(z.sample(&mut rng));
        }
        assert!(max_seen > 1_000_000, "tail never sampled: max {max_seen}");
    }

    #[test]
    fn alpha_one_exact_special_case() {
        // α = 1 exercises the ln-based branch of H.
        let freqs = empirical_frequencies(100, 1.0, 300_000, 5);
        let expected = 2.0f64.powf(-1.0);
        let observed = freqs[1] / freqs[0];
        assert!((observed - expected).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let _ = ZipfSampler::new(10, 0.0);
    }
}
