//! Exhaustive model check of the SPSC ring (`qf_pipeline::SpscRing`).
//!
//! Runs only under `RUSTFLAGS='--cfg qf_model'` (via `cargo xtask
//! model`). The ring's contract under concurrency:
//!
//! - every successfully pushed value is popped exactly once, in FIFO
//!   order — no lost slots, no duplicated slots;
//! - payloads are never torn (the model's `RaceCell` race detector
//!   proves every slot access is ordered by the tail/head handshake);
//! - the park/wake handshake never deadlocks: a consumer that parks is
//!   always woken by a later push or close.
//!
//! Two seeded-bug miniatures pin down *why* the orderings are what
//! they are: weakening the tail publish to `Relaxed` is a data race,
//! and dropping the `SeqCst` park/wake fences is a lost wakeup.
#![cfg(qf_model)]

use qf_model::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use qf_model::sync::cell::RaceCell;
use qf_model::sync::thread;
use qf_model::{try_model, Checker};
use qf_pipeline::SpscRing;
use std::sync::Arc;

/// Producer pushes 1, 2 into a capacity-2 ring and closes; the
/// consumer drains with `pop_wait`. Exactly `[1, 2]` must come out, in
/// order, in every interleaving — and every consumer park must be
/// matched by a wakeup (a miss would surface as a reported deadlock).
#[test]
fn fifo_no_loss_no_dup_no_deadlock() {
    let stats = Checker::new()
        .preemption_bound(2)
        .check(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity(2).split();
            let producer = thread::spawn(move || {
                // Capacity 2 and two pushes: `Full` is impossible, and
                // the consumer being alive is guaranteed by construction.
                tx.try_push(1u64).expect("push 1");
                tx.try_push(2u64).expect("push 2");
                tx.close();
            });
            let mut got = Vec::new();
            while let Some(v) = rx.pop_wait() {
                got.push(v);
            }
            producer.join().unwrap();
            assert_eq!(got, vec![1, 2], "lost, duplicated, or reordered slot");
        })
        .expect("SPSC ring must deliver every push exactly once, in order");
    assert!(stats.executions > 1, "stats: {stats:?}");
}

/// Backpressure path: two `push_blocking` calls through a capacity-1
/// ring force the producer through its spin/yield loop (the second
/// push must wait for the pop) and wrap the ring. FIFO and
/// exactly-once must survive the wraparound.
#[test]
fn blocking_push_wraparound_preserves_fifo() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity(1).split();
            let producer = thread::spawn(move || {
                for v in 1..=2u64 {
                    tx.push_blocking(v).expect("consumer alive");
                }
                tx.close();
            });
            let mut got = Vec::new();
            while let Some(v) = rx.pop_wait() {
                got.push(v);
            }
            producer.join().unwrap();
            assert_eq!(got, vec![1, 2], "wraparound broke FIFO");
        })
        .expect("blocking pushes must deliver every value exactly once, in order");
}

/// A consumer that races ahead parks; the producer's push + close must
/// always reach it. Deadlock here is the lost-wakeup bug the SeqCst
/// fence handshake exists to prevent.
#[test]
fn parked_consumer_always_woken() {
    Checker::new()
        .preemption_bound(3)
        .check(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity(1).split();
            let consumer = thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = rx.pop_wait() {
                    got.push(v);
                }
                got
            });
            tx.try_push(7u64).expect("push");
            tx.close();
            let got = consumer.join().unwrap();
            assert_eq!(got, vec![7]);
        })
        .expect("a parked consumer must always be woken by push or close");
}

/// The slab-slot protocol: ring slots carry *owned heap slabs* (the
/// pipeline's `Msg::Slab` payload), not words. Every slab must come out
/// exactly once with its contents intact — the tail publish must order
/// the slab's heap writes, not just the slot word, and no interleaving
/// may drop or duplicate a slab (which would double-free or leak its
/// allocation).
#[test]
fn slab_slot_protocol_delivers_each_slab_exactly_once() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity(2).split();
            let producer = thread::spawn(move || {
                tx.try_push(vec![(1u64, 1.0f64), (2, 2.0)]).expect("slab 1");
                tx.try_push(vec![(3u64, 3.0f64)]).expect("slab 2");
                tx.close();
            });
            let mut got = Vec::new();
            while let Some(slab) = rx.pop_wait() {
                got.extend(slab);
            }
            producer.join().unwrap();
            assert_eq!(
                got,
                vec![(1, 1.0), (2, 2.0), (3, 3.0)],
                "slab lost, duplicated, or torn"
            );
        })
        .expect("every slab must be delivered exactly once, contents intact");
}

/// `PushError::Disconnected` mid-slab: a dead consumer hands the
/// in-flight slab *back to the producer intact* — this returned-value
/// contract is what lets the router count (or re-flush) every item of a
/// bounced slab instead of losing it from both sides of the
/// conservation law.
#[test]
fn disconnected_push_hands_the_slab_back_intact() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let (mut tx, rx) = SpscRing::with_capacity(2).split();
            let consumer = thread::spawn(move || {
                rx.mark_dead();
            });
            let slab = vec![(7u64, 7.0f64), (8, 8.0)];
            match tx.try_push(slab) {
                Ok(()) => {}
                Err((e, returned)) => {
                    assert!(matches!(e, qf_pipeline::PushError::Disconnected));
                    assert_eq!(
                        returned,
                        vec![(7, 7.0), (8, 8.0)],
                        "bounced slab must come back intact"
                    );
                }
            }
            consumer.join().unwrap();
        })
        .expect("a bounced slab is returned intact, never dropped silently");
}

/// Seeded-bug self-test: the ring's slot handshake with the tail
/// publish weakened to `Relaxed`. The consumer's acquire load of
/// `tail` then no longer synchronizes with the payload write, so the
/// payload read is a data race — the checker must say so.
///
/// This miniature is the justification for the `Release` store in
/// `push_slot`: weaken it and the harnesses above fail exactly like
/// this.
#[test]
fn seeded_relaxed_tail_publish_caught() {
    let v = try_model(|| {
        let slot = Arc::new(RaceCell::new(0u64));
        let tail = Arc::new(AtomicUsize::new(0));
        let (s2, t2) = (Arc::clone(&slot), Arc::clone(&tail));
        let producer = thread::spawn(move || {
            // SAFETY: (model) intentionally unsynchronized — the model
            // race checker is the subject under test here.
            unsafe { s2.with_mut(|p| *p = 41) };
            t2.store(1, Ordering::Relaxed); // BUG under test: not Release
        });
        if tail.load(Ordering::Acquire) == 1 {
            // SAFETY: (model) claimed ordered by the acquire load above,
            // which the seeded relaxed publish fails to provide.
            let got = unsafe { slot.with(|p| *p) };
            assert_eq!(got, 41);
        }
        producer.join().unwrap();
    });
    let v = v.expect_err("relaxed tail publish must be reported as a race");
    assert!(v.message.contains("data race"), "{}", v.message);
}

/// The fixed twin: `Release` publish, `Acquire` observe — race-free
/// and value-correct, proving the seeded test fails for the right
/// reason.
#[test]
fn seeded_twin_release_tail_publish_verified() {
    Checker::new()
        .check(|| {
            let slot = Arc::new(RaceCell::new(0u64));
            let tail = Arc::new(AtomicUsize::new(0));
            let (s2, t2) = (Arc::clone(&slot), Arc::clone(&tail));
            let producer = thread::spawn(move || {
                // SAFETY: the Release store below publishes this write;
                // the reader only looks after its Acquire load observes it.
                unsafe { s2.with_mut(|p| *p = 41) };
                t2.store(1, Ordering::Release);
            });
            if tail.load(Ordering::Acquire) == 1 {
                // SAFETY: Acquire synchronized with the Release publish.
                let got = unsafe { slot.with(|p| *p) };
                assert_eq!(got, 41);
            }
            producer.join().unwrap();
        })
        .expect("release/acquire tail handshake must verify clean");
}

/// Seeded-bug self-test for the slab handoff: a slab buffer handed to
/// the consumer through a bare `Relaxed` ready-flag instead of the
/// ring. The flag's load doesn't synchronize with the slab's heap
/// writes, so reading the slab races — exactly the bug the real
/// protocol avoids by moving slabs *through* the ring's slots.
#[test]
fn seeded_relaxed_slab_handoff_caught() {
    let v = try_model(|| {
        let slab = Arc::new(RaceCell::new(0u64)); // stands in for slab contents
        let ready = Arc::new(AtomicBool::new(false));
        let (s2, r2) = (Arc::clone(&slab), Arc::clone(&ready));
        let router = thread::spawn(move || {
            // SAFETY: (model) intentionally unsynchronized — the model
            // race checker is the subject under test here.
            unsafe { s2.with_mut(|p| *p = 99) };
            r2.store(true, Ordering::Relaxed); // BUG under test: not a ring push
        });
        if ready.load(Ordering::Relaxed) {
            // SAFETY: (model) claimed ordered by the ready flag, which
            // the seeded relaxed handoff fails to provide.
            let got = unsafe { slab.with(|p| *p) };
            assert_eq!(got, 99);
        }
        router.join().unwrap();
    });
    let v = v.expect_err("relaxed slab handoff must be reported as a race");
    assert!(v.message.contains("data race"), "{}", v.message);
}

/// The fixed twin: the same slab contents handed through the actual
/// ring. The slot handshake (Release tail publish / Acquire observe)
/// orders the slab's heap writes before any consumer read — the
/// race-checker-visible proof that slab handoff needs no per-item
/// synchronization beyond the one slot exchange.
#[test]
fn seeded_twin_slab_through_ring_verified() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let slab = Arc::new(RaceCell::new(0u64));
            let (mut tx, mut rx) = SpscRing::with_capacity(1).split();
            let s2 = Arc::clone(&slab);
            let router = thread::spawn(move || {
                // SAFETY: written before the ring push; the push's
                // Release publish orders it before the consumer's read.
                unsafe { s2.with_mut(|p| *p = 99) };
                tx.try_push(Arc::clone(&s2)).expect("push slab");
                tx.close();
            });
            while let Some(handed) = rx.pop_wait() {
                // SAFETY: the pop's Acquire load synchronized with the
                // push that published this slab.
                let got = unsafe { handed.with(|p| *p) };
                assert_eq!(got, 99);
            }
            router.join().unwrap();
        })
        .expect("slab handoff through the ring must verify race-free");
}

/// Seeded-bug self-test: the park/wake handshake with both `SeqCst`
/// fences dropped. The producer can then check `parked` before the
/// consumer's flag store becomes visible *and* the consumer can check
/// the item flag before the push becomes visible — both sides miss,
/// the consumer parks forever: a lost wakeup, reported as a deadlock.
#[test]
fn seeded_unfenced_park_handshake_deadlocks() {
    let v = try_model(|| {
        let item = Arc::new(AtomicBool::new(false));
        let parked = Arc::new(AtomicBool::new(false));
        let (i2, p2) = (Arc::clone(&item), Arc::clone(&parked));
        let consumer = thread::current();
        let producer = thread::spawn(move || {
            i2.store(true, Ordering::Relaxed);
            // BUG under test: no fence(SeqCst) here.
            if p2.load(Ordering::Relaxed) {
                consumer.unpark();
            }
        });
        if !item.load(Ordering::Relaxed) {
            parked.store(true, Ordering::Relaxed);
            // BUG under test: no fence(SeqCst) here.
            if !item.load(Ordering::Relaxed) {
                thread::park();
            }
            parked.store(false, Ordering::Relaxed);
        }
        producer.join().unwrap();
    });
    let v = v.expect_err("unfenced park handshake must deadlock somewhere");
    assert!(v.message.contains("deadlock"), "{}", v.message);
}

/// The fixed twin: both fences restored (the shape `wake_consumer` and
/// `pop_wait` actually use) — no interleaving loses the wakeup.
#[test]
fn seeded_twin_fenced_park_handshake_verified() {
    Checker::new()
        .check(|| {
            let item = Arc::new(AtomicBool::new(false));
            let parked = Arc::new(AtomicBool::new(false));
            let (i2, p2) = (Arc::clone(&item), Arc::clone(&parked));
            let consumer = thread::current();
            let producer = thread::spawn(move || {
                i2.store(true, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if p2.load(Ordering::Relaxed) {
                    consumer.unpark();
                }
            });
            if !item.load(Ordering::Relaxed) {
                parked.store(true, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if !item.load(Ordering::Relaxed) {
                    thread::park();
                }
                parked.store(false, Ordering::Relaxed);
            }
            producer.join().unwrap();
        })
        .expect("fenced park handshake must verify clean");
}
