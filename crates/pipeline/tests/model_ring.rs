//! Exhaustive model check of the SPSC ring (`qf_pipeline::SpscRing`).
//!
//! Runs only under `RUSTFLAGS='--cfg qf_model'` (via `cargo xtask
//! model`). The ring's contract under concurrency:
//!
//! - every successfully pushed value is popped exactly once, in FIFO
//!   order — no lost slots, no duplicated slots;
//! - payloads are never torn (the model's `RaceCell` race detector
//!   proves every slot access is ordered by the tail/head handshake);
//! - the park/wake handshake never deadlocks: a consumer that parks is
//!   always woken by a later push or close.
//!
//! Two seeded-bug miniatures pin down *why* the orderings are what
//! they are: weakening the tail publish to `Relaxed` is a data race,
//! and dropping the `SeqCst` park/wake fences is a lost wakeup.
#![cfg(qf_model)]

use qf_model::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use qf_model::sync::cell::RaceCell;
use qf_model::sync::thread;
use qf_model::{try_model, Checker};
use qf_pipeline::SpscRing;
use std::sync::Arc;

/// Producer pushes 1, 2 into a capacity-2 ring and closes; the
/// consumer drains with `pop_wait`. Exactly `[1, 2]` must come out, in
/// order, in every interleaving — and every consumer park must be
/// matched by a wakeup (a miss would surface as a reported deadlock).
#[test]
fn fifo_no_loss_no_dup_no_deadlock() {
    let stats = Checker::new()
        .preemption_bound(2)
        .check(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity(2).split();
            let producer = thread::spawn(move || {
                // Capacity 2 and two pushes: `Full` is impossible, and
                // the consumer being alive is guaranteed by construction.
                tx.try_push(1u64).expect("push 1");
                tx.try_push(2u64).expect("push 2");
                tx.close();
            });
            let mut got = Vec::new();
            while let Some(v) = rx.pop_wait() {
                got.push(v);
            }
            producer.join().unwrap();
            assert_eq!(got, vec![1, 2], "lost, duplicated, or reordered slot");
        })
        .expect("SPSC ring must deliver every push exactly once, in order");
    assert!(stats.executions > 1, "stats: {stats:?}");
}

/// Backpressure path: two `push_blocking` calls through a capacity-1
/// ring force the producer through its spin/yield loop (the second
/// push must wait for the pop) and wrap the ring. FIFO and
/// exactly-once must survive the wraparound.
#[test]
fn blocking_push_wraparound_preserves_fifo() {
    Checker::new()
        .preemption_bound(2)
        .check(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity(1).split();
            let producer = thread::spawn(move || {
                for v in 1..=2u64 {
                    tx.push_blocking(v).expect("consumer alive");
                }
                tx.close();
            });
            let mut got = Vec::new();
            while let Some(v) = rx.pop_wait() {
                got.push(v);
            }
            producer.join().unwrap();
            assert_eq!(got, vec![1, 2], "wraparound broke FIFO");
        })
        .expect("blocking pushes must deliver every value exactly once, in order");
}

/// A consumer that races ahead parks; the producer's push + close must
/// always reach it. Deadlock here is the lost-wakeup bug the SeqCst
/// fence handshake exists to prevent.
#[test]
fn parked_consumer_always_woken() {
    Checker::new()
        .preemption_bound(3)
        .check(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity(1).split();
            let consumer = thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = rx.pop_wait() {
                    got.push(v);
                }
                got
            });
            tx.try_push(7u64).expect("push");
            tx.close();
            let got = consumer.join().unwrap();
            assert_eq!(got, vec![7]);
        })
        .expect("a parked consumer must always be woken by push or close");
}

/// Seeded-bug self-test: the ring's slot handshake with the tail
/// publish weakened to `Relaxed`. The consumer's acquire load of
/// `tail` then no longer synchronizes with the payload write, so the
/// payload read is a data race — the checker must say so.
///
/// This miniature is the justification for the `Release` store in
/// `push_slot`: weaken it and the harnesses above fail exactly like
/// this.
#[test]
fn seeded_relaxed_tail_publish_caught() {
    let v = try_model(|| {
        let slot = Arc::new(RaceCell::new(0u64));
        let tail = Arc::new(AtomicUsize::new(0));
        let (s2, t2) = (Arc::clone(&slot), Arc::clone(&tail));
        let producer = thread::spawn(move || {
            // SAFETY: (model) intentionally unsynchronized — the model
            // race checker is the subject under test here.
            unsafe { s2.with_mut(|p| *p = 41) };
            t2.store(1, Ordering::Relaxed); // BUG under test: not Release
        });
        if tail.load(Ordering::Acquire) == 1 {
            // SAFETY: (model) claimed ordered by the acquire load above,
            // which the seeded relaxed publish fails to provide.
            let got = unsafe { slot.with(|p| *p) };
            assert_eq!(got, 41);
        }
        producer.join().unwrap();
    });
    let v = v.expect_err("relaxed tail publish must be reported as a race");
    assert!(v.message.contains("data race"), "{}", v.message);
}

/// The fixed twin: `Release` publish, `Acquire` observe — race-free
/// and value-correct, proving the seeded test fails for the right
/// reason.
#[test]
fn seeded_twin_release_tail_publish_verified() {
    Checker::new()
        .check(|| {
            let slot = Arc::new(RaceCell::new(0u64));
            let tail = Arc::new(AtomicUsize::new(0));
            let (s2, t2) = (Arc::clone(&slot), Arc::clone(&tail));
            let producer = thread::spawn(move || {
                // SAFETY: the Release store below publishes this write;
                // the reader only looks after its Acquire load observes it.
                unsafe { s2.with_mut(|p| *p = 41) };
                t2.store(1, Ordering::Release);
            });
            if tail.load(Ordering::Acquire) == 1 {
                // SAFETY: Acquire synchronized with the Release publish.
                let got = unsafe { slot.with(|p| *p) };
                assert_eq!(got, 41);
            }
            producer.join().unwrap();
        })
        .expect("release/acquire tail handshake must verify clean");
}

/// Seeded-bug self-test: the park/wake handshake with both `SeqCst`
/// fences dropped. The producer can then check `parked` before the
/// consumer's flag store becomes visible *and* the consumer can check
/// the item flag before the push becomes visible — both sides miss,
/// the consumer parks forever: a lost wakeup, reported as a deadlock.
#[test]
fn seeded_unfenced_park_handshake_deadlocks() {
    let v = try_model(|| {
        let item = Arc::new(AtomicBool::new(false));
        let parked = Arc::new(AtomicBool::new(false));
        let (i2, p2) = (Arc::clone(&item), Arc::clone(&parked));
        let consumer = thread::current();
        let producer = thread::spawn(move || {
            i2.store(true, Ordering::Relaxed);
            // BUG under test: no fence(SeqCst) here.
            if p2.load(Ordering::Relaxed) {
                consumer.unpark();
            }
        });
        if !item.load(Ordering::Relaxed) {
            parked.store(true, Ordering::Relaxed);
            // BUG under test: no fence(SeqCst) here.
            if !item.load(Ordering::Relaxed) {
                thread::park();
            }
            parked.store(false, Ordering::Relaxed);
        }
        producer.join().unwrap();
    });
    let v = v.expect_err("unfenced park handshake must deadlock somewhere");
    assert!(v.message.contains("deadlock"), "{}", v.message);
}

/// The fixed twin: both fences restored (the shape `wake_consumer` and
/// `pop_wait` actually use) — no interleaving loses the wakeup.
#[test]
fn seeded_twin_fenced_park_handshake_verified() {
    Checker::new()
        .check(|| {
            let item = Arc::new(AtomicBool::new(false));
            let parked = Arc::new(AtomicBool::new(false));
            let (i2, p2) = (Arc::clone(&item), Arc::clone(&parked));
            let consumer = thread::current();
            let producer = thread::spawn(move || {
                i2.store(true, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if p2.load(Ordering::Relaxed) {
                    consumer.unpark();
                }
            });
            if !item.load(Ordering::Relaxed) {
                parked.store(true, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if !item.load(Ordering::Relaxed) {
                    thread::park();
                }
                parked.store(false, Ordering::Relaxed);
            }
            producer.join().unwrap();
        })
        .expect("fenced park handshake must verify clean");
}
