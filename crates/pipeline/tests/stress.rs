//! Threaded pipeline stress suite: the acceptance bars from the pipeline
//! issue, pinned.
//!
//! * **Equivalence** — for randomized workloads and every shard count,
//!   each shard's concurrent report *sequence* (a stronger claim than the
//!   reported key set) equals a single-threaded serial reference that
//!   routes with the same `shard_of` over the same item order.
//! * **Drop accounting** — under `DropNewest`, offered = enqueued +
//!   dropped and processed = enqueued, exactly, per shard and in total.
//! * **Snapshot under load** — an envelope taken mid-stream restores to a
//!   pipeline that (a) re-snapshots byte-identically and (b) continues
//!   the suffix with report sequences identical to the original's
//!   post-barrier reports.
//!
//! Sizes shrink under Miri (like the telemetry stress tests); the CI
//! matrix pins one shard count per job via `QF_PIPELINE_STRESS_SHARDS`
//! and one router slab capacity via `QF_PIPELINE_SLAB` (slab = 1 is the
//! v1 per-item handoff, reproduced bit-for-bit).

use qf_pipeline::{
    shard_of, BackpressurePolicy, IngestOutcome, Pipeline, PipelineConfig, ReportEvent,
};
use quantile_filter::{Criteria, QuantileFilter, QuantileFilterBuilder};
use rand::{Rng, SeedableRng, SmallRng};

#[cfg(miri)]
const N_ITEMS: usize = 2_000;
#[cfg(not(miri))]
const N_ITEMS: usize = 60_000;

fn criteria() -> Criteria {
    match Criteria::new(5.0, 0.9, 100.0) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e:?}"),
    }
}

/// Router slab capacity for the whole suite: the CI matrix pins one via
/// `QF_PIPELINE_SLAB` (1 / 64 / 4096); default exercises mid-size slabs.
fn slab_capacity() -> usize {
    match std::env::var("QF_PIPELINE_SLAB") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("bad QF_PIPELINE_SLAB value: {s:?}"),
        },
        Err(_) => 64,
    }
}

fn config(shards: usize, queue_capacity: usize, policy: BackpressurePolicy) -> PipelineConfig {
    PipelineConfig {
        shards,
        criteria: criteria(),
        memory_bytes_per_shard: 16 * 1024,
        queue_capacity,
        slab_capacity: slab_capacity(),
        policy,
        seed: 0xA5A5,
    }
}

/// Shard counts to exercise: the CI matrix pins one via env var,
/// otherwise the full 1/2/4/8 sweep (1/2 under Miri, where every extra
/// thread is expensive).
fn shard_counts() -> Vec<usize> {
    if let Ok(s) = std::env::var("QF_PIPELINE_STRESS_SHARDS") {
        match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return vec![n],
            _ => panic!("bad QF_PIPELINE_STRESS_SHARDS value: {s:?}"),
        }
    }
    if cfg!(miri) {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// A mixed workload: zipf-ish background keys at modest values plus a few
/// persistently-hot keys whose values are far above the threshold, so
/// every run produces real reports.
fn workload(seed: u64, n: usize) -> Vec<(u64, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen_bool(0.12) {
            let hot = 1_000 + rng.gen_range(0u64..4);
            items.push((hot, 400.0 + rng.gen_range(0.0..200.0)));
        } else {
            let key = rng.gen_range(0u64..128);
            items.push((key, rng.gen_range(0.0..20.0)));
        }
    }
    items
}

/// The serial reference: same per-shard filters (same seeds), same
/// routing, single thread. Returns per-shard report key sequences.
fn serial_reference(cfg: &PipelineConfig, items: &[(u64, f64)]) -> Vec<Vec<u64>> {
    let mut filters: Vec<QuantileFilter> = (0..cfg.shards)
        .map(|s| {
            match QuantileFilterBuilder::new(cfg.criteria)
                .memory_budget_bytes(cfg.memory_bytes_per_shard)
                .seed(cfg.shard_seed(s))
                .try_build()
            {
                Ok(f) => f,
                Err(e) => panic!("build: {e:?}"),
            }
        })
        .collect();
    let mut reports = vec![Vec::new(); cfg.shards];
    for &(key, value) in items {
        let shard = shard_of(key, cfg.shards);
        if filters[shard].insert(&key, value).is_some() {
            reports[shard].push(key);
        }
    }
    reports
}

/// Group a flat report stream into per-shard key sequences.
fn per_shard_sequences(shards: usize, reports: &[ReportEvent]) -> Vec<Vec<u64>> {
    let mut seqs = vec![Vec::new(); shards];
    for r in reports {
        seqs[r.shard].push(r.key);
    }
    seqs
}

#[test]
fn concurrent_reports_equal_serial_routing() {
    for shards in shard_counts() {
        for workload_seed in [1u64, 2, 3] {
            let cfg = config(shards, 256, BackpressurePolicy::Block);
            let items = workload(workload_seed, N_ITEMS);
            let expected = serial_reference(&cfg, &items);

            let mut pipe = match Pipeline::launch(cfg) {
                Ok(p) => p,
                Err(e) => panic!("launch: {e}"),
            };
            let mut got = Vec::new();
            for (i, &(key, value)) in items.iter().enumerate() {
                match pipe.ingest(key, value) {
                    Ok(IngestOutcome::Enqueued) => {}
                    Ok(other) => panic!("Block policy refused an item: {other:?}"),
                    Err(e) => panic!("ingest: {e}"),
                }
                // Interleave sink draining with ingest so the pending
                // buffer path is exercised too.
                if i % 4_096 == 0 {
                    got.extend(pipe.poll_reports());
                }
            }
            got.extend(pipe.poll_reports());
            let summary = match pipe.shutdown() {
                Ok(s) => s,
                Err(e) => panic!("shutdown: {e}"),
            };
            got.extend(summary.reports.iter().copied());

            assert_eq!(summary.offered, items.len() as u64);
            assert_eq!(summary.enqueued, items.len() as u64);
            assert_eq!(summary.dropped, 0);
            assert_eq!(summary.processed, summary.enqueued);
            assert_eq!(
                per_shard_sequences(shards, &got),
                expected,
                "shards={shards} workload_seed={workload_seed}"
            );
            assert!(
                got.iter().any(|r| r.key >= 1_000),
                "workload produced no hot-key reports (shards={shards})"
            );
        }
    }
}

#[test]
fn drop_accounting_conserves() {
    for shards in shard_counts() {
        // Tiny queues + burst ingest: the router outruns the workers, so
        // DropNewest sheds. The conservation law must hold regardless of
        // how many drops the scheduler produces.
        let cfg = config(shards, 2, BackpressurePolicy::DropNewest);
        let items = workload(7, N_ITEMS);
        let mut pipe = match Pipeline::launch(cfg) {
            Ok(p) => p,
            Err(e) => panic!("launch: {e}"),
        };
        let mut seen_enqueued = 0u64;
        let mut seen_dropped = 0u64;
        for &(key, value) in &items {
            match pipe.ingest(key, value) {
                Ok(IngestOutcome::Enqueued) => seen_enqueued += 1,
                Ok(IngestOutcome::Dropped) => seen_dropped += 1,
                Ok(IngestOutcome::ShardDown) => panic!("healthy shard reported down"),
                Err(e) => panic!("ingest: {e}"),
            }
        }
        let summary = match pipe.shutdown() {
            Ok(s) => s,
            Err(e) => panic!("shutdown: {e}"),
        };
        assert_eq!(summary.offered, items.len() as u64);
        assert_eq!(summary.enqueued, seen_enqueued);
        assert_eq!(summary.dropped, seen_dropped);
        assert_eq!(summary.offered, summary.enqueued + summary.dropped);
        assert_eq!(summary.processed, summary.enqueued, "full drain");
        for (shard, s) in summary.per_shard.iter().enumerate() {
            assert_eq!(
                s.processed, s.enqueued,
                "shard {shard} drained short (shards={shards})"
            );
        }
        let per_shard_enq: u64 = summary.per_shard.iter().map(|s| s.enqueued).sum();
        let per_shard_drop: u64 = summary.per_shard.iter().map(|s| s.dropped).sum();
        assert_eq!(per_shard_enq, summary.enqueued);
        assert_eq!(per_shard_drop, summary.dropped);
    }
}

/// Satellite regression: slab-granular shedding must keep the router
/// conservation law exact. One shed credit discards a *whole* slab at
/// the queue head, and a slab bounced back to the router under
/// DropNewest/ShedFair loses exactly the incoming item — in every case
/// `offered == enqueued + dropped + rejected` and, after a full drain,
/// `enqueued == processed + shed`, per shard and in total.
#[test]
fn shed_accounting_conserves_at_slab_granularity() {
    for policy in [
        BackpressurePolicy::DropOldest,
        BackpressurePolicy::ShedFair,
        BackpressurePolicy::DropNewest,
    ] {
        for shards in shard_counts() {
            // Tiny queues force shedding at nearly every slab flush.
            let cfg = config(shards, 2, policy);
            let items = workload(13, N_ITEMS);
            let mut pipe = match Pipeline::launch(cfg) {
                Ok(p) => p,
                Err(e) => panic!("launch: {e}"),
            };
            let mut seen_enqueued = 0u64;
            let mut seen_dropped = 0u64;
            for &(key, value) in &items {
                match pipe.ingest(key, value) {
                    Ok(IngestOutcome::Enqueued) => seen_enqueued += 1,
                    Ok(IngestOutcome::Dropped) => seen_dropped += 1,
                    Ok(IngestOutcome::ShardDown) => panic!("healthy shard reported down"),
                    Err(e) => panic!("ingest: {e}"),
                }
            }
            let summary = match pipe.shutdown() {
                Ok(s) => s,
                Err(e) => panic!("shutdown: {e}"),
            };
            assert_eq!(summary.offered, items.len() as u64, "{policy:?}");
            assert_eq!(summary.enqueued, seen_enqueued, "{policy:?}");
            assert_eq!(summary.dropped, seen_dropped, "{policy:?}");
            assert_eq!(summary.rejected, 0, "{policy:?}");
            assert_eq!(
                summary.offered,
                summary.enqueued + summary.dropped + summary.rejected,
                "router conservation broke ({policy:?}, shards={shards})"
            );
            assert_eq!(
                summary.enqueued,
                summary.processed + summary.shed,
                "worker conservation broke ({policy:?}, shards={shards})"
            );
            for (shard, s) in summary.per_shard.iter().enumerate() {
                assert_eq!(
                    s.enqueued,
                    s.processed + s.shed,
                    "shard {shard} conservation broke ({policy:?}, shards={shards})"
                );
            }
            if policy == BackpressurePolicy::DropNewest && cfg.slab_capacity == 1 {
                // slab=1 reproduces v1 exactly: every drop is a single
                // incoming item bounced off a full one-slot flush.
                assert_eq!(summary.shed, 0, "DropNewest must never shed");
            }
        }
    }
}

#[test]
fn snapshot_under_load_restores_byte_identically() {
    for shards in shard_counts() {
        let cfg = config(shards, 256, BackpressurePolicy::Block);
        let items = workload(11, N_ITEMS);
        let (prefix, suffix) = items.split_at(items.len() / 2);

        let mut original = match Pipeline::launch(cfg) {
            Ok(p) => p,
            Err(e) => panic!("launch: {e}"),
        };
        for &(key, value) in prefix {
            if let Err(e) = original.ingest(key, value) {
                panic!("ingest: {e}");
            }
        }
        // Queues are typically non-empty here: the barrier has to wait
        // for in-flight items, which is the "under load" part. With
        // slab > 1, partial slabs also sit in the router — the barrier
        // must flush them so the cut includes router-buffered keys.
        let buffered_before: usize = (0..shards).map(|s| original.buffered_len(s)).sum();
        if cfg.slab_capacity > 1 {
            assert!(
                buffered_before > 0,
                "expected partial router slabs before the barrier \
                 (shards={shards}, slab={})",
                cfg.slab_capacity
            );
        }
        let envelope = match original.snapshot() {
            Ok(b) => b,
            Err(e) => panic!("snapshot: {e}"),
        };
        for shard in 0..shards {
            assert_eq!(
                original.buffered_len(shard),
                0,
                "barrier left items buffered in the router (shard {shard})"
            );
        }
        // Reports visible after the barrier ack are exactly the
        // pre-barrier ones: nothing post-barrier has been ingested yet —
        // and they must cover the *whole* prefix, including the items
        // that were still router-buffered when `snapshot` was called.
        let pre_barrier = original.poll_reports();
        assert_eq!(
            per_shard_sequences(shards, &pre_barrier),
            serial_reference(&cfg, prefix),
            "barrier cut lost router-buffered keys (shards={shards})"
        );

        // (a) restore → snapshot is byte-identical (determinism of the
        // per-shard wire-v2 encodings and of the envelope framing).
        let mut mirror = match Pipeline::restore(&envelope, cfg) {
            Ok(p) => p,
            Err(e) => panic!("restore: {e}"),
        };
        let re_envelope = match mirror.snapshot() {
            Ok(b) => b,
            Err(e) => panic!("re-snapshot: {e}"),
        };
        assert_eq!(envelope, re_envelope, "shards={shards}");

        // (b) the restored pipeline continues the suffix with the same
        // per-shard report sequences as the original's post-barrier run.
        let mut original_post = Vec::new();
        let mut mirror_post = Vec::new();
        for &(key, value) in suffix {
            if let Err(e) = original.ingest(key, value) {
                panic!("ingest original: {e}");
            }
            if let Err(e) = mirror.ingest(key, value) {
                panic!("ingest mirror: {e}");
            }
        }
        original_post.extend(original.poll_reports());
        mirror_post.extend(mirror.poll_reports());
        let original_summary = match original.shutdown() {
            Ok(s) => s,
            Err(e) => panic!("shutdown original: {e}"),
        };
        let mirror_summary = match mirror.shutdown() {
            Ok(s) => s,
            Err(e) => panic!("shutdown mirror: {e}"),
        };
        original_post.extend(original_summary.reports.iter().copied());
        mirror_post.extend(mirror_summary.reports.iter().copied());

        assert_eq!(
            per_shard_sequences(shards, &original_post),
            per_shard_sequences(shards, &mirror_post),
            "post-barrier divergence (shards={shards})"
        );
        // Sanity: the serial reference over the whole stream matches the
        // original's full report record (pre-barrier + post-barrier).
        let mut full = pre_barrier;
        full.extend(original_post.iter().copied());
        assert_eq!(
            per_shard_sequences(shards, &full),
            serial_reference(&cfg, &items),
            "full-stream divergence (shards={shards})"
        );
    }
}

#[test]
fn worker_death_is_reported_not_hung() {
    // A pipeline whose worker has exited (shutdown already consumed it)
    // can't be built directly; instead check the queue-level contract the
    // router relies on: a dead consumer turns pushes into errors.
    use qf_pipeline::{PushError, SpscRing};
    let (mut producer, consumer) = SpscRing::<u64>::with_capacity(4).split();
    consumer.mark_dead();
    assert!(matches!(
        producer.try_push(1),
        Err((PushError::Disconnected, 1))
    ));
    assert_eq!(producer.push_blocking(2), Err(PushError::Disconnected));
}

#[test]
fn spsc_ring_transfers_everything_in_order() {
    let (mut producer, mut consumer) = spsc_ring(8);
    let n: u64 = if cfg!(miri) { 5_000 } else { 500_000 };
    let handle = std::thread::spawn(move || {
        let mut next = 0u64;
        let mut sum = 0u64;
        loop {
            let v = match consumer.pop_wait() {
                Some(v) => v,
                None => panic!("producer closed before the sentinel"),
            };
            if v == u64::MAX {
                break;
            }
            assert_eq!(v, next, "out-of-order or duplicated element");
            next += 1;
            sum = sum.wrapping_add(v);
        }
        (next, sum)
    });
    for v in 0..n {
        if let Err(e) = producer.push_blocking(v) {
            panic!("push: {e:?}");
        }
    }
    if let Err(e) = producer.push_blocking(u64::MAX) {
        panic!("push sentinel: {e:?}");
    }
    match handle.join() {
        Ok((count, sum)) => {
            assert_eq!(count, n);
            assert_eq!(sum, n.wrapping_mul(n.wrapping_sub(1)) / 2);
        }
        Err(_) => panic!("consumer panicked"),
    }
}

/// Small helper so the ring test reads naturally.
fn spsc_ring(cap: usize) -> (qf_pipeline::Producer<u64>, qf_pipeline::Consumer<u64>) {
    qf_pipeline::SpscRing::with_capacity(cap).split()
}
