//! qf-chaos: fault-injection acceptance suite for the supervised
//! pipeline.
//!
//! Every test here drives a real multi-threaded pipeline through injected
//! faults (worker panics, hangs, poison keys, checkpoint corruption) and
//! pins the recovery contract:
//!
//! * **Termination** — no fault combination deadlocks the router or
//!   propagates a panic out of a worker thread.
//! * **Conservation** — `offered == enqueued + dropped + rejected` and
//!   `enqueued == processed + shed + lost`, per shard and in total, no
//!   matter what crashed when.
//! * **Equivalence modulo loss** — with a crash whose loss window is
//!   made deterministic (a poison item hitting an idle shard), the
//!   recovered pipeline's per-shard report *sequences* equal the serial
//!   reference over the stream minus exactly the lost item.
//!
//! Timing knobs shrink-or-relax under Miri: workloads get smaller, and
//! the watchdog deadline is made effectively infinite so interpreter
//! slowness is never mistaken for a hung worker (hang *detection* is
//! covered natively; under Miri the same plans still pin termination and
//! conservation).

use qf_pipeline::{
    shard_of, BackpressurePolicy, ChaosPlan, CrashCause, Fault, IngestOutcome, Pipeline,
    PipelineConfig, PipelineSummary, RecoveredBase, ReportEvent, ShardState, SupervisorConfig,
};
use quantile_filter::{Criteria, QuantileFilter, QuantileFilterBuilder};
use rand::{Rng, SeedableRng, SmallRng};
use std::time::Duration;

#[cfg(miri)]
const N_ITEMS: usize = 600;
#[cfg(not(miri))]
const N_ITEMS: usize = 12_000;

fn criteria() -> Criteria {
    match Criteria::new(5.0, 0.9, 100.0) {
        Ok(c) => c,
        Err(e) => panic!("criteria: {e:?}"),
    }
}

/// Router slab capacity for the whole suite: the CI matrix pins one via
/// `QF_PIPELINE_SLAB` (1 / 64 / 4096); default exercises mid-size slabs.
fn slab_capacity() -> usize {
    match std::env::var("QF_PIPELINE_SLAB") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("bad QF_PIPELINE_SLAB value: {s:?}"),
        },
        Err(_) => 64,
    }
}

fn config(shards: usize, queue_capacity: usize, policy: BackpressurePolicy) -> PipelineConfig {
    PipelineConfig {
        shards,
        criteria: criteria(),
        memory_bytes_per_shard: 16 * 1024,
        queue_capacity,
        slab_capacity: slab_capacity(),
        policy,
        seed: 0xC0FFEE,
    }
}

/// Watchdog deadline: short natively so hang recovery actually runs;
/// effectively infinite under Miri so interpreter slowness never reads
/// as a hang.
fn watchdog() -> Duration {
    if cfg!(miri) {
        Duration::from_secs(300)
    } else {
        Duration::from_millis(30)
    }
}

fn sup_config(checkpoint_interval: u64) -> SupervisorConfig {
    SupervisorConfig {
        checkpoint_interval,
        watchdog_deadline: watchdog(),
        max_strikes: 5,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        strike_forgiveness: 1_000_000,
    }
}

fn shard_counts() -> Vec<usize> {
    if let Ok(s) = std::env::var("QF_PIPELINE_STRESS_SHARDS") {
        match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return vec![n],
            _ => panic!("bad QF_PIPELINE_STRESS_SHARDS value: {s:?}"),
        }
    }
    if cfg!(miri) {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Same workload shape as the stress suite: zipf-ish background plus hot
/// keys far over the threshold, so faults land on a stream that reports.
fn workload(seed: u64, n: usize) -> Vec<(u64, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen_bool(0.12) {
            let hot = 1_000 + rng.gen_range(0u64..4);
            items.push((hot, 400.0 + rng.gen_range(0.0..200.0)));
        } else {
            let key = rng.gen_range(0u64..128);
            items.push((key, rng.gen_range(0.0..20.0)));
        }
    }
    items
}

fn serial_reference(cfg: &PipelineConfig, items: &[(u64, f64)]) -> Vec<Vec<u64>> {
    let mut filters: Vec<QuantileFilter> = (0..cfg.shards)
        .map(|s| {
            match QuantileFilterBuilder::new(cfg.criteria)
                .memory_budget_bytes(cfg.memory_bytes_per_shard)
                .seed(cfg.shard_seed(s))
                .try_build()
            {
                Ok(f) => f,
                Err(e) => panic!("build: {e:?}"),
            }
        })
        .collect();
    let mut reports = vec![Vec::new(); cfg.shards];
    for &(key, value) in items {
        let shard = shard_of(key, cfg.shards);
        if filters[shard].insert(&key, value).is_some() {
            reports[shard].push(key);
        }
    }
    reports
}

fn per_shard_sequences(shards: usize, reports: &[ReportEvent]) -> Vec<Vec<u64>> {
    let mut seqs = vec![Vec::new(); shards];
    for r in reports {
        seqs[r.shard].push(r.key);
    }
    seqs
}

/// The conservation laws every chaos run must satisfy, per shard and in
/// total, plus internal consistency of the recovery ledger.
fn assert_conserved(summary: &PipelineSummary, context: &str) {
    assert_eq!(
        summary.offered,
        summary.enqueued + summary.dropped + summary.rejected,
        "router-side conservation violated ({context}): {summary:?}"
    );
    assert_eq!(
        summary.enqueued,
        summary.processed + summary.shed + summary.lost_to_crash,
        "worker-side conservation violated ({context}): {summary:?}"
    );
    let mut lost_from_records = 0u64;
    for r in &summary.recoveries {
        lost_from_records += r.lost;
        if !r.quarantined {
            assert!(
                r.base.is_some(),
                "restarted shard without a recovery base ({context}): {r:?}"
            );
        }
    }
    assert_eq!(
        summary.lost_to_crash, lost_from_records,
        "loss not fully attributed to recovery records ({context}): {summary:?}"
    );
    for (shard, s) in summary.per_shard.iter().enumerate() {
        assert_eq!(
            s.enqueued,
            s.processed + s.shed + s.lost,
            "shard {shard} conservation violated ({context}): {s:?}"
        );
        if s.state == ShardState::Running {
            assert_eq!(
                s.rejected, 0,
                "healthy shard {shard} rejected items ({context})"
            );
        }
    }
    let restarts_from_records = summary.recoveries.iter().filter(|r| !r.quarantined).count() as u64;
    assert_eq!(summary.restarts, restarts_from_records, "({context})");
}

fn drive(pipe: &mut Pipeline, items: &[(u64, f64)], got: &mut Vec<ReportEvent>) -> (u64, u64, u64) {
    let (mut enq, mut dropped, mut rejected) = (0u64, 0u64, 0u64);
    for (i, &(key, value)) in items.iter().enumerate() {
        match pipe.ingest(key, value) {
            Ok(IngestOutcome::Enqueued) => enq += 1,
            Ok(IngestOutcome::Dropped) => dropped += 1,
            Ok(IngestOutcome::ShardDown) => rejected += 1,
            Err(e) => panic!("ingest must not fail per-item: {e}"),
        }
        if i % 2_048 == 0 {
            got.extend(pipe.poll_reports());
        }
    }
    (enq, dropped, rejected)
}

/// The full fault × policy × shard-count matrix: every combination must
/// terminate, keep panics contained, and conserve accounting exactly.
#[test]
fn chaos_matrix_terminates_and_conserves() {
    // Under Miri, one lossless and one shedding policy keep the matrix
    // tractable; the full four-policy sweep runs natively.
    let policies: &[BackpressurePolicy] = if cfg!(miri) {
        &[BackpressurePolicy::Block, BackpressurePolicy::DropOldest]
    } else {
        &[
            BackpressurePolicy::Block,
            BackpressurePolicy::DropNewest,
            BackpressurePolicy::DropOldest,
            BackpressurePolicy::ShedFair,
        ]
    };
    let n = N_ITEMS;
    let plans: Vec<(&str, ChaosPlan)> = vec![
        (
            "panic",
            ChaosPlan::new().with(Fault::Panic {
                shard: 0,
                at_pop: (n / 64) as u64,
            }),
        ),
        (
            "hang",
            ChaosPlan::new().with(Fault::Hang {
                shard: 0,
                at_pop: (n / 32) as u64,
                millis: 80,
            }),
        ),
        (
            "poison",
            ChaosPlan::new().with(Fault::Poison {
                key: 1_001,
                times: 1,
            }),
        ),
        (
            "corrupt-checkpoint",
            ChaosPlan::new()
                .with(Fault::CorruptCheckpoint { shard: 0, seal: 1 })
                .with(Fault::Panic {
                    shard: 0,
                    at_pop: (n / 16) as u64,
                }),
        ),
        (
            "corrupt-every-checkpoint",
            ChaosPlan::new()
                .with(Fault::CorruptEveryCheckpoint { shard: 0 })
                .with(Fault::Panic {
                    shard: 0,
                    at_pop: (n / 8) as u64,
                }),
        ),
    ];
    for shards in shard_counts() {
        for (plan_name, plan) in &plans {
            for &policy in policies {
                let cfg = config(shards, 64, policy);
                let context = format!("plan={plan_name} policy={policy:?} shards={shards}");
                let mut pipe = match Pipeline::launch_chaos(cfg, sup_config(32), plan) {
                    Ok(p) => p,
                    Err(e) => panic!("launch ({context}): {e}"),
                };
                let items = workload(11, n);
                let mut got = Vec::new();
                let (enq, dropped, rejected) = drive(&mut pipe, &items, &mut got);
                let summary = match pipe.shutdown() {
                    Ok(s) => s,
                    Err(e) => panic!("shutdown must always summarize ({context}): {e}"),
                };
                assert_eq!(summary.offered, items.len() as u64, "({context})");
                assert_eq!(summary.enqueued, enq, "({context})");
                assert_eq!(summary.dropped, dropped, "({context})");
                assert_eq!(summary.rejected, rejected, "({context})");
                assert_conserved(&summary, &context);
                if policy == BackpressurePolicy::Block {
                    assert_eq!(summary.dropped, 0, "Block never drops ({context})");
                }
            }
        }
    }
}

/// Supervision with no faults is invisible: report sequences equal the
/// serial reference exactly, nothing is lost, nothing restarts.
#[test]
fn supervised_without_faults_equals_serial_reference() {
    for shards in shard_counts() {
        let cfg = config(shards, 256, BackpressurePolicy::Block);
        let items = workload(3, N_ITEMS);
        let expected = serial_reference(&cfg, &items);
        let mut pipe = match Pipeline::launch_supervised(cfg, sup_config(64)) {
            Ok(p) => p,
            Err(e) => panic!("launch: {e}"),
        };
        let mut got = Vec::new();
        drive(&mut pipe, &items, &mut got);
        got.extend(pipe.poll_reports());
        let summary = match pipe.shutdown() {
            Ok(s) => s,
            Err(e) => panic!("shutdown: {e}"),
        };
        got.extend(summary.reports.iter().copied());
        assert_eq!(summary.lost_to_crash, 0);
        assert_eq!(summary.restarts, 0);
        assert_eq!(summary.rejected, 0);
        assert_eq!(summary.processed, items.len() as u64);
        assert!(summary.recoveries.is_empty());
        assert_eq!(
            per_shard_sequences(shards, &got),
            expected,
            "shards={shards}"
        );
    }
}

/// The loss-bound statement, made deterministic: a poison item that hits
/// an *idle* shard is the entire loss window (nothing else is in-flight),
/// so the recovered run must equal the serial reference over the stream
/// minus exactly that one item.
#[test]
fn recovery_equals_serial_reference_minus_the_lost_item() {
    let shards = 2;
    let cfg = config(shards, 256, BackpressurePolicy::Block);
    let poison_key = 999_999u64;
    let items = workload(5, N_ITEMS);
    let half = items.len() / 2;
    let expected = serial_reference(&cfg, &items);

    let plan = ChaosPlan::new().with(Fault::Poison {
        key: poison_key,
        times: 1,
    });
    let mut pipe = match Pipeline::launch_chaos(cfg, sup_config(64), &plan) {
        Ok(p) => p,
        Err(e) => panic!("launch: {e}"),
    };
    let mut got = Vec::new();
    drive(&mut pipe, &items[..half], &mut got);
    // Push partial router slabs out, then let every shard drain and
    // commit, so nothing shares the poison item's loss window.
    pipe.flush();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while (0..shards).any(|s| pipe.queue_len(s) > 0) {
        assert!(std::time::Instant::now() < deadline, "queues never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(if cfg!(miri) { 50 } else { 20 }));
    match pipe.ingest(poison_key, 777.0) {
        Ok(IngestOutcome::Enqueued) => {}
        other => panic!("poison item should enqueue, got {other:?}"),
    }
    // The poison item travels alone: its slab holds exactly one item, so
    // the uncommitted-slab loss window is exactly one item wide.
    pipe.flush();
    // Give the worker time to pop it, panic, and unwind; the next push
    // to that shard detects the death and recovers synchronously.
    std::thread::sleep(Duration::from_millis(if cfg!(miri) { 100 } else { 30 }));
    drive(&mut pipe, &items[half..], &mut got);
    got.extend(pipe.poll_reports());
    let summary = match pipe.shutdown() {
        Ok(s) => s,
        Err(e) => panic!("shutdown: {e}"),
    };
    got.extend(summary.reports.iter().copied());

    assert_eq!(summary.offered, items.len() as u64 + 1);
    assert_eq!(
        summary.lost_to_crash, 1,
        "loss window is exactly the poison item"
    );
    assert_eq!(summary.processed, items.len() as u64);
    assert_eq!(summary.restarts, 1);
    assert_conserved(&summary, "deterministic poison");
    let rec = &summary.recoveries[0];
    assert_eq!(rec.cause, CrashCause::Panic);
    assert_eq!(rec.lost, 1);
    assert!(!rec.quarantined);
    assert!(
        matches!(
            rec.base,
            Some(RecoveredBase::Checkpoint { .. }) | Some(RecoveredBase::Fresh)
        ),
        "checkpoint+journal recovery should be lossless here: {rec:?}"
    );
    assert_eq!(
        per_shard_sequences(shards, &got),
        expected,
        "recovered output must equal serial reference minus the lost item"
    );
}

/// Satellite regression: a worker killed *between slab claim and commit*
/// (the panic lands mid-slab, after `note_progress` claimed the pop
/// ordinals but before the journal commit) loses the whole in-flight
/// slab — and every one of its items must be counted in `lost_to_crash`,
/// not silently dropped from both sides of the conservation law.
#[test]
fn mid_slab_death_counts_the_whole_slab_as_lost() {
    let slab = 8usize;
    let mut cfg = config(1, 64, BackpressurePolicy::Block);
    // Fixed slab size so the in-flight slab (and thus the expected loss
    // window) is exact regardless of the matrix's QF_PIPELINE_SLAB.
    cfg.slab_capacity = slab;
    // Panic at pop ordinal 12: item 4 of the *second* slab, strictly
    // between that slab's claim (ordinal base 8) and its commit.
    let plan = ChaosPlan::new().with(Fault::Panic {
        shard: 0,
        at_pop: (slab + slab / 2) as u64,
    });
    let mut pipe = match Pipeline::launch_chaos(cfg, sup_config(64), &plan) {
        Ok(p) => p,
        Err(e) => panic!("launch: {e}"),
    };
    // Two full slabs, auto-flushed at fill. Slab 1 commits; slab 2 is
    // claimed and then dies uncommitted.
    for i in 0..(2 * slab) as u64 {
        match pipe.ingest(i, 5.0) {
            Ok(IngestOutcome::Enqueued) => {}
            other => panic!("ingest {i}: {other:?}"),
        }
    }
    // Wait until the doomed slab has been popped (queue empty) and the
    // unwind has finished, so the death is observable at the next flush.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while pipe.queue_len(0) > 0 {
        assert!(std::time::Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(if cfg!(miri) { 100 } else { 30 }));
    // One more item: its flush bounces off the dead ring
    // (`PushError::Disconnected`), triggering recovery. The item itself
    // is still in the router's hands, so it survives to the replacement.
    match pipe.ingest(9_999, 5.0) {
        Ok(IngestOutcome::Enqueued) => {}
        other => panic!("post-crash ingest: {other:?}"),
    }
    pipe.flush();
    let summary = match pipe.shutdown() {
        Ok(s) => s,
        Err(e) => panic!("shutdown: {e}"),
    };
    assert_conserved(&summary, "mid-slab death");
    assert_eq!(
        summary.lost_to_crash, slab as u64,
        "the whole in-flight slab is the loss window: {summary:?}"
    );
    assert_eq!(summary.enqueued, 2 * slab as u64 + 1);
    assert_eq!(
        summary.processed,
        slab as u64 + 1,
        "slab 1 plus the re-flushed post-crash item"
    );
    assert_eq!(summary.restarts, 1);
    let rec = &summary.recoveries[0];
    assert_eq!(rec.cause, CrashCause::Panic);
    assert_eq!(rec.lost, slab as u64, "{rec:?}");
    assert!(!rec.quarantined);
}

/// Repeated poison redeliveries exhaust the strike budget: the shard is
/// quarantined, *its* items come back `ShardDown`, and every other shard
/// keeps accepting — the pipeline degrades instead of dying.
#[test]
fn strike_exhaustion_quarantines_only_the_poisoned_shard() {
    let shards = 2;
    let cfg = config(shards, 64, BackpressurePolicy::Block);
    let sup = SupervisorConfig {
        max_strikes: 3,
        ..sup_config(32)
    };
    let poison_key = 424_242u64;
    let poisoned_shard = shard_of(poison_key, shards);
    // Enough budget that the key keeps killing replacements until the
    // strike budget, not the fault budget, decides the outcome.
    let plan = ChaosPlan::new().with(Fault::Poison {
        key: poison_key,
        times: u32::MAX - 1,
    });
    let mut pipe = match Pipeline::launch_chaos(cfg, sup, &plan) {
        Ok(p) => p,
        Err(e) => panic!("launch: {e}"),
    };
    let mut down_seen = false;
    for _ in 0..10_000 {
        match pipe.ingest(poison_key, 5.0) {
            Ok(IngestOutcome::Enqueued) => {
                // Deliver the buffered poison immediately (with slab > 1
                // it would otherwise sit in the router).
                pipe.flush();
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(IngestOutcome::ShardDown) => {
                down_seen = true;
                break;
            }
            Ok(IngestOutcome::Dropped) => panic!("Block policy dropped"),
            Err(e) => panic!("ingest: {e}"),
        }
    }
    assert!(down_seen, "shard never quarantined");
    assert_eq!(pipe.shard_state(poisoned_shard), ShardState::Quarantined);

    // The other shard still accepts; the quarantined one fails fast.
    let mut other_key = 0u64;
    while shard_of(other_key, shards) == poisoned_shard {
        other_key += 1;
    }
    match pipe.ingest(other_key, 5.0) {
        Ok(IngestOutcome::Enqueued) => {}
        other => panic!("healthy shard refused an item: {other:?}"),
    }
    match pipe.ingest(poison_key, 5.0) {
        Ok(IngestOutcome::ShardDown) => {}
        other => panic!("quarantined shard accepted an item: {other:?}"),
    }
    // Snapshot still works: the quarantined shard contributes the frame
    // reconstructed from its checkpoint + journal.
    let bytes = match pipe.snapshot() {
        Ok(b) => b,
        Err(e) => panic!("snapshot with quarantined shard: {e}"),
    };
    assert!(Pipeline::restore(&bytes, cfg).is_ok());

    let summary = match pipe.shutdown() {
        Ok(s) => s,
        Err(e) => panic!("shutdown: {e}"),
    };
    assert_conserved(&summary, "quarantine");
    assert!(summary.rejected >= 2);
    assert_eq!(
        summary.per_shard[poisoned_shard].state,
        ShardState::Quarantined
    );
    let quarantine_records = summary.recoveries.iter().filter(|r| r.quarantined).count();
    assert_eq!(quarantine_records, 1, "{:?}", summary.recoveries);
    assert_eq!(
        summary.restarts, 2,
        "max_strikes-1 restarts before quarantine"
    );
}

/// A worker wedged past the watchdog deadline is detected, fenced, and
/// replaced; the pipeline keeps flowing and the hang is recorded with its
/// cause. (Hang *detection* needs real time; skipped under Miri, where
/// the deadline is pinned effectively-infinite.)
#[test]
#[cfg_attr(miri, ignore = "hang detection needs a real-time watchdog deadline")]
fn hung_worker_is_detected_and_replaced() {
    let shards = 2;
    let mut cfg = config(shards, 16, BackpressurePolicy::Block);
    // Hang *detection* needs the router to keep flushing (and stalling)
    // while the worker sleeps; with giant slabs the whole workload fits
    // in the router buffer and no push pressure ever builds. Cap the
    // slab so the scenario stays reachable at every matrix point.
    cfg.slab_capacity = cfg.slab_capacity.min(16);
    let plan = ChaosPlan::new().with(Fault::Hang {
        shard: 0,
        at_pop: 64,
        millis: 400,
    });
    let mut pipe = match Pipeline::launch_chaos(cfg, sup_config(32), &plan) {
        Ok(p) => p,
        Err(e) => panic!("launch: {e}"),
    };
    let items = workload(9, N_ITEMS);
    let mut got = Vec::new();
    drive(&mut pipe, &items, &mut got);
    let summary = match pipe.shutdown() {
        Ok(s) => s,
        Err(e) => panic!("shutdown: {e}"),
    };
    assert_conserved(&summary, "hang");
    assert!(
        summary
            .recoveries
            .iter()
            .any(|r| r.cause == CrashCause::Hang),
        "hang never detected: {:?}",
        summary.recoveries
    );
    assert!(summary.restarts >= 1);
    // The replacement started from checkpoint + journal and kept going:
    // far more items processed than could fit in one queue + burst.
    assert!(summary.processed > summary.lost_to_crash);
}

/// Snapshot-under-chaos: a barrier issued while a worker is dying is
/// re-issued to the replacement, and the resulting envelope restores.
#[test]
fn snapshot_survives_a_mid_barrier_crash() {
    let shards = 2;
    let cfg = config(shards, 64, BackpressurePolicy::Block);
    let n = N_ITEMS / 2;
    let plan = ChaosPlan::new().with(Fault::Panic {
        shard: 0,
        at_pop: (n / 4) as u64,
    });
    let mut pipe = match Pipeline::launch_chaos(cfg, sup_config(32), &plan) {
        Ok(p) => p,
        Err(e) => panic!("launch: {e}"),
    };
    let items = workload(13, n);
    let mut got = Vec::new();
    drive(&mut pipe, &items, &mut got);
    let bytes = match pipe.snapshot() {
        Ok(b) => b,
        Err(e) => panic!("snapshot under chaos: {e}"),
    };
    let restored = match Pipeline::restore(&bytes, cfg) {
        Ok(p) => p,
        Err(e) => panic!("restore: {e}"),
    };
    match restored.shutdown() {
        Ok(_) => {}
        Err(e) => panic!("restored pipeline shutdown: {e}"),
    }
    // The original keeps working after the barrier.
    drive(&mut pipe, &items, &mut got);
    let summary = match pipe.shutdown() {
        Ok(s) => s,
        Err(e) => panic!("shutdown: {e}"),
    };
    assert_conserved(&summary, "snapshot under chaos");
}

/// Corrupting every checkpoint forces recovery onto the journal-only
/// paths; when the journal no longer reaches item 1, the shard restarts
/// empty with the rollback accounted as `StateLoss`, never silently.
#[test]
fn corrupt_checkpoints_degrade_to_accounted_state_loss() {
    let shards = 1;
    let mut cfg = config(shards, 64, BackpressurePolicy::Block);
    // The StateLoss restart must happen *mid-run*: with giant slabs the
    // whole workload fits in the ring, the crash surfaces only at the
    // shutdown drain, and the shard fences terminally instead of
    // restarting. Cap the slab so the router is still flushing (and
    // detecting the death) when the panic fires.
    cfg.slab_capacity = cfg.slab_capacity.min(16);
    let n = N_ITEMS;
    let plan = ChaosPlan::new()
        .with(Fault::CorruptEveryCheckpoint { shard: 0 })
        .with(Fault::Panic {
            shard: 0,
            at_pop: (n / 2) as u64,
        });
    // Small interval: by the crash point the journal has been pruned far
    // past item 1, so journal-only recovery is impossible.
    let mut pipe = match Pipeline::launch_chaos(cfg, sup_config(16), &plan) {
        Ok(p) => p,
        Err(e) => panic!("launch: {e}"),
    };
    let items = workload(17, n);
    let mut got = Vec::new();
    drive(&mut pipe, &items, &mut got);
    let summary = match pipe.shutdown() {
        Ok(s) => s,
        Err(e) => panic!("shutdown: {e}"),
    };
    assert_conserved(&summary, "corrupt-every-checkpoint");
    let state_loss = summary
        .recoveries
        .iter()
        .find(|r| r.base == Some(RecoveredBase::StateLoss));
    let Some(rec) = state_loss else {
        panic!("expected a StateLoss recovery: {:?}", summary.recoveries);
    };
    assert!(
        rec.prior_applied > 0,
        "rollback size must be recorded: {rec:?}"
    );
    assert_eq!(rec.recovered_seq, 0, "StateLoss restarts the lineage");
    // The items applied before the rollback still count as processed —
    // their reports were emitted and journaled before the state was lost.
    assert!(summary.processed >= rec.prior_applied);
}

/// Flight-dump acceptance (trace builds only): every restart *and*
/// quarantine leaves `flight-<shard>-<generation>.json` in the pipeline's
/// flight directory, the dump parses, its event sequence is strictly
/// monotone, and the cause event agrees with the supervisor's own
/// `RecoveryRecord` (cause code, lost count, fenced generation). This is
/// the on-disk half of the recovery ledger: the record says *what* the
/// supervisor decided, the dump says *what the shard was doing* when it
/// died.
#[cfg(feature = "trace")]
mod flight_dumps {
    use super::*;
    use qf_pipeline::{Fault, RecoveryRecord};
    use std::path::{Path, PathBuf};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qf_chaos_flight_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Pull `"key": N` out of one hand-rolled JSON event object. Panics
    /// (failing the test) when the field is missing or non-numeric — that
    /// *is* the parseability assertion.
    fn u64_field(obj: &str, key: &str) -> u64 {
        let tag = format!("\"{key}\": ");
        let at = match obj.find(&tag) {
            Some(i) => i + tag.len(),
            None => panic!("event missing field {key:?}: {obj}"),
        };
        let digits: String = obj[at..].chars().take_while(char::is_ascii_digit).collect();
        match digits.parse() {
            Ok(v) => v,
            Err(e) => panic!("field {key:?} not numeric ({e}): {obj}"),
        }
    }

    fn event_lines(body: &str) -> Vec<&str> {
        body.lines()
            .map(str::trim_start)
            .filter(|l| l.starts_with("{\"seq\":"))
            .collect()
    }

    /// The dump a recovery record promises: present, schema-tagged,
    /// monotone, and carrying exactly one cause event for this fenced
    /// generation whose payload matches the record.
    fn assert_dump_matches(dir: &Path, rec: &RecoveryRecord) {
        let path = dir.join(format!("flight-{}-{}.json", rec.shard, rec.generation));
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => panic!("recovery {rec:?} left no dump at {}: {e}", path.display()),
        };
        assert!(
            body.contains("\"schema\": \"qf-flight/v1\""),
            "schema tag missing in {}",
            path.display()
        );
        assert!(
            body.contains(&format!("\"cause\": \"{}\"", rec.cause.name())),
            "dump cause disagrees with record {rec:?}: {body}"
        );
        let events = event_lines(&body);
        assert!(!events.is_empty(), "empty dump for {rec:?}");
        let mut prev_seq = None;
        for e in &events {
            let seq = u64_field(e, "seq");
            if let Some(p) = prev_seq {
                assert!(seq > p, "seqs not strictly monotone at {e}");
            }
            prev_seq = Some(seq);
        }
        let expected_name = if rec.quarantined {
            "worker_quarantine"
        } else {
            "worker_restart"
        };
        // Older generations' cause events legitimately linger in the ring
        // (it spans restarts); match on this record's fenced generation.
        let cause_events: Vec<&&str> = events
            .iter()
            .filter(|e| {
                e.contains(&format!("\"name\": \"{expected_name}\""))
                    && u64_field(e, "generation") == rec.generation
            })
            .collect();
        assert_eq!(
            cause_events.len(),
            1,
            "want exactly one {expected_name} for generation {} in {}: {body}",
            rec.generation,
            path.display()
        );
        let cause = cause_events[0];
        assert_eq!(
            u64_field(cause, "a"),
            rec.cause.code(),
            "cause code mismatch for {rec:?}: {cause}"
        );
        assert_eq!(
            u64_field(cause, "b"),
            rec.lost,
            "lost count mismatch for {rec:?}: {cause}"
        );
        assert_eq!(u64_field(cause, "shard"), rec.shard as u64, "{cause}");
    }

    /// Strike exhaustion produces both record kinds in one run — two
    /// restarts, then a quarantine — and each must have its dump.
    #[test]
    fn every_restart_and_quarantine_writes_a_consistent_dump() {
        let dir = scratch_dir("quarantine");
        let shards = 2;
        let cfg = config(shards, 64, BackpressurePolicy::Block);
        let sup = SupervisorConfig {
            max_strikes: 3,
            ..sup_config(32)
        };
        let poison_key = 424_242u64;
        let plan = ChaosPlan::new().with(Fault::Poison {
            key: poison_key,
            times: u32::MAX - 1,
        });
        let mut pipe = match Pipeline::launch_chaos(cfg, sup, &plan) {
            Ok(p) => p,
            Err(e) => panic!("launch: {e}"),
        };
        pipe.set_flight_dir(&dir);
        for _ in 0..10_000 {
            match pipe.ingest(poison_key, 5.0) {
                Ok(IngestOutcome::Enqueued) => {
                    pipe.flush();
                    std::thread::sleep(Duration::from_millis(2));
                }
                Ok(IngestOutcome::ShardDown) => break,
                other => panic!("unexpected ingest outcome: {other:?}"),
            }
        }
        let summary = match pipe.shutdown() {
            Ok(s) => s,
            Err(e) => panic!("shutdown: {e}"),
        };
        assert!(
            summary.recoveries.iter().any(|r| r.quarantined)
                && summary.recoveries.iter().any(|r| !r.quarantined),
            "run must exercise both restart and quarantine: {:?}",
            summary.recoveries
        );
        for rec in &summary.recoveries {
            assert_dump_matches(&dir, rec);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A plain panic-driven restart dumps too, and the pre-crash trail
    /// (checkpoint seals from the fenced generation) is in it.
    #[test]
    fn restart_dump_carries_the_pre_crash_trail() {
        let dir = scratch_dir("restart");
        let cfg = config(1, 64, BackpressurePolicy::Block);
        let n = N_ITEMS;
        let plan = ChaosPlan::new().with(Fault::Panic {
            shard: 0,
            at_pop: (n / 4) as u64,
        });
        let mut pipe = match Pipeline::launch_chaos(cfg, sup_config(32), &plan) {
            Ok(p) => p,
            Err(e) => panic!("launch: {e}"),
        };
        pipe.set_flight_dir(&dir);
        let items = workload(21, n);
        let mut got = Vec::new();
        drive(&mut pipe, &items, &mut got);
        let summary = match pipe.shutdown() {
            Ok(s) => s,
            Err(e) => panic!("shutdown: {e}"),
        };
        let restart = summary.recoveries.iter().find(|r| !r.quarantined);
        let Some(rec) = restart else {
            panic!("panic plan produced no restart: {:?}", summary.recoveries);
        };
        assert_dump_matches(&dir, rec);
        let path = dir.join(format!("flight-{}-{}.json", rec.shard, rec.generation));
        let body = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{e}"));
        // checkpoint_interval=32 and ~n/4 pops before the crash: the
        // fenced generation sealed checkpoints, and those seals must be
        // on the tape ahead of the restart event.
        assert!(
            body.contains("\"name\": \"checkpoint_seal\""),
            "pre-crash checkpoint seals missing from dump: {body}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
