//! The pipeline itself: config, launch, routing, backpressure, snapshot
//! under load, supervision/recovery, and drained shutdown.
//!
//! ## Topology
//!
//! ```text
//!              ┌─ SPSC ring ─ worker 0 (owns QuantileFilter #0) ─┐
//!  router ─────┼─ SPSC ring ─ worker 1 (owns QuantileFilter #1) ─┼─ mpsc ─ caller
//!  (1 thread)  └─ SPSC ring ─ worker N (owns QuantileFilter #N) ─┘  sink
//! ```
//!
//! The router ([`Pipeline::ingest`], single-threaded by `&mut self`)
//! hashes each key to its shard with [`crate::shard_of`] and appends it
//! to that shard's **slab** — a fixed-capacity chunk buffered in the
//! router. A slab is flushed into the shard's bounded queue as one ring
//! slot when it fills (and on quiesce, snapshot, [`Pipeline::flush`],
//! and shutdown), so the Lamport handshake, the park/wake handshake,
//! and the drop accounting are paid once per slab instead of once per
//! item. Each worker owns its filter outright — the paper's
//! single-writer deployment model, preserved per shard — drains each
//! slab through the fused `insert_batch` hot path, and sends [`Event`]s
//! into one shared mpsc sink the caller drains with
//! [`Pipeline::poll_reports`].
//!
//! ## Supervision (opt-in)
//!
//! [`Pipeline::launch_supervised`] adds the self-healing layer from
//! [`crate::supervisor`]: the router doubles as supervisor, detecting
//! worker death on `Disconnected` pushes and worker *hangs* via a
//! per-shard progress watchdog, then fencing the old generation and
//! respawning the shard from its checkpoint + replay journal with capped
//! exponential backoff. Repeated rapid crashes quarantine the shard:
//! its items come back as [`IngestOutcome::ShardDown`] and the rest of
//! the pipeline keeps running. An unsupervised pipeline has none of this
//! machinery — no journal writes, no extra lock on the worker path.
//!
//! ## Conservation laws
//!
//! Pinned by the stress and chaos suites, for every shard and in total:
//!
//! ```text
//! offered  == enqueued + dropped + rejected        (router-side)
//! enqueued == processed + shed + lost_to_crash     (after drained shutdown)
//! ```
//!
//! `rejected` counts items refused because their shard was down or
//! quarantined; `shed` counts oldest-**slab** drops under the shedding
//! policies (a shed credit discards the whole slab at the queue head,
//! every contained item counted, and its keys un-noted from the
//! `ShedFair` sketch); `lost_to_crash` is exactly the accounted loss
//! window of each crash (the uncommitted slab + in-ring slabs — items
//! still buffered in the router survive a restart and flush to the
//! replacement worker), zero when nothing crashed. Both laws hold at
//! slab granularity: `enqueued` counts admission into the router slab,
//! which is an extension of the queue — shutdown and snapshot flush it
//! before cutting.
//!
//! ## Ordering guarantee (and its limits)
//!
//! Per shard, items are applied in exactly the order they were ingested,
//! and reports from one shard arrive in the sink in emission order.
//! *Across* shards no order is defined — two reports from different
//! shards may arrive in either order relative to their ingest order.
//! Since per-key state never crosses shards, the reported *key set* (and
//! each shard's report sequence) is identical to single-threaded
//! execution; only the cross-shard interleaving of the sink is
//! scheduling-dependent. Under supervision the same holds outside the
//! accounted loss windows: a recovered shard's report sequence is the
//! serial reference's sequence with the lost items' reports excised.

use crate::chaos::{ArmedChaos, ChaosPlan};
use crate::flight::ShardFlight;
use crate::health::{OpsView, ShardBoard};
use crate::ring::{Producer, PushError, SpscRing};
use crate::snapshot::{open_shards, seal_shards};
use crate::supervisor::{
    CrashCause, RecoveredBase, RecoveryRecord, ShardRecovery, ShardState, SupervisorConfig,
};
use crate::telemetry;
use crate::worker::{run_supervised, run_worker, Event, Msg, Slab, Supervision, WorkerExit};
use crate::{shard_of, PipelineError};
use quantile_filter::{Criteria, QuantileFilter, QuantileFilterBuilder, Report};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Spin/yield rounds per bounded push attempt on the supervised blocking
/// path, between watchdog checks. Small enough that a hung worker is
/// noticed within a few clock reads, large enough that the clock is not
/// on the per-push path when the queue has room.
const PUSH_ROUND_BUDGET: usize = 512;

/// What the router does when a shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait (spin/yield) until the worker frees a slot. Lossless;
    /// ingest latency absorbs the overload.
    Block,
    /// Drop the incoming item and count it (per shard, plus the
    /// `qf_pipeline_dropped_total` telemetry counter). Bounded ingest
    /// latency; the drop rate is the overload signal.
    DropNewest,
    /// Admit the incoming item by shedding the *oldest* queued slab: the
    /// router posts a shed credit that the worker redeems by discarding
    /// the slab at the queue head (every contained item counted per
    /// shard as `shed`). Keeps the freshest data under overload — the
    /// right bias for an online detector. At `slab_capacity: 1` this is
    /// exactly the v1 oldest-item drop.
    DropOldest,
    /// `DropOldest` with per-key fairness: admission history is sampled
    /// into 256 key buckets, and when the queue is full an item from a
    /// bucket holding more than 4× its fair share is dropped *itself*
    /// instead of shedding someone else's oldest. Heavy keys absorb the
    /// overload they cause; light keys keep flowing.
    ShedFair,
}

/// Static configuration of a [`Pipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of shards == worker threads. Keys are partitioned across
    /// shards by [`crate::shard_of`].
    pub shards: usize,
    /// Detection criteria, shared by every shard's filter.
    pub criteria: Criteria,
    /// Memory budget per shard filter, in bytes.
    pub memory_bytes_per_shard: usize,
    /// Slots per shard queue (rounded up to a power of two, minimum 2).
    /// Each slot carries one slab, so the queue buffers up to
    /// `queue_capacity * slab_capacity` items.
    pub queue_capacity: usize,
    /// Items per slab — the router-side batch handed over per ring slot
    /// (minimum 1; `1` reproduces the v1 per-item handoff semantics
    /// bit for bit). Larger slabs amortize the handoff and wake
    /// handshakes and widen both the shed and the crash-loss granule.
    pub slab_capacity: usize,
    /// Full-queue behavior.
    pub policy: BackpressurePolicy,
    /// Base RNG seed; shard `i` uses `seed.wrapping_add(i)`, matching the
    /// distinct-seeds-per-shard convention of the eval harness.
    pub seed: u64,
}

impl PipelineConfig {
    /// The seed shard `i`'s filter is built with.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.seed.wrapping_add(shard as u64)
    }

    fn validate(&self) -> Result<(), PipelineError> {
        if self.shards == 0 {
            return Err(PipelineError::InvalidConfig {
                reason: "pipeline needs at least one shard".into(),
            });
        }
        if self.queue_capacity < 2 {
            return Err(PipelineError::InvalidConfig {
                reason: "queue capacity must be at least 2".into(),
            });
        }
        if self.slab_capacity == 0 {
            return Err(PipelineError::InvalidConfig {
                reason: "slab capacity must be at least 1".into(),
            });
        }
        Ok(())
    }

    fn build_filter(&self, shard: usize) -> Result<QuantileFilter, PipelineError> {
        QuantileFilterBuilder::new(self.criteria)
            .memory_budget_bytes(self.memory_bytes_per_shard)
            .seed(self.shard_seed(shard))
            .try_build()
            .map_err(|e| PipelineError::InvalidConfig {
                reason: e.to_string(),
            })
    }
}

/// Per-item verdict from [`Pipeline::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The item was admitted: it sits in its shard's router slab or on
    /// the shard queue (the slab is an extension of the queue — flushed
    /// on fill, quiesce, snapshot, [`Pipeline::flush`], and shutdown).
    Enqueued,
    /// The queue was full and the policy shed the *incoming* item
    /// ([`BackpressurePolicy::DropNewest`], or the fairness drop under
    /// [`BackpressurePolicy::ShedFair`]); it was counted per shard.
    Dropped,
    /// The item's shard is down — its worker died (unsupervised) or was
    /// quarantined after exhausting its strike budget (supervised). Only
    /// this shard's items are affected; other shards keep accepting.
    ShardDown,
}

/// A report pulled out of the sink, tagged with its origin shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportEvent {
    /// Shard whose filter fired.
    pub shard: usize,
    /// The reported key.
    pub key: u64,
    /// The filter's report payload.
    pub report: Report,
}

/// Exact per-shard accounting, returned by [`Pipeline::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Items accepted onto this shard's queue.
    pub enqueued: u64,
    /// Items shed at the router (incoming-item drops).
    pub dropped: u64,
    /// Items refused because the shard was down or quarantined.
    pub rejected: u64,
    /// Items the worker popped and applied to its filter (supervised:
    /// journaled applies, surviving every recovery).
    pub processed: u64,
    /// Oldest-item drops redeemed by the worker under the shedding
    /// policies.
    pub shed: u64,
    /// Items whose effect did not survive a crash (enqueued, never
    /// journaled). Always 0 without faults.
    pub lost: u64,
    /// Reports the worker's filter emitted (supervised: for journaled
    /// items).
    pub reports: u64,
    /// Times this shard's worker was restarted by the supervisor.
    pub restarts: u64,
    /// Lifecycle state at shutdown (always `Running` unsupervised).
    pub state: ShardState,
}

/// Final accounting for a drained pipeline. See the module docs for the
/// conservation laws the stress/chaos suites pin.
#[derive(Debug, Clone)]
pub struct PipelineSummary {
    /// Items presented to [`Pipeline::ingest`].
    pub offered: u64,
    /// Items accepted onto some shard queue.
    pub enqueued: u64,
    /// Incoming items shed at the router.
    pub dropped: u64,
    /// Items refused because their shard was down.
    pub rejected: u64,
    /// Items applied to shard filters (and journaled, when supervised).
    pub processed: u64,
    /// Oldest-item drops under the shedding policies.
    pub shed: u64,
    /// Items lost to worker crashes — the summed accounted loss windows.
    pub lost_to_crash: u64,
    /// Total reports emitted.
    pub reports_emitted: u64,
    /// Worker restarts across all shards.
    pub restarts: u64,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<ShardSummary>,
    /// Every recovery event, in occurrence order (empty without faults).
    pub recoveries: Vec<RecoveryRecord>,
    /// Reports not yet consumed via [`Pipeline::poll_reports`] when the
    /// pipeline shut down, in sink arrival order.
    pub reports: Vec<ReportEvent>,
}

struct ShardHandle {
    queue: Producer<Msg>,
    worker: Option<JoinHandle<WorkerExit>>,
    /// The shard's accumulating slab: admitted items wait here until the
    /// slab fills (or a flush point), then travel as one ring slot.
    buf: Slab,
    /// Unsupervised only: the worker was observed dead at a flush; all
    /// further items for this shard are rejected without re-probing.
    down: bool,
    enqueued: u64,
    dropped: u64,
    rejected: u64,
    /// The shard's flight recorder (zero-sized stub without `trace`).
    /// One ring per shard for the pipeline's whole life — it spans
    /// worker restarts so dumps keep the pre-crash history.
    flight: ShardFlight,
    /// Supervision scoreboard shared with [`OpsView`] readers.
    board: Arc<ShardBoard>,
    /// Router-side backpressure edge detector: `true` while the last
    /// push attempt on this shard found the queue full.
    stalled: bool,
}

impl ShardHandle {
    /// Take the accumulated slab for flushing, leaving an empty slab of
    /// the same capacity in its place.
    fn take_buf(&mut self) -> Slab {
        let capacity = self.buf.capacity();
        std::mem::replace(&mut self.buf, Slab::with_capacity(capacity))
    }
}

/// Admission sampling for [`BackpressurePolicy::ShedFair`]: 256 hash
/// buckets of recent admissions, halved once the window fills so the
/// estimate tracks the live mix.
///
/// Shared between the router (which notes admissions and asks
/// [`is_heavy`](Self::is_heavy)) and the shard workers (which *un-note*
/// every key of a slab they discard against a shed credit, so shed
/// traffic stops counting as admission history — the exact per-key
/// accounting the slab-granular `ShedFair` contract requires). All ops
/// are relaxed: the sketch is a heuristic, and every counter update is
/// a single atomic RMW, so the counts themselves never tear.
pub(crate) struct Fairness {
    // sync: counter — heuristic admission sketch, relaxed RMWs only;
    // router and workers race on single updates and no other memory is
    // published through these counts, so no ordering edge is required.
    buckets: Box<[AtomicU32; 256]>,
    // sync: counter — same protocol as `buckets`; decay tolerates
    // lost-update skew by CAS-halving.
    total: AtomicU32,
}

impl Fairness {
    const WINDOW: u32 = 4096;
    const HEAVY_FACTOR: u32 = 4;

    fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU32::new(0))),
            total: AtomicU32::new(0),
        }
    }

    /// Bucket a key; the tweak decorrelates fairness sampling from both
    /// routing and the filters' own hashing.
    fn bucket(key: u64) -> usize {
        (qf_hash::mix64(key ^ 0xFA1B) & 0xFF) as usize
    }

    fn note(&self, key: u64) {
        let b = &self.buckets[Self::bucket(key)];
        // sync: counter — relaxed admission sample; readers tolerate
        // arbitrary interleaving with decay and unnote.
        b.fetch_add(1, Ordering::Relaxed);
        // sync: counter — relaxed window clock for the decay trigger.
        let total = self.total.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if total >= Self::WINDOW {
            self.decay();
        }
    }

    /// Halve every bucket and rebuild the total. Concurrent `unnote`s
    /// racing a halving can be folded in or lost by one count — the
    /// sketch already forgets half its history here by design.
    fn decay(&self) {
        let mut total = 0u32;
        for b in self.buckets.iter() {
            // sync: counter — relaxed CAS halving; exact w.r.t.
            // concurrent increments/decrements on the same bucket.
            let _ = b.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v >> 1));
            // sync: counter — relaxed re-read for the rebuilt total.
            total += b.load(Ordering::Relaxed);
        }
        // sync: counter — relaxed total rebuild; racy by at most the
        // in-flight notes/unnotes of the same window.
        self.total.store(total, Ordering::Relaxed);
    }

    /// Remove one admission of `key` from the sample — called by a
    /// worker for every item of a slab it shed, saturating at zero.
    pub(crate) fn unnote(&self, key: u64) {
        let b = &self.buckets[Self::bucket(key)];
        // sync: counter — relaxed saturating decrement; CAS keeps the
        // bucket from underflowing past concurrent decay.
        if b.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
        {
            // sync: counter — relaxed saturating decrement of the window total.
            let _ = self
                .total
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        }
    }

    fn is_heavy(&self, key: u64) -> bool {
        // sync: counter — relaxed heuristic reads; staleness only skews
        // which item absorbs an overload drop.
        let share = self.buckets[Self::bucket(key)].load(Ordering::Relaxed);
        let fair = self.total.load(Ordering::Relaxed) / 256 + 1; // sync: counter — relaxed heuristic read
        share > Self::HEAVY_FACTOR * fair
    }
}

/// Router-side supervision state for one shard.
struct ShardSup {
    recovery: Arc<ShardRecovery>,
    /// Mirror of the recovery generation (authoritative copy lives under
    /// the lock); used to discard stale snapshot frames.
    generation: u64,
    state: ShardState,
    strikes: u32,
    /// `applied` when the current worker generation started; the strike
    /// counter resets once the shard runs `strike_forgiveness` past it.
    applied_at_restart: u64,
    restarts: u64,
    /// Journaled applies carried over from lineages that ended in
    /// `StateLoss` (their items were processed, then the state was
    /// rolled away; the count survives).
    processed_cum: u64,
    /// Loss already attributed to earlier fences, so each recovery
    /// record carries only its own increment.
    lost_so_far: u64,
    /// Watchdog: last observed progress counter and when it last moved.
    last_progress: u64,
    last_progress_at: Instant,
    /// Lock-free mirror of this shard's supervision state, read by
    /// [`OpsView`] holders (same `Arc` as the handle's).
    board: Arc<ShardBoard>,
}

/// Everything a supervised pipeline carries beyond the legacy fields.
struct Supervised {
    cfg: SupervisorConfig,
    chaos: Option<ArmedChaos>,
    /// Kept so the router can spawn replacement workers; also means the
    /// event channel never reports disconnected while supervised.
    sink: Sender<Event>,
    shards: Vec<ShardSup>,
    /// Fenced workers not yet known to have exited; reaped at shutdown.
    graveyard: Vec<JoinHandle<WorkerExit>>,
    recoveries: Vec<RecoveryRecord>,
}

/// A live concurrent ingest pipeline. See the module docs for topology
/// and guarantees; `&mut self` on the ingest path enforces the
/// single-producer half of the SPSC contract.
pub struct Pipeline {
    config: PipelineConfig,
    shards: Vec<ShardHandle>,
    events: Receiver<Event>,
    /// Reports received while waiting for snapshot barriers, preserved in
    /// arrival order for the next `poll_reports`.
    pending: VecDeque<ReportEvent>,
    offered: u64,
    memory_bytes: usize,
    /// Per-shard admission sampling; populated only under `ShedFair`.
    /// `Arc`-shared with the shard workers, which un-note shed slabs.
    fairness: Vec<Arc<Fairness>>,
    /// Present iff launched via [`Self::launch_supervised`] /
    /// [`Self::launch_chaos`].
    supervision: Option<Supervised>,
    /// Where restart/quarantine flight dumps land (no-op without the
    /// `trace` feature).
    flight_dir: PathBuf,
}

impl Pipeline {
    /// Build per-shard filters from `config` and launch the workers.
    pub fn launch(config: PipelineConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        let mut filters = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            filters.push(config.build_filter(shard)?);
        }
        Self::launch_with_filters(config, filters)
    }

    /// Launch workers over caller-supplied filters (one per shard) —
    /// the restore path, and the hook for non-default filter geometry.
    pub fn launch_with_filters(
        config: PipelineConfig,
        filters: Vec<QuantileFilter>,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        if filters.len() != config.shards {
            return Err(PipelineError::InvalidConfig {
                reason: format!("got {} filters for {} shards", filters.len(), config.shards),
            });
        }
        let memory_bytes = filters.iter().map(QuantileFilter::memory_bytes).sum();
        let (sink, events) = channel();
        let fairness = Self::fairness_for(&config);
        let mut shards = Vec::with_capacity(config.shards);
        for (shard, filter) in filters.into_iter().enumerate() {
            let (producer, consumer) = SpscRing::with_capacity(config.queue_capacity).split();
            let sink = sink.clone();
            let flight = ShardFlight::new(shard);
            let worker_flight = flight.clone();
            let worker_fairness = fairness.get(shard).cloned();
            let worker = std::thread::Builder::new()
                .name(format!("qf-pipeline-{shard}"))
                .spawn(move || {
                    run_worker(
                        shard,
                        consumer,
                        filter,
                        sink,
                        worker_fairness,
                        worker_flight,
                    )
                })
                .map_err(|e| PipelineError::InvalidConfig {
                    reason: format!("failed to spawn worker thread: {e}"),
                })?;
            shards.push(ShardHandle {
                queue: producer,
                worker: Some(worker),
                buf: Slab::with_capacity(config.slab_capacity),
                down: false,
                enqueued: 0,
                dropped: 0,
                rejected: 0,
                flight,
                board: Arc::new(ShardBoard::default()),
                stalled: false,
            });
        }
        // The workers hold the only senders now: a `recv` error later
        // means every worker is gone, not that we forgot a clone here.
        drop(sink);
        Ok(Self {
            config,
            shards,
            events,
            pending: VecDeque::new(),
            offered: 0,
            memory_bytes,
            fairness,
            supervision: None,
            flight_dir: PathBuf::from("results"),
        })
    }

    /// Launch with the self-healing supervision layer: periodic
    /// checkpoints + replay journal per shard, crash/hang detection, and
    /// restart with capped backoff (quarantine after repeated strikes).
    /// See [`SupervisorConfig`] for the knobs.
    pub fn launch_supervised(
        config: PipelineConfig,
        sup: SupervisorConfig,
    ) -> Result<Self, PipelineError> {
        Self::launch_supervised_inner(config, sup, None)
    }

    /// [`Self::launch_supervised`] with an armed [`ChaosPlan`] — the
    /// qf-chaos harness entry point. Production code never injects
    /// faults; this exists so the recovery machinery is tested by the
    /// same code path it protects.
    pub fn launch_chaos(
        config: PipelineConfig,
        sup: SupervisorConfig,
        plan: &ChaosPlan,
    ) -> Result<Self, PipelineError> {
        Self::launch_supervised_inner(config, sup, Some(plan.arm()))
    }

    fn launch_supervised_inner(
        config: PipelineConfig,
        sup: SupervisorConfig,
        chaos: Option<ArmedChaos>,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        sup.validate()
            .map_err(|reason| PipelineError::InvalidConfig {
                reason: format!("supervisor config: {reason}"),
            })?;
        let (sink, events) = channel();
        let fairness = Self::fairness_for(&config);
        let mut shards = Vec::with_capacity(config.shards);
        let mut sup_shards = Vec::with_capacity(config.shards);
        let mut memory_bytes = 0usize;
        for shard in 0..config.shards {
            let filter = config.build_filter(shard)?;
            memory_bytes += filter.memory_bytes();
            let recovery = Arc::new(ShardRecovery::new(
                sup.checkpoint_interval,
                config.slab_capacity,
            ));
            let flight = ShardFlight::new(shard);
            let board = Arc::new(ShardBoard::default());
            let (producer, worker) = Self::spawn_supervised_worker(
                &config,
                shard,
                filter,
                sink.clone(),
                Supervision {
                    recovery: Arc::clone(&recovery),
                    generation: 0,
                    checkpoint_interval: sup.checkpoint_interval,
                    slab_capacity: config.slab_capacity,
                    chaos: chaos.clone(),
                    fairness: fairness.get(shard).cloned(),
                    flight: flight.clone(),
                },
            )?;
            shards.push(ShardHandle {
                queue: producer,
                worker: Some(worker),
                buf: Slab::with_capacity(config.slab_capacity),
                down: false,
                enqueued: 0,
                dropped: 0,
                rejected: 0,
                flight,
                board: Arc::clone(&board),
                stalled: false,
            });
            sup_shards.push(ShardSup {
                recovery,
                generation: 0,
                state: ShardState::Running,
                strikes: 0,
                applied_at_restart: 0,
                restarts: 0,
                processed_cum: 0,
                lost_so_far: 0,
                last_progress: 0,
                last_progress_at: Instant::now(),
                board,
            });
        }
        Ok(Self {
            config,
            shards,
            events,
            pending: VecDeque::new(),
            offered: 0,
            memory_bytes,
            fairness,
            supervision: Some(Supervised {
                cfg: sup,
                chaos,
                sink,
                shards: sup_shards,
                graveyard: Vec::new(),
                recoveries: Vec::new(),
            }),
            flight_dir: PathBuf::from("results"),
        })
    }

    fn fairness_for(config: &PipelineConfig) -> Vec<Arc<Fairness>> {
        if config.policy == BackpressurePolicy::ShedFair {
            (0..config.shards)
                .map(|_| Arc::new(Fairness::new()))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn spawn_supervised_worker(
        config: &PipelineConfig,
        shard: usize,
        filter: QuantileFilter,
        sink: Sender<Event>,
        sup: Supervision,
    ) -> Result<(Producer<Msg>, JoinHandle<WorkerExit>), PipelineError> {
        let (producer, consumer) = SpscRing::with_capacity(config.queue_capacity).split();
        let worker = std::thread::Builder::new()
            .name(format!("qf-pipeline-{shard}"))
            .spawn(move || run_supervised(shard, consumer, filter, sink, sup))
            .map_err(|e| PipelineError::InvalidConfig {
                reason: format!("failed to spawn worker thread: {e}"),
            })?;
        Ok((producer, worker))
    }

    /// Rebuild a pipeline from a [`Self::snapshot`] envelope. Queue and
    /// policy settings come from `config` (they are not part of filter
    /// state); the shard count must match the envelope.
    pub fn restore(bytes: &[u8], config: PipelineConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        let frames = open_shards(bytes)?;
        if frames.len() != config.shards {
            return Err(PipelineError::InvalidConfig {
                reason: format!(
                    "snapshot has {} shards but config asks for {}",
                    frames.len(),
                    config.shards
                ),
            });
        }
        let mut filters = Vec::with_capacity(frames.len());
        for frame in frames {
            filters.push(QuantileFilter::restore(frame)?);
        }
        Self::launch_with_filters(config, filters)
    }

    /// The configuration this pipeline was launched with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of shards / worker threads.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Summed memory of the shard filters, captured at launch.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Items currently queued for `shard` (racy snapshot).
    pub fn queue_len(&self, shard: usize) -> usize {
        self.shards.get(shard).map_or(0, |s| s.queue.len())
    }

    /// Items presented to [`Self::ingest`] so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Lifecycle state of `shard` (always `Running` unsupervised).
    pub fn shard_state(&self, shard: usize) -> ShardState {
        self.supervision
            .as_ref()
            .and_then(|sv| sv.shards.get(shard))
            .map_or(ShardState::Running, |s| s.state)
    }

    /// Detach a thread-safe read handle over the per-shard supervision
    /// scoreboards and flight recorders — what the `qf-ops` HTTP server
    /// serves from. Cheap to clone; stays valid after shutdown.
    pub fn ops_view(&self) -> OpsView {
        OpsView::new(
            self.shards.iter().map(|h| Arc::clone(&h.board)).collect(),
            self.shards.iter().map(|h| h.flight.clone()).collect(),
        )
    }

    /// Redirect restart/quarantine flight dumps (default: `results/`).
    /// No-op without the `trace` feature.
    pub fn set_flight_dir(&mut self, dir: impl Into<PathBuf>) {
        self.flight_dir = dir.into();
    }

    /// Where restart/quarantine flight dumps land.
    pub fn flight_dir(&self) -> &Path {
        &self.flight_dir
    }

    /// Worker restarts so far across all shards (0 unsupervised).
    pub fn restarts(&self) -> u64 {
        self.supervision
            .as_ref()
            .map_or(0, |sv| sv.shards.iter().map(|s| s.restarts).sum())
    }

    /// Items currently buffered in `shard`'s router slab, waiting for
    /// the slab to fill or a flush point. These items are counted as
    /// enqueued (the slab is an extension of the queue); snapshots and
    /// shutdown always flush them first.
    pub fn buffered_len(&self, shard: usize) -> usize {
        self.shards.get(shard).map_or(0, |s| s.buf.len())
    }

    /// Flush every shard's partial router slab into its queue, so all
    /// admitted items become visible to the workers without waiting for
    /// slabs to fill. Items already counted as enqueued are never
    /// dropped here: the flush blocks (recovering through crashes when
    /// supervised) until each slab lands or its shard is down.
    pub fn flush(&mut self) {
        for shard in 0..self.shards.len() {
            self.flush_buffered(shard);
        }
    }

    /// Route one item to its shard. Never fails the whole call for a
    /// single bad shard: a full queue resolves per the backpressure
    /// policy, and a dead or quarantined shard yields
    /// [`IngestOutcome::ShardDown`] for *its* items while other shards
    /// keep accepting. Under supervision a dead/hung worker is first
    /// recovered (restarted from checkpoint + journal) and the flush
    /// retried; `ShardDown` then only appears once the shard is
    /// quarantined.
    ///
    /// The admitted item lands in the shard's router slab; the slab
    /// travels to the worker when it fills (the backpressure policy
    /// resolves *at that flush*, against the incoming item) or at the
    /// next quiesce/flush/shutdown point.
    pub fn ingest(&mut self, key: u64, value: f64) -> Result<IngestOutcome, PipelineError> {
        self.offered += 1;
        let shard = shard_of(key, self.shards.len());
        let outcome = if self.supervision.is_some() {
            self.ingest_supervised(shard, key, value)
        } else {
            self.ingest_unsupervised(shard, key, value)
        };
        let handle = &mut self.shards[shard];
        match outcome {
            IngestOutcome::Enqueued => {
                handle.enqueued += 1;
                telemetry::enqueued();
                if self.config.policy == BackpressurePolicy::ShedFair {
                    self.fairness[shard].note(key);
                }
            }
            IngestOutcome::Dropped => {
                handle.dropped += 1;
                telemetry::dropped();
            }
            IngestOutcome::ShardDown => {
                handle.rejected += 1;
                telemetry::shard_down_rejected();
            }
        }
        Ok(outcome)
    }

    fn ingest_unsupervised(&mut self, shard: usize, key: u64, value: f64) -> IngestOutcome {
        let handle = &mut self.shards[shard];
        if handle.down {
            return IngestOutcome::ShardDown;
        }
        handle.buf.push(key, value);
        if handle.buf.is_full() {
            return self.flush_full_unsupervised(shard, key);
        }
        IngestOutcome::Enqueued
    }

    /// Flush a just-filled slab; the backpressure policy resolves here,
    /// against the incoming item (the last one admitted to the slab).
    /// Returns that item's outcome — earlier slab items were already
    /// counted as enqueued by their own ingest calls.
    fn flush_full_unsupervised(&mut self, shard: usize, key: u64) -> IngestOutcome {
        let policy = self.config.policy;
        let handle = &mut self.shards[shard];
        let slab = handle.take_buf();
        match policy {
            BackpressurePolicy::Block => match handle.queue.push_blocking(Msg::Slab(slab)) {
                Ok(()) => IngestOutcome::Enqueued,
                Err(_) => {
                    handle.down = true;
                    IngestOutcome::ShardDown
                }
            },
            BackpressurePolicy::DropNewest => match handle.queue.try_push(Msg::Slab(slab)) {
                Ok(()) => IngestOutcome::Enqueued,
                Err((PushError::Full, msg)) => Self::undo_admit(handle, msg),
                Err((PushError::Disconnected, _)) => {
                    handle.down = true;
                    IngestOutcome::ShardDown
                }
            },
            BackpressurePolicy::DropOldest | BackpressurePolicy::ShedFair => {
                match handle.queue.try_push(Msg::Slab(slab)) {
                    Ok(()) => IngestOutcome::Enqueued,
                    Err((PushError::Disconnected, _)) => {
                        handle.down = true;
                        IngestOutcome::ShardDown
                    }
                    Err((PushError::Full, msg)) => {
                        if policy == BackpressurePolicy::ShedFair
                            && self.fairness[shard].is_heavy(key)
                        {
                            // The heavy key absorbs the overload it
                            // causes: its own item is dropped, the rest
                            // of the slab stays buffered for retry.
                            return Self::undo_admit(&mut self.shards[shard], msg);
                        }
                        let handle = &mut self.shards[shard];
                        // One credit == the worker discards the whole
                        // slab at the queue head.
                        handle.queue.request_shed(1);
                        match handle.queue.try_push_for(msg, PUSH_ROUND_BUDGET) {
                            Ok(()) => IngestOutcome::Enqueued,
                            // Consumer could not make room in the bounded
                            // window (wedged or outpaced): degrade to
                            // dropping the incoming item — unsupervised
                            // pipelines have no watchdog to do better.
                            Err((PushError::Full, msg)) => Self::undo_admit(handle, msg),
                            Err((PushError::Disconnected, _)) => {
                                handle.down = true;
                                IngestOutcome::ShardDown
                            }
                        }
                    }
                }
            }
        }
    }

    /// A failed flush hands the slab back: remove the just-admitted
    /// incoming item (it is dropped, not enqueued) and re-buffer the
    /// remainder — those items stay admitted and retry at the next
    /// flush point.
    fn undo_admit(handle: &mut ShardHandle, msg: Msg) -> IngestOutcome {
        if let Msg::Slab(mut slab) = msg {
            let _ = slab.pop();
            handle.buf = slab;
        }
        IngestOutcome::Dropped
    }

    fn ingest_supervised(&mut self, shard: usize, key: u64, value: f64) -> IngestOutcome {
        if self.shard_state(shard) == ShardState::Quarantined {
            return IngestOutcome::ShardDown;
        }
        let handle = &mut self.shards[shard];
        handle.buf.push(key, value);
        if handle.buf.is_full() {
            return self.flush_full_supervised(shard, key);
        }
        IngestOutcome::Enqueued
    }

    /// Supervised flush of a just-filled slab: the push loop recovers
    /// through dead and hung workers; the backpressure policy resolves
    /// against the incoming item exactly as in the unsupervised path.
    fn flush_full_supervised(&mut self, shard: usize, key: u64) -> IngestOutcome {
        let policy = self.config.policy;
        let mut msg = Msg::Slab(self.shards[shard].take_buf());
        let mut shed_requested = false;
        loop {
            if self.shard_state(shard) == ShardState::Quarantined {
                // Quarantined mid-flush: the slab is discarded. Items
                // admitted by earlier calls stay counted as enqueued
                // and fall into the recomputed crash loss; the incoming
                // item itself is rejected.
                return IngestOutcome::ShardDown;
            }
            let attempt = match policy {
                BackpressurePolicy::DropNewest => self.shards[shard].queue.try_push(msg),
                _ => self.shards[shard]
                    .queue
                    .try_push_for(msg, PUSH_ROUND_BUDGET),
            };
            match attempt {
                Ok(()) => {
                    if self.shards[shard].stalled {
                        self.note_backpressure(shard, false);
                    }
                    return IngestOutcome::Enqueued;
                }
                Err((PushError::Disconnected, m)) => {
                    // Survivor count excludes the incoming item: it is
                    // not yet counted as enqueued (this flush decides
                    // its outcome), so it must not offset the loss
                    // window either.
                    let in_hand = Self::msg_len(&m).saturating_sub(1);
                    msg = m;
                    self.recover_shard(shard, CrashCause::Panic, in_hand);
                }
                Err((PushError::Full, m)) => {
                    msg = m;
                    if !self.shards[shard].stalled {
                        self.note_backpressure(shard, true);
                    }
                    match policy {
                        BackpressurePolicy::DropNewest => {
                            return Self::undo_admit(&mut self.shards[shard], msg);
                        }
                        BackpressurePolicy::Block => {}
                        BackpressurePolicy::DropOldest | BackpressurePolicy::ShedFair => {
                            if policy == BackpressurePolicy::ShedFair
                                && self.fairness[shard].is_heavy(key)
                            {
                                return Self::undo_admit(&mut self.shards[shard], msg);
                            }
                            if !shed_requested {
                                self.shards[shard].queue.request_shed(1);
                                shed_requested = true;
                            }
                        }
                    }
                    if self.hang_confirmed(shard) {
                        let in_hand = Self::msg_len(&msg).saturating_sub(1);
                        self.recover_shard(shard, CrashCause::Hang, in_hand);
                    }
                }
            }
        }
    }

    /// Items carried by a message the router still holds (0 for control
    /// messages) — subtracted from a fence's loss window, since they
    /// will be re-flushed to the replacement worker.
    fn msg_len(msg: &Msg) -> u64 {
        match msg {
            Msg::Slab(slab) => slab.len() as u64,
            _ => 0,
        }
    }

    /// Blocking flush of `shard`'s partial slab (no incoming item to
    /// resolve a policy against: every buffered item is already counted
    /// as enqueued, so it must reach the worker or die with the shard).
    /// Used by [`Self::flush`], snapshots, and shutdown.
    fn flush_buffered(&mut self, shard: usize) {
        if self.shards[shard].buf.is_empty() {
            return;
        }
        if self.supervision.is_none() {
            let handle = &mut self.shards[shard];
            if handle.down {
                return;
            }
            let slab = handle.take_buf();
            if handle.queue.push_blocking(Msg::Slab(slab)).is_err() {
                // The buffered items are unrecoverable; shutdown will
                // surface the death as `WorkerDied`.
                handle.down = true;
            }
            return;
        }
        let mut msg = Msg::Slab(self.shards[shard].take_buf());
        loop {
            if self.shard_state(shard) == ShardState::Quarantined {
                // Discarded: the items stay counted as enqueued and land
                // in the shard's recomputed crash loss.
                return;
            }
            match self.shards[shard]
                .queue
                .try_push_for(msg, PUSH_ROUND_BUDGET)
            {
                Ok(()) => {
                    if self.shards[shard].stalled {
                        self.note_backpressure(shard, false);
                    }
                    return;
                }
                Err((PushError::Disconnected, m)) => {
                    let in_hand = Self::msg_len(&m);
                    msg = m;
                    self.recover_shard(shard, CrashCause::Panic, in_hand);
                }
                Err((PushError::Full, m)) => {
                    msg = m;
                    if !self.shards[shard].stalled {
                        self.note_backpressure(shard, true);
                    }
                    if self.hang_confirmed(shard) {
                        let in_hand = Self::msg_len(&msg);
                        self.recover_shard(shard, CrashCause::Hang, in_hand);
                    }
                }
            }
        }
    }

    /// Watchdog probe, called only when pushes to `shard` are stalling:
    /// has its progress counter been frozen past the deadline?
    fn hang_confirmed(&mut self, shard: usize) -> bool {
        let Some(sv) = self.supervision.as_mut() else {
            return false;
        };
        let s = &mut sv.shards[shard];
        let progress = s.recovery.progress();
        let now = Instant::now();
        if progress != s.last_progress {
            s.last_progress = progress;
            s.last_progress_at = now;
            if s.state == ShardState::Suspect {
                Self::set_state(s, ShardState::Running);
            }
            return false;
        }
        if now.duration_since(s.last_progress_at) >= sv.cfg.watchdog_deadline {
            return true;
        }
        if s.state == ShardState::Running {
            Self::set_state(s, ShardState::Suspect);
        }
        false
    }

    /// Record a backpressure edge on `shard`'s flight recorder: its
    /// queue just became full (`entering`) or just accepted again.
    /// Edges only — a sustained stall is two events, not a flood.
    fn note_backpressure(&mut self, shard: usize, entering: bool) {
        let generation = self
            .supervision
            .as_ref()
            .map_or(0, |sv| sv.shards[shard].generation);
        let h = &mut self.shards[shard];
        h.stalled = entering;
        h.flight.backpressure(generation, entering, h.enqueued);
    }

    fn set_state(s: &mut ShardSup, state: ShardState) {
        if s.state != state {
            telemetry::shard_state_delta(state.code() - s.state.code());
            s.state = state;
        }
        s.board.set_state(state, s.strikes);
    }

    /// Fence the shard's current worker generation and either restart it
    /// from checkpoint + journal (with backoff) or quarantine it once
    /// the strike budget is exhausted. Loss is accounted here, at the
    /// fence point. `in_hand` is the number of items in a slab the
    /// caller still holds (a flush that bounced off the dead worker):
    /// those items — like the shard's router-buffered slab — survive
    /// the crash and will be re-flushed to the replacement, so they are
    /// excluded from this fence's loss window.
    fn recover_shard(&mut self, shard: usize, cause: CrashCause, in_hand: u64) {
        let t0 = Instant::now();
        let config = self.config;
        let mut build_fresh = move || -> Option<QuantileFilter> { config.build_filter(shard).ok() };
        let Some(sv) = self.supervision.as_mut() else {
            return;
        };
        let s = &mut sv.shards[shard];
        if s.state == ShardState::Quarantined {
            return;
        }
        Self::set_state(s, ShardState::Restarting);
        // Fence + rebuild under one lock acquisition: after this block
        // the old generation can neither journal nor seal.
        let (recovered, applied_now, shed_now, fenced_gen) = {
            let mut inner = s.recovery.lock();
            if inner.applied.saturating_sub(s.applied_at_restart) >= sv.cfg.strike_forgiveness {
                s.strikes = 0;
            }
            s.strikes += 1;
            let fenced_gen = inner.generation;
            let recovered = if s.strikes >= sv.cfg.max_strikes {
                inner.generation += 1;
                None
            } else {
                inner.recover(&mut build_fresh)
            };
            s.generation = inner.generation;
            (recovered, inner.applied, inner.shed, fenced_gen)
        };
        // Loss attributable to this fence: everything enqueued that is
        // neither journaled-processed nor shed nor already-accounted —
        // minus what the router still holds (its buffered slab plus any
        // slab in the caller's hand), which survives the crash and will
        // be re-flushed to the replacement worker. Covers the
        // uncommitted slab and whatever sat in the ring.
        if let Some(rec) = &recovered {
            if rec.base == RecoveredBase::StateLoss {
                s.processed_cum += rec.prior_applied;
            }
        }
        let enqueued_so_far = self.shards[shard].enqueued;
        let buffered = self.shards[shard].buf.len() as u64 + in_hand;
        let processed_total = s.processed_cum + applied_now;
        let lost_inc = enqueued_so_far
            .saturating_sub(buffered)
            .saturating_sub(shed_now)
            .saturating_sub(processed_total)
            .saturating_sub(s.lost_so_far);
        s.lost_so_far += lost_inc;
        // Retire the old worker: dropping its producer closes the ring
        // (so a hung worker that wakes drains to `None` and exits), and
        // the join handle goes to the graveyard for reaping at shutdown.
        if let Some(old) = self.shards[shard].worker.take() {
            if old.is_finished() {
                let _ = old.join();
            } else {
                sv.graveyard.push(old);
            }
        }
        let mut record = RecoveryRecord {
            shard,
            generation: fenced_gen,
            cause,
            base: None,
            replayed: 0,
            recovered_seq: applied_now,
            lost: lost_inc,
            prior_applied: applied_now,
            quarantined: true,
            restart_latency: Duration::ZERO,
        };
        let respawned = match recovered {
            None => None,
            Some(rec) => {
                record.base = Some(rec.base);
                record.replayed = rec.replayed;
                record.recovered_seq = rec.recovered_seq;
                record.prior_applied = rec.prior_applied;
                std::thread::sleep(sv.cfg.backoff_for(s.strikes));
                Self::spawn_supervised_worker(
                    &config,
                    shard,
                    rec.filter,
                    sv.sink.clone(),
                    Supervision {
                        recovery: Arc::clone(&s.recovery),
                        generation: s.generation,
                        checkpoint_interval: sv.cfg.checkpoint_interval,
                        slab_capacity: config.slab_capacity,
                        chaos: sv.chaos.clone(),
                        fairness: self.fairness.get(shard).cloned(),
                        flight: self.shards[shard].flight.clone(),
                    },
                )
                .ok()
            }
        };
        match respawned {
            Some((producer, worker)) => {
                self.shards[shard].queue = producer;
                self.shards[shard].worker = Some(worker);
                self.shards[shard].stalled = false;
                s.restarts += 1;
                s.applied_at_restart = record.recovered_seq;
                s.last_progress = s.recovery.progress();
                s.last_progress_at = Instant::now();
                record.quarantined = false;
                record.restart_latency = t0.elapsed();
                Self::set_state(s, ShardState::Running);
                telemetry::restart();
            }
            None => {
                // Quarantine is terminal: the router-held slabs excluded
                // above will never be re-flushed — they are discarded,
                // so fold them back into this fence's loss.
                s.lost_so_far += buffered;
                record.lost += buffered;
                // Quarantine: park a closed queue in the handle so any
                // residual push fails fast, and stop routing to it.
                let (producer, consumer) = SpscRing::with_capacity(2).split();
                consumer.mark_dead();
                drop(consumer);
                self.shards[shard].queue = producer;
                self.shards[shard].stalled = false;
                Self::set_state(s, ShardState::Quarantined);
            }
        }
        // Stamp the supervision verdict into the shard's flight ring and
        // dump it: every restart/quarantine leaves a
        // flight-<shard>-<fenced_gen>.json trail ending in its cause.
        let flight = &self.shards[shard].flight;
        if record.quarantined {
            flight.quarantine(fenced_gen, cause.code(), record.lost);
        } else {
            flight.restart(fenced_gen, cause.code(), record.lost);
        }
        flight.dump(&self.flight_dir, fenced_gen, cause.name());
        s.board.record_recovery(
            s.generation,
            cause,
            record.lost,
            record.restart_latency.as_micros() as u64,
            !record.quarantined,
        );
        sv.recoveries.push(record);
    }

    /// Drain every report currently available without blocking, in sink
    /// arrival order (per shard: emission order).
    pub fn poll_reports(&mut self) -> Vec<ReportEvent> {
        let mut out: Vec<ReportEvent> = self.pending.drain(..).collect();
        loop {
            match self.events.try_recv() {
                Ok(Event::Report { shard, key, report }) => {
                    out.push(ReportEvent { shard, key, report });
                }
                // A stray barrier ack outside `snapshot` can only come
                // from a fenced generation that answered an abandoned
                // barrier; tolerate rather than poison.
                Ok(Event::Snapshot { .. }) => {}
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        out
    }

    /// Snapshot all shard filters at a consistent cut *while the pipeline
    /// keeps running*, returning the merged envelope.
    ///
    /// A `Quiesce` barrier message is pushed through each shard queue
    /// (never dropped, regardless of policy). Because the queues are
    /// FIFO, each worker snapshots after applying exactly the items
    /// ingested before this call and none after — a consistent cut
    /// without stopping ingest on other shards; each worker resumes the
    /// moment its own encode finishes. Reports that arrive while waiting
    /// for the barrier acks are buffered for the next
    /// [`Self::poll_reports`].
    ///
    /// Under supervision, a worker that dies or hangs mid-barrier is
    /// recovered and the barrier re-issued to its replacement (whose
    /// filter resumes from the journal head, i.e. the crash's accounted
    /// loss window is excluded from the cut), and a quarantined shard
    /// contributes the frame reconstructed from its checkpoint +
    /// journal; the call errors only if that reconstruction is
    /// impossible.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, PipelineError> {
        if self.supervision.is_some() {
            return self.snapshot_supervised();
        }
        // Flush partial router slabs first: the barrier must cut *after*
        // every admitted item, including ones still buffered router-side.
        self.flush();
        for (shard, handle) in self.shards.iter_mut().enumerate() {
            if handle.queue.push_blocking(Msg::Quiesce).is_err() {
                return Err(PipelineError::WorkerDied { shard });
            }
        }
        let mut frames: Vec<Option<Vec<u8>>> = vec![None; self.shards.len()];
        let mut missing = self.shards.len();
        while missing > 0 {
            match self.events.recv() {
                Ok(Event::Report { shard, key, report }) => {
                    self.pending.push_back(ReportEvent { shard, key, report });
                }
                Ok(Event::Snapshot { shard, bytes, .. }) => {
                    if frames[shard].replace(bytes).is_none() {
                        missing -= 1;
                    }
                }
                Err(_) => {
                    let shard = frames.iter().position(Option::is_none).unwrap_or(0);
                    return Err(PipelineError::WorkerDied { shard });
                }
            }
        }
        let frames: Vec<Vec<u8>> = frames.into_iter().flatten().collect();
        Ok(seal_shards(&frames))
    }

    fn snapshot_supervised(&mut self) -> Result<Vec<u8>, PipelineError> {
        // Flush partial router slabs first so the barrier cut includes
        // every admitted item (recovering through crashes as needed).
        self.flush();
        let n = self.shards.len();
        let mut frames: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut missing = 0usize;
        for (shard, frame) in frames.iter_mut().enumerate() {
            if self.shard_state(shard) == ShardState::Quarantined {
                *frame = Some(self.reconstruct_frame(shard)?);
            } else {
                self.push_barrier(shard, frame)?;
                if frame.is_none() {
                    missing += 1;
                }
            }
        }
        let tick = self
            .supervision
            .as_ref()
            .map_or(Duration::from_millis(50), |sv| sv.cfg.watchdog_deadline);
        while missing > 0 {
            match self.events.recv_timeout(tick) {
                Ok(Event::Report { shard, key, report }) => {
                    self.pending.push_back(ReportEvent { shard, key, report });
                }
                Ok(Event::Snapshot {
                    shard,
                    generation,
                    bytes,
                }) => {
                    // Frames from fenced generations answer barriers that
                    // were already re-issued; discard them.
                    let current = self
                        .supervision
                        .as_ref()
                        .map_or(0, |sv| sv.shards[shard].generation);
                    if generation == current && frames[shard].replace(bytes).is_none() {
                        missing -= 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    for (shard, frame) in frames.iter_mut().enumerate() {
                        if frame.is_some() {
                            continue;
                        }
                        let dead = !self.shards[shard].queue.consumer_alive();
                        if dead {
                            self.recover_shard(shard, CrashCause::Panic, 0);
                        } else if self.hang_confirmed(shard) {
                            self.recover_shard(shard, CrashCause::Hang, 0);
                        } else {
                            continue;
                        }
                        if self.shard_state(shard) == ShardState::Quarantined {
                            *frame = Some(self.reconstruct_frame(shard)?);
                            missing -= 1;
                        } else {
                            self.push_barrier(shard, frame)?;
                            if frame.is_some() {
                                missing -= 1;
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while supervised (the router holds a
                    // sink sender); fail closed regardless.
                    let shard = frames.iter().position(Option::is_none).unwrap_or(0);
                    return Err(PipelineError::WorkerDied { shard });
                }
            }
        }
        let frames: Vec<Vec<u8>> = frames.into_iter().flatten().collect();
        Ok(seal_shards(&frames))
    }

    /// Push a quiesce barrier to a live shard, recovering through dead or
    /// hung workers; fills `frame` directly if the shard ends up
    /// quarantined along the way.
    fn push_barrier(
        &mut self,
        shard: usize,
        frame: &mut Option<Vec<u8>>,
    ) -> Result<(), PipelineError> {
        loop {
            if self.shard_state(shard) == ShardState::Quarantined {
                *frame = Some(self.reconstruct_frame(shard)?);
                return Ok(());
            }
            match self.shards[shard]
                .queue
                .try_push_for(Msg::Quiesce, PUSH_ROUND_BUDGET)
            {
                Ok(()) => return Ok(()),
                Err((PushError::Disconnected, _)) => {
                    self.recover_shard(shard, CrashCause::Panic, 0);
                }
                Err((PushError::Full, _)) => {
                    if self.hang_confirmed(shard) {
                        self.recover_shard(shard, CrashCause::Hang, 0);
                    }
                }
            }
        }
    }

    /// Rebuild a quarantined shard's filter from its recovery state and
    /// encode it — the snapshot path for shards with no live worker.
    fn reconstruct_frame(&self, shard: usize) -> Result<Vec<u8>, PipelineError> {
        let Some(sv) = self.supervision.as_ref() else {
            return Err(PipelineError::WorkerDied { shard });
        };
        let config = self.config;
        let mut build_fresh = move || -> Option<QuantileFilter> { config.build_filter(shard).ok() };
        let inner = sv.shards[shard].recovery.lock();
        match inner.reconstruct(&mut build_fresh) {
            Some((filter, _, _)) => Ok(filter.snapshot()),
            None => Err(PipelineError::WorkerDied { shard }),
        }
    }

    /// Stop ingest, drain every queue to empty, join the workers, and
    /// return the final accounting plus any unconsumed reports.
    ///
    /// Unsupervised, a dead worker makes this return
    /// [`PipelineError::WorkerDied`] (its counts are unrecoverable).
    /// Supervised, shutdown always produces a summary: crashes during
    /// the final drain are fenced and accounted like any other, and
    /// quarantined shards report their journaled state.
    pub fn shutdown(self) -> Result<PipelineSummary, PipelineError> {
        if self.supervision.is_some() {
            return Ok(self.shutdown_supervised());
        }
        self.shutdown_unsupervised()
    }

    fn shutdown_unsupervised(mut self) -> Result<PipelineSummary, PipelineError> {
        // Flush partial router slabs so every admitted item reaches its
        // worker before the drain sentinel.
        self.flush();
        let mut first_dead: Option<usize> = None;
        for (shard, handle) in self.shards.iter_mut().enumerate() {
            // A dead worker can't drain; remember it, join below anyway.
            if handle.queue.push_blocking(Msg::Shutdown).is_err() && first_dead.is_none() {
                first_dead = Some(shard);
            }
        }
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut processed = 0u64;
        let mut shed = 0u64;
        let mut reports_emitted = 0u64;
        let mut enqueued = 0u64;
        let mut dropped = 0u64;
        let mut rejected = 0u64;
        for (shard, mut handle) in self.shards.drain(..).enumerate() {
            let exit = match handle.worker.take().map(JoinHandle::join) {
                Some(Ok(exit)) => exit,
                Some(Err(_)) | None => {
                    first_dead.get_or_insert(shard);
                    continue;
                }
            };
            processed += exit.processed;
            shed += exit.shed;
            reports_emitted += exit.reports;
            enqueued += handle.enqueued;
            dropped += handle.dropped;
            rejected += handle.rejected;
            per_shard.push(ShardSummary {
                enqueued: handle.enqueued,
                dropped: handle.dropped,
                rejected: handle.rejected,
                processed: exit.processed,
                shed: exit.shed,
                lost: 0,
                reports: exit.reports,
                restarts: 0,
                state: ShardState::Running,
            });
        }
        if let Some(shard) = first_dead {
            return Err(PipelineError::WorkerDied { shard });
        }
        // Workers have exited, so the channel holds every remaining event.
        let mut reports: Vec<ReportEvent> = self.pending.drain(..).collect();
        while let Ok(ev) = self.events.try_recv() {
            if let Event::Report { shard, key, report } = ev {
                reports.push(ReportEvent { shard, key, report });
            }
        }
        Ok(PipelineSummary {
            offered: self.offered,
            enqueued,
            dropped,
            rejected,
            processed,
            shed,
            lost_to_crash: 0,
            reports_emitted,
            restarts: 0,
            per_shard,
            recoveries: Vec::new(),
            reports,
        })
    }

    fn shutdown_supervised(mut self) -> PipelineSummary {
        let n = self.shards.len();
        // Flush partial router slabs so every admitted item reaches its
        // worker (or is accounted at a fence) before the drain sentinel.
        self.flush();
        // Phase 1: deliver the drain sentinel to every live shard,
        // recovering through crashes and hangs so it always lands (or
        // the shard ends up quarantined with its loss accounted).
        for shard in 0..n {
            loop {
                if self.shard_state(shard) == ShardState::Quarantined {
                    break;
                }
                match self.shards[shard]
                    .queue
                    .try_push_for(Msg::Shutdown, PUSH_ROUND_BUDGET)
                {
                    Ok(()) => break,
                    Err((PushError::Disconnected, _)) => {
                        self.recover_shard(shard, CrashCause::Panic, 0);
                    }
                    Err((PushError::Full, _)) => {
                        if self.hang_confirmed(shard) {
                            self.recover_shard(shard, CrashCause::Hang, 0);
                        }
                    }
                }
            }
        }
        // Phase 2: join the live workers. The grace window re-arms on
        // progress, so a long legitimate drain never trips it; a worker
        // that stops progressing without exiting is fenced, accounted,
        // and detached.
        for shard in 0..n {
            let Some(worker) = self.shards[shard].worker.take() else {
                continue;
            };
            match self.join_with_grace(shard, worker) {
                Some(Ok(_exit)) => {}
                Some(Err(_)) => {
                    // Panicked during the final drain (e.g. a late chaos
                    // fault): fence and account; no restart at teardown.
                    self.fence_terminally(shard, CrashCause::Panic);
                }
                None => {
                    self.fence_terminally(shard, CrashCause::ShutdownStall);
                }
            }
        }
        let Some(sv) = self.supervision.take() else {
            // Unreachable: shutdown_supervised is only called when
            // supervision is present.
            return PipelineSummary {
                offered: self.offered,
                enqueued: 0,
                dropped: 0,
                rejected: 0,
                processed: 0,
                shed: 0,
                lost_to_crash: 0,
                reports_emitted: 0,
                restarts: 0,
                per_shard: Vec::new(),
                recoveries: Vec::new(),
                reports: Vec::new(),
            };
        };
        // Phase 3: assemble the summary from the recovery state (the
        // crash-safe source of truth) and release the gauge.
        let mut per_shard = Vec::with_capacity(n);
        let mut totals = PipelineSummary {
            offered: self.offered,
            enqueued: 0,
            dropped: 0,
            rejected: 0,
            processed: 0,
            shed: 0,
            lost_to_crash: 0,
            reports_emitted: 0,
            restarts: 0,
            per_shard: Vec::new(),
            recoveries: sv.recoveries,
            reports: Vec::new(),
        };
        for (shard, s) in sv.shards.iter().enumerate() {
            let (applied, shard_shed, shard_reports) = {
                let inner = s.recovery.lock();
                (inner.applied, inner.shed, inner.reports)
            };
            let handle = &self.shards[shard];
            let processed = s.processed_cum + applied;
            let lost = handle
                .enqueued
                .saturating_sub(shard_shed)
                .saturating_sub(processed);
            let summary = ShardSummary {
                enqueued: handle.enqueued,
                dropped: handle.dropped,
                rejected: handle.rejected,
                processed,
                shed: shard_shed,
                lost,
                reports: shard_reports,
                restarts: s.restarts,
                state: s.state,
            };
            totals.enqueued += summary.enqueued;
            totals.dropped += summary.dropped;
            totals.rejected += summary.rejected;
            totals.processed += summary.processed;
            totals.shed += summary.shed;
            totals.lost_to_crash += summary.lost;
            totals.reports_emitted += summary.reports;
            totals.restarts += summary.restarts;
            // The process-wide gauge outlives this pipeline; remove this
            // run's contribution.
            telemetry::shard_state_delta(-s.state.code());
            per_shard.push(summary);
        }
        totals.per_shard = per_shard;
        // Phase 4: drain the sink (all live workers have exited; fenced
        // stragglers can no longer send reports past their fence).
        let mut reports: Vec<ReportEvent> = self.pending.drain(..).collect();
        while let Ok(ev) = self.events.try_recv() {
            if let Event::Report { shard, key, report } = ev {
                reports.push(ReportEvent { shard, key, report });
            }
        }
        totals.reports = reports;
        // Phase 5: reap the graveyard. Fenced workers exit on their own
        // (closed queue or generation check); give bounded time to the
        // ones still mid-sleep, then detach.
        let grace = sv.cfg.watchdog_deadline.saturating_mul(20);
        for handle in sv.graveyard {
            let t0 = Instant::now();
            while !handle.is_finished() && t0.elapsed() < grace {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
        totals
    }

    /// Join a live worker, re-arming the grace window whenever the shard
    /// makes progress. `None` means it neither progressed nor exited for
    /// a full window and was detached.
    fn join_with_grace(
        &mut self,
        shard: usize,
        worker: JoinHandle<WorkerExit>,
    ) -> Option<std::thread::Result<WorkerExit>> {
        let grace = self
            .supervision
            .as_ref()
            .map_or(Duration::from_millis(500), |sv| {
                sv.cfg.watchdog_deadline.saturating_mul(20)
            });
        let progress_of = |p: &Pipeline| {
            p.supervision
                .as_ref()
                .map_or(0, |sv| sv.shards[shard].recovery.progress())
        };
        let mut last = progress_of(self);
        let mut armed_at = Instant::now();
        while !worker.is_finished() {
            if armed_at.elapsed() >= grace {
                let now = progress_of(self);
                if now == last {
                    return None;
                }
                last = now;
                armed_at = Instant::now();
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Some(worker.join())
    }

    /// Terminal fence during shutdown: bump the generation, account the
    /// loss, and mark the shard quarantined — no restart at teardown.
    fn fence_terminally(&mut self, shard: usize, cause: CrashCause) {
        let enqueued_so_far = self.shards[shard].enqueued;
        let Some(sv) = self.supervision.as_mut() else {
            return;
        };
        let s = &mut sv.shards[shard];
        let (applied_now, shed_now, fenced_gen) = {
            let mut inner = s.recovery.lock();
            let fenced = inner.generation;
            inner.generation += 1;
            (inner.applied, inner.shed, fenced)
        };
        s.generation += 1;
        let processed_total = s.processed_cum + applied_now;
        let lost_inc = enqueued_so_far
            .saturating_sub(shed_now)
            .saturating_sub(processed_total)
            .saturating_sub(s.lost_so_far);
        s.lost_so_far += lost_inc;
        Self::set_state(s, ShardState::Quarantined);
        let flight = &self.shards[shard].flight;
        flight.quarantine(fenced_gen, cause.code(), lost_inc);
        flight.dump(&self.flight_dir, fenced_gen, cause.name());
        s.board
            .record_recovery(s.generation, cause, lost_inc, 0, false);
        sv.recoveries.push(RecoveryRecord {
            shard,
            generation: fenced_gen,
            cause,
            base: None,
            replayed: 0,
            recovered_seq: applied_now,
            lost: lost_inc,
            prior_applied: applied_now,
            quarantined: true,
            restart_latency: Duration::ZERO,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, policy: BackpressurePolicy) -> PipelineConfig {
        let criteria = match Criteria::new(5.0, 0.9, 100.0) {
            Ok(c) => c,
            Err(e) => panic!("criteria: {e:?}"),
        };
        PipelineConfig {
            shards,
            criteria,
            memory_bytes_per_shard: 16 * 1024,
            queue_capacity: 32,
            // slab=1 keeps these unit tests on per-item flush semantics.
            slab_capacity: 1,
            policy,
            seed: 0xD00D,
        }
    }

    /// A key routed to `shard` under this shard count.
    fn key_on(shard: usize, shards: usize) -> u64 {
        (0u64..)
            .find(|k| shard_of(*k, shards) == shard)
            .expect("some key routes to every shard")
    }

    /// The Disconnected-ingest contract without supervision: a dead shard
    /// fails only its *own* items, as a typed `ShardDown`, instead of
    /// poisoning the whole ingest call; shutdown still reports the death.
    #[test]
    fn dead_shard_rejects_only_its_own_items() {
        let mut pipe = match Pipeline::launch(cfg(2, BackpressurePolicy::Block)) {
            Ok(p) => p,
            Err(e) => panic!("launch: {e}"),
        };
        // Kill worker 0 out-of-band; its AliveGuard marks the ring dead.
        assert!(pipe.shards[0].queue.push_blocking(Msg::Shutdown).is_ok());
        let (k0, k1) = (key_on(0, 2), key_on(1, 2));
        let mut down = false;
        for _ in 0..10_000 {
            match pipe.ingest(k0, 5.0) {
                Ok(IngestOutcome::ShardDown) => {
                    down = true;
                    break;
                }
                // Raced the worker's exit; the item is in the ring and
                // will never be processed, which is fine here — this
                // test pins the *ingest* contract, not accounting.
                Ok(IngestOutcome::Enqueued) => std::thread::sleep(Duration::from_millis(1)),
                Ok(IngestOutcome::Dropped) => panic!("Block policy dropped"),
                Err(e) => panic!("dead shard must not poison ingest: {e}"),
            }
        }
        assert!(down, "dead shard never reported ShardDown");
        // The sibling shard is unaffected.
        for _ in 0..64 {
            match pipe.ingest(k1, 5.0) {
                Ok(IngestOutcome::Enqueued) => {}
                other => panic!("healthy shard refused an item: {other:?}"),
            }
        }
        // Repeat offenders stay typed, never an Err.
        match pipe.ingest(k0, 5.0) {
            Ok(IngestOutcome::ShardDown) => {}
            other => panic!("expected ShardDown again, got {other:?}"),
        }
        match pipe.shutdown() {
            Err(PipelineError::WorkerDied { shard: 0 }) => {}
            other => panic!("shutdown must still surface the death: {other:?}"),
        }
    }

    /// ShedFair's frequency sketch: a key hammered well past its fair
    /// share reads as heavy; background keys in other buckets do not.
    #[test]
    fn fairness_flags_heavy_hitters_only() {
        let f = Fairness::new();
        let heavy = 7u64;
        let mut light = heavy + 1;
        while Fairness::bucket(light) == Fairness::bucket(heavy) {
            light += 1;
        }
        for i in 0..2_048u64 {
            f.note(heavy);
            f.note(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        assert!(f.is_heavy(heavy));
        assert!(!f.is_heavy(light));
    }

    /// The decay window halves counts instead of forgetting them: a key
    /// that stops being heavy is eventually forgiven.
    #[test]
    fn fairness_decays_stale_heavy_hitters() {
        let f = Fairness::new();
        let heavy = 7u64;
        for _ in 0..1_024 {
            f.note(heavy);
        }
        assert!(f.is_heavy(heavy));
        let mut spread = 0u64;
        for _ in 0..6 {
            for _ in 0..Fairness::WINDOW {
                // Spread uniformly over other buckets.
                spread = spread.wrapping_add(0x9E37_79B9_7F4A_7C15);
                f.note(spread);
            }
        }
        assert!(!f.is_heavy(heavy), "stale heavy hitter never decayed");
    }

    /// Shed un-noting is exact per key: discarding everything a slab
    /// contained returns the sketch to its pre-admission state, so shed
    /// traffic stops counting as admission history.
    #[test]
    fn fairness_unnote_reverses_admissions_exactly() {
        let f = Fairness::new();
        let heavy = 7u64;
        for _ in 0..1_024 {
            f.note(heavy);
        }
        assert!(f.is_heavy(heavy));
        for _ in 0..1_024 {
            f.unnote(heavy);
        }
        assert!(!f.is_heavy(heavy), "unnote did not reverse note");
        // Saturating: un-noting past zero never wraps.
        f.unnote(heavy);
        assert!(!f.is_heavy(heavy));
    }
}
