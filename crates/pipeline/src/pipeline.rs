//! The pipeline itself: config, launch, routing, backpressure, snapshot
//! under load, and drained shutdown.
//!
//! ## Topology
//!
//! ```text
//!              ┌─ SPSC ring ─ worker 0 (owns QuantileFilter #0) ─┐
//!  router ─────┼─ SPSC ring ─ worker 1 (owns QuantileFilter #1) ─┼─ mpsc ─ caller
//!  (1 thread)  └─ SPSC ring ─ worker N (owns QuantileFilter #N) ─┘  sink
//! ```
//!
//! The router ([`Pipeline::ingest`], single-threaded by `&mut self`)
//! hashes each key to its shard with [`crate::shard_of`] and pushes onto
//! that shard's bounded queue. Each worker owns its filter outright — the
//! paper's single-writer deployment model, preserved per shard — and
//! sends [`Event`]s into one shared mpsc sink the caller drains with
//! [`Pipeline::poll_reports`].
//!
//! ## Ordering guarantee (and its limits)
//!
//! Per shard, items are applied in exactly the order they were ingested,
//! and reports from one shard arrive in the sink in emission order.
//! *Across* shards no order is defined — two reports from different
//! shards may arrive in either order relative to their ingest order.
//! Since per-key state never crosses shards, the reported *key set* (and
//! each shard's report sequence) is identical to single-threaded
//! execution; only the cross-shard interleaving of the sink is
//! scheduling-dependent.

use crate::ring::{Producer, PushError, SpscRing};
use crate::snapshot::{open_shards, seal_shards};
use crate::telemetry;
use crate::worker::{run_worker, Event, Msg, WorkerExit};
use crate::{shard_of, PipelineError};
use quantile_filter::{Criteria, QuantileFilter, QuantileFilterBuilder, Report};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::thread::JoinHandle;

/// What the router does when a shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait (spin/yield) until the worker frees a slot. Lossless;
    /// ingest latency absorbs the overload.
    Block,
    /// Drop the incoming item and count it (per shard, plus the
    /// `qf_pipeline_dropped_total` telemetry counter). Bounded ingest
    /// latency; the drop rate is the overload signal.
    DropNewest,
}

/// Static configuration of a [`Pipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of shards == worker threads. Keys are partitioned across
    /// shards by [`crate::shard_of`].
    pub shards: usize,
    /// Detection criteria, shared by every shard's filter.
    pub criteria: Criteria,
    /// Memory budget per shard filter, in bytes.
    pub memory_bytes_per_shard: usize,
    /// Slots per shard queue (rounded up to a power of two, minimum 2).
    pub queue_capacity: usize,
    /// Full-queue behavior.
    pub policy: BackpressurePolicy,
    /// Base RNG seed; shard `i` uses `seed.wrapping_add(i)`, matching the
    /// distinct-seeds-per-shard convention of the eval harness.
    pub seed: u64,
}

impl PipelineConfig {
    /// The seed shard `i`'s filter is built with.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.seed.wrapping_add(shard as u64)
    }

    fn validate(&self) -> Result<(), PipelineError> {
        if self.shards == 0 {
            return Err(PipelineError::InvalidConfig {
                reason: "pipeline needs at least one shard".into(),
            });
        }
        if self.queue_capacity < 2 {
            return Err(PipelineError::InvalidConfig {
                reason: "queue capacity must be at least 2".into(),
            });
        }
        Ok(())
    }
}

/// Whether [`Pipeline::ingest`] accepted or shed the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The item is on its shard's queue.
    Enqueued,
    /// The queue was full under [`BackpressurePolicy::DropNewest`]; the
    /// item was shed and counted.
    Dropped,
}

/// A report pulled out of the sink, tagged with its origin shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportEvent {
    /// Shard whose filter fired.
    pub shard: usize,
    /// The reported key.
    pub key: u64,
    /// The filter's report payload.
    pub report: Report,
}

/// Exact per-shard accounting, returned by [`Pipeline::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Items accepted onto this shard's queue.
    pub enqueued: u64,
    /// Items shed at the router (always 0 under `Block`).
    pub dropped: u64,
    /// Items the worker popped and applied to its filter.
    pub processed: u64,
    /// Reports the worker's filter emitted.
    pub reports: u64,
}

/// Final accounting for a drained pipeline. Conservation laws (pinned by
/// the stress suite): `offered == enqueued + dropped` and, after the full
/// drain a shutdown performs, `processed == enqueued`.
#[derive(Debug, Clone)]
pub struct PipelineSummary {
    /// Items presented to [`Pipeline::ingest`].
    pub offered: u64,
    /// Items accepted onto some shard queue.
    pub enqueued: u64,
    /// Items shed under `DropNewest`.
    pub dropped: u64,
    /// Items applied to shard filters.
    pub processed: u64,
    /// Total reports emitted.
    pub reports_emitted: u64,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<ShardSummary>,
    /// Reports not yet consumed via [`Pipeline::poll_reports`] when the
    /// pipeline shut down, in sink arrival order.
    pub reports: Vec<ReportEvent>,
}

struct ShardHandle {
    queue: Producer<Msg>,
    worker: Option<JoinHandle<WorkerExit>>,
    enqueued: u64,
    dropped: u64,
}

/// A live concurrent ingest pipeline. See the module docs for topology
/// and guarantees; `&mut self` on the ingest path enforces the
/// single-producer half of the SPSC contract.
pub struct Pipeline {
    config: PipelineConfig,
    shards: Vec<ShardHandle>,
    events: Receiver<Event>,
    /// Reports received while waiting for snapshot barriers, preserved in
    /// arrival order for the next `poll_reports`.
    pending: VecDeque<ReportEvent>,
    offered: u64,
    memory_bytes: usize,
}

impl Pipeline {
    /// Build per-shard filters from `config` and launch the workers.
    pub fn launch(config: PipelineConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        let mut filters = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let filter = QuantileFilterBuilder::new(config.criteria)
                .memory_budget_bytes(config.memory_bytes_per_shard)
                .seed(config.shard_seed(shard))
                .try_build()
                .map_err(|e| PipelineError::InvalidConfig {
                    reason: e.to_string(),
                })?;
            filters.push(filter);
        }
        Self::launch_with_filters(config, filters)
    }

    /// Launch workers over caller-supplied filters (one per shard) —
    /// the restore path, and the hook for non-default filter geometry.
    pub fn launch_with_filters(
        config: PipelineConfig,
        filters: Vec<QuantileFilter>,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        if filters.len() != config.shards {
            return Err(PipelineError::InvalidConfig {
                reason: format!("got {} filters for {} shards", filters.len(), config.shards),
            });
        }
        let memory_bytes = filters.iter().map(QuantileFilter::memory_bytes).sum();
        let (sink, events) = channel();
        let mut shards = Vec::with_capacity(config.shards);
        for (shard, filter) in filters.into_iter().enumerate() {
            let (producer, consumer) = SpscRing::with_capacity(config.queue_capacity).split();
            let sink = sink.clone();
            let worker = std::thread::Builder::new()
                .name(format!("qf-pipeline-{shard}"))
                .spawn(move || run_worker(shard, consumer, filter, sink))
                .map_err(|e| PipelineError::InvalidConfig {
                    reason: format!("failed to spawn worker thread: {e}"),
                })?;
            shards.push(ShardHandle {
                queue: producer,
                worker: Some(worker),
                enqueued: 0,
                dropped: 0,
            });
        }
        // The workers hold the only senders now: a `recv` error later
        // means every worker is gone, not that we forgot a clone here.
        drop(sink);
        Ok(Self {
            config,
            shards,
            events,
            pending: VecDeque::new(),
            offered: 0,
            memory_bytes,
        })
    }

    /// Rebuild a pipeline from a [`Self::snapshot`] envelope. Queue and
    /// policy settings come from `config` (they are not part of filter
    /// state); the shard count must match the envelope.
    pub fn restore(bytes: &[u8], config: PipelineConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        let frames = open_shards(bytes)?;
        if frames.len() != config.shards {
            return Err(PipelineError::InvalidConfig {
                reason: format!(
                    "snapshot has {} shards but config asks for {}",
                    frames.len(),
                    config.shards
                ),
            });
        }
        let mut filters = Vec::with_capacity(frames.len());
        for frame in frames {
            filters.push(QuantileFilter::restore(frame)?);
        }
        Self::launch_with_filters(config, filters)
    }

    /// The configuration this pipeline was launched with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of shards / worker threads.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Summed memory of the shard filters, captured at launch.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Items currently queued for `shard` (racy snapshot).
    pub fn queue_len(&self, shard: usize) -> usize {
        self.shards.get(shard).map_or(0, |s| s.queue.len())
    }

    /// Items presented to [`Self::ingest`] so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Route one item to its shard. Under [`BackpressurePolicy::Block`]
    /// this waits for queue space; under
    /// [`BackpressurePolicy::DropNewest`] a full queue sheds the item and
    /// returns [`IngestOutcome::Dropped`]. Errors only if the owning
    /// worker has died.
    pub fn ingest(&mut self, key: u64, value: f64) -> Result<IngestOutcome, PipelineError> {
        let shard = shard_of(key, self.shards.len());
        self.offered += 1;
        let handle = &mut self.shards[shard];
        let msg = Msg::Item { key, value };
        match self.config.policy {
            BackpressurePolicy::Block => match handle.queue.push_blocking(msg) {
                Ok(()) => {}
                Err(_) => return Err(PipelineError::WorkerDied { shard }),
            },
            BackpressurePolicy::DropNewest => match handle.queue.try_push(msg) {
                Ok(()) => {}
                Err((PushError::Full, _)) => {
                    handle.dropped += 1;
                    telemetry::dropped();
                    return Ok(IngestOutcome::Dropped);
                }
                Err((PushError::Disconnected, _)) => {
                    return Err(PipelineError::WorkerDied { shard });
                }
            },
        }
        handle.enqueued += 1;
        telemetry::enqueued();
        Ok(IngestOutcome::Enqueued)
    }

    /// Drain every report currently available without blocking, in sink
    /// arrival order (per shard: emission order).
    pub fn poll_reports(&mut self) -> Vec<ReportEvent> {
        let mut out: Vec<ReportEvent> = self.pending.drain(..).collect();
        loop {
            match self.events.try_recv() {
                Ok(Event::Report { shard, key, report }) => {
                    out.push(ReportEvent { shard, key, report });
                }
                // A stray barrier ack outside `snapshot` cannot happen
                // (only `snapshot` sends Quiesce and it collects all acks
                // before returning); tolerate rather than poison.
                Ok(Event::Snapshot { .. }) => {}
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        out
    }

    /// Snapshot all shard filters at a consistent cut *while the pipeline
    /// keeps running*, returning the merged envelope.
    ///
    /// A `Quiesce` barrier message is pushed through each shard queue
    /// (never dropped, regardless of policy). Because the queues are
    /// FIFO, each worker snapshots after applying exactly the items
    /// ingested before this call and none after — a consistent cut
    /// without stopping ingest on other shards; each worker resumes the
    /// moment its own encode finishes. Reports that arrive while waiting
    /// for the barrier acks are buffered for the next
    /// [`Self::poll_reports`].
    pub fn snapshot(&mut self) -> Result<Vec<u8>, PipelineError> {
        for (shard, handle) in self.shards.iter_mut().enumerate() {
            if handle.queue.push_blocking(Msg::Quiesce).is_err() {
                return Err(PipelineError::WorkerDied { shard });
            }
        }
        let mut frames: Vec<Option<Vec<u8>>> = vec![None; self.shards.len()];
        let mut missing = self.shards.len();
        while missing > 0 {
            match self.events.recv() {
                Ok(Event::Report { shard, key, report }) => {
                    self.pending.push_back(ReportEvent { shard, key, report });
                }
                Ok(Event::Snapshot { shard, bytes }) => {
                    if frames[shard].replace(bytes).is_none() {
                        missing -= 1;
                    }
                }
                Err(_) => {
                    let shard = frames.iter().position(Option::is_none).unwrap_or(0);
                    return Err(PipelineError::WorkerDied { shard });
                }
            }
        }
        let frames: Vec<Vec<u8>> = frames.into_iter().flatten().collect();
        Ok(seal_shards(&frames))
    }

    /// Stop ingest, drain every queue to empty, join the workers, and
    /// return the final accounting plus any unconsumed reports.
    pub fn shutdown(mut self) -> Result<PipelineSummary, PipelineError> {
        let mut first_dead: Option<usize> = None;
        for (shard, handle) in self.shards.iter_mut().enumerate() {
            // A dead worker can't drain; remember it, join below anyway.
            if handle.queue.push_blocking(Msg::Shutdown).is_err() && first_dead.is_none() {
                first_dead = Some(shard);
            }
        }
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut processed = 0u64;
        let mut reports_emitted = 0u64;
        let mut enqueued = 0u64;
        let mut dropped = 0u64;
        for (shard, mut handle) in self.shards.drain(..).enumerate() {
            let exit = match handle.worker.take().map(JoinHandle::join) {
                Some(Ok(exit)) => exit,
                Some(Err(_)) | None => {
                    first_dead.get_or_insert(shard);
                    continue;
                }
            };
            processed += exit.processed;
            reports_emitted += exit.reports;
            enqueued += handle.enqueued;
            dropped += handle.dropped;
            per_shard.push(ShardSummary {
                enqueued: handle.enqueued,
                dropped: handle.dropped,
                processed: exit.processed,
                reports: exit.reports,
            });
        }
        if let Some(shard) = first_dead {
            return Err(PipelineError::WorkerDied { shard });
        }
        // Workers have exited, so the channel holds every remaining event.
        let mut reports: Vec<ReportEvent> = self.pending.drain(..).collect();
        while let Ok(ev) = self.events.try_recv() {
            if let Event::Report { shard, key, report } = ev {
                reports.push(ReportEvent { shard, key, report });
            }
        }
        Ok(PipelineSummary {
            offered: self.offered,
            enqueued,
            dropped,
            processed,
            reports_emitted,
            per_shard,
            reports,
        })
    }
}
