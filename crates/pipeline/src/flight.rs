//! Feature-gated flight-recorder plumbing for the pipeline.
//!
//! One [`ShardFlight`] per shard: a cheap cloneable handle to the
//! shard's bounded event ring. The worker installs it as its thread's
//! emit context (so qf-core/qf-sketch trace hooks land in the right
//! ring), the router stamps backpressure edges and supervision verdicts
//! into it directly, and the supervisor dumps it to
//! `flight-<shard>-<generation>.json` on every restart and quarantine —
//! turning each `RecoveryRecord` into a full pre-crash event trail.
//!
//! With the `trace` cargo feature **off** (the default) `ShardFlight` is
//! a zero-sized stub and every method is an empty `#[inline(always)]`
//! body, so the untraced pipeline is bit-identical to the pre-trace
//! build — the same contract as [`crate::telemetry`]. The lint rule
//! QF-L006 holds this file to the cfg-pairing discipline.

#[cfg(feature = "trace")]
mod imp {
    use qf_trace::{tls, EventKind, FlightRecorder, TraceEvent};
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    /// Events retained per shard. 256 decisions of history costs 8 KiB
    /// per shard and comfortably spans a crash window (a full burst plus
    /// several checkpoint intervals' worth of elections and reports).
    pub const FLIGHT_CAPACITY: usize = 256;

    /// Handle to one shard's flight recorder.
    #[derive(Clone)]
    pub struct ShardFlight {
        rec: Arc<FlightRecorder>,
        shard: u16,
    }

    impl ShardFlight {
        /// Build the shard's recorder (cold: once per launch/restart).
        pub(crate) fn new(shard: usize) -> Self {
            Self {
                rec: Arc::new(FlightRecorder::with_capacity(FLIGHT_CAPACITY)),
                shard: shard as u16,
            }
        }

        /// Bind the calling thread's qf-trace emit context to this
        /// shard's ring — the worker calls this when it takes ownership.
        pub(crate) fn install(&self, generation: u64) {
            tls::install(Arc::clone(&self.rec), self.shard, generation as u32);
        }

        /// Router-side: a shard queue crossed a backpressure edge.
        pub(crate) fn backpressure(&self, generation: u64, entering: bool, enqueued: u64) {
            self.rec.emit(
                EventKind::Backpressure,
                self.shard,
                generation as u32,
                u64::from(entering),
                enqueued,
            );
        }

        /// Supervisor-side: the shard's worker was restarted.
        pub(crate) fn restart(&self, generation: u64, cause: u64, lost: u64) {
            self.rec.emit(
                EventKind::WorkerRestart,
                self.shard,
                generation as u32,
                cause,
                lost,
            );
        }

        /// Supervisor-side: the shard was quarantined.
        pub(crate) fn quarantine(&self, generation: u64, cause: u64, lost: u64) {
            self.rec.emit(
                EventKind::WorkerQuarantine,
                self.shard,
                generation as u32,
                cause,
                lost,
            );
        }

        /// Copy out the ring's intact events, oldest first.
        pub fn events(&self) -> Vec<TraceEvent> {
            self.rec.snapshot()
        }

        /// Render the ring as a `qf-flight/v1` JSON document (the
        /// `/flight?shard=N` endpoint body). `Some` iff tracing is
        /// compiled in.
        pub fn events_json(&self, generation: u64, cause: &str) -> Option<String> {
            Some(qf_trace::render_dump(
                self.shard,
                generation as u32,
                cause,
                &self.rec.snapshot(),
            ))
        }

        /// Dump the ring to `dir/flight-<shard>-<generation>.json`.
        /// Returns the path, or `None` if the write failed (dumps are
        /// diagnostics — a full disk must not turn recovery into an
        /// error).
        pub(crate) fn dump(&self, dir: &Path, generation: u64, cause: &str) -> Option<PathBuf> {
            qf_trace::write_dump(
                dir,
                self.shard,
                generation,
                generation as u32,
                cause,
                &self.rec.snapshot(),
            )
            .ok()
        }
    }

    /// Worker-thread hook: a quiesce snapshot was cut. Lands in the
    /// worker's installed ring via the thread-local context.
    #[inline(always)]
    pub(crate) fn snapshot_cut(bytes: u64, applied: u64) {
        tls::emit(EventKind::SnapshotCut, bytes, applied);
    }

    /// Worker-thread hook: a recovery checkpoint was sealed.
    #[inline(always)]
    pub(crate) fn checkpoint_seal(seq: u64, applied: u64) {
        tls::emit(EventKind::CheckpointSeal, seq, applied);
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use std::path::{Path, PathBuf};

    /// Zero-sized stub: tracing is compiled out.
    #[derive(Clone)]
    pub struct ShardFlight;

    impl ShardFlight {
        /// No-op: tracing is compiled out.
        #[inline(always)]
        pub(crate) fn new(_shard: usize) -> Self {
            Self
        }

        /// No-op: tracing is compiled out.
        #[inline(always)]
        pub(crate) fn install(&self, _generation: u64) {}

        /// No-op: tracing is compiled out.
        #[inline(always)]
        pub(crate) fn backpressure(&self, _generation: u64, _entering: bool, _enqueued: u64) {}

        /// No-op: tracing is compiled out.
        #[inline(always)]
        pub(crate) fn restart(&self, _generation: u64, _cause: u64, _lost: u64) {}

        /// No-op: tracing is compiled out.
        #[inline(always)]
        pub(crate) fn quarantine(&self, _generation: u64, _cause: u64, _lost: u64) {}

        /// Always `None`: tracing is compiled out.
        #[inline(always)]
        pub fn events_json(&self, _generation: u64, _cause: &str) -> Option<String> {
            None
        }

        /// Always `None`: tracing is compiled out.
        #[inline(always)]
        pub(crate) fn dump(&self, _dir: &Path, _generation: u64, _cause: &str) -> Option<PathBuf> {
            None
        }
    }

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub(crate) fn snapshot_cut(_bytes: u64, _applied: u64) {}

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub(crate) fn checkpoint_seal(_seq: u64, _applied: u64) {}
}

pub use imp::ShardFlight;
pub(crate) use imp::{checkpoint_seal, snapshot_cut};
