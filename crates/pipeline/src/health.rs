//! Live supervision state for the ops endpoint.
//!
//! The router already knows each shard's lifecycle state, strike count,
//! and recovery history — but it owns that state exclusively, and the
//! ops HTTP server runs on its own thread. [`ShardBoard`] is the bridge:
//! a tiny all-atomic scoreboard per shard, written by the router on
//! every transition (cold: state changes, restarts) and read lock-free
//! by anyone holding an [`OpsView`].
//!
//! [`OpsView`] is the detachable read handle handed to `qf-ops`: clone
//! it out of a live [`Pipeline`](crate::Pipeline) before starting the
//! server and the `/health` and `/flight` endpoints keep working for the
//! pipeline's whole life without touching router state. Unlike the
//! flight recorder this module is **not** feature-gated — the scoreboard
//! costs a handful of relaxed stores on cold transitions, so `/health`
//! works in every build; only `/flight` additionally needs the `trace`
//! feature.

use crate::flight::ShardFlight;
use crate::supervisor::{CrashCause, ShardState};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Lock-free per-shard supervision scoreboard. Router-written,
/// ops-read; all loads/stores are `Relaxed` because each field is
/// independently meaningful (a reader may see a restart's generation
/// bump before its cause — both values are individually valid).
#[derive(Debug, Default)]
pub(crate) struct ShardBoard {
    /// [`ShardState::code`] of the current state.
    // sync: counter — relaxed scoreboard word (struct docs).
    state: AtomicI64,
    /// Consecutive-crash strikes currently on record.
    // sync: counter — relaxed scoreboard word (struct docs).
    strikes: AtomicU64,
    /// Completed restarts (quarantine does not count).
    // sync: counter — relaxed scoreboard word (struct docs).
    restarts: AtomicU64,
    /// Generation of the live (or last fenced) worker lineage.
    // sync: counter — relaxed scoreboard word (struct docs).
    generation: AtomicU64,
    /// [`CrashCause::code`] of the most recent recovery; `0` = never.
    // sync: counter — relaxed scoreboard word (struct docs).
    last_cause: AtomicU64,
    /// Items lost in the most recent recovery.
    // sync: counter — relaxed scoreboard word (struct docs).
    last_lost: AtomicU64,
    /// Detection-to-respawn latency of the most recent restart, µs.
    // sync: counter — relaxed scoreboard word (struct docs).
    last_latency_micros: AtomicU64,
}

impl ShardBoard {
    /// Router-side: the shard changed lifecycle state.
    pub(crate) fn set_state(&self, state: ShardState, strikes: u32) {
        self.state.store(state.code(), Ordering::Relaxed);
        self.strikes.store(u64::from(strikes), Ordering::Relaxed);
    }

    /// Router-side: a recovery (restart or quarantine) completed.
    pub(crate) fn record_recovery(
        &self,
        generation: u64,
        cause: CrashCause,
        lost: u64,
        latency_micros: u64,
        restarted: bool,
    ) {
        self.generation.store(generation, Ordering::Relaxed);
        self.last_cause.store(cause.code(), Ordering::Relaxed);
        self.last_lost.store(lost, Ordering::Relaxed);
        self.last_latency_micros
            .store(latency_micros, Ordering::Relaxed);
        if restarted {
            self.restarts.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn read(&self, shard: usize) -> ShardHealth {
        ShardHealth {
            shard,
            state: ShardState::from_code(self.state.load(Ordering::Relaxed))
                .unwrap_or(ShardState::Running),
            strikes: self.strikes.load(Ordering::Relaxed) as u32,
            restarts: self.restarts.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
            last_cause: CrashCause::from_code(self.last_cause.load(Ordering::Relaxed)),
            last_lost: self.last_lost.load(Ordering::Relaxed),
            last_restart_latency_micros: self.last_latency_micros.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time supervision state of one shard, as served by `/health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Current lifecycle state.
    pub state: ShardState,
    /// Consecutive-crash strikes currently on record.
    pub strikes: u32,
    /// Completed restarts over the pipeline's life.
    pub restarts: u64,
    /// Generation of the live worker lineage.
    pub generation: u64,
    /// Cause of the most recent recovery, `None` if the shard has never
    /// crashed.
    pub last_cause: Option<CrashCause>,
    /// Items lost in the most recent recovery.
    pub last_lost: u64,
    /// Detection-to-respawn latency of the most recent restart, in
    /// microseconds (zero when quarantined or never crashed).
    pub last_restart_latency_micros: u64,
}

/// Detachable, thread-safe read handle over a pipeline's supervision
/// scoreboards and flight recorders. Obtained from
/// [`Pipeline::ops_view`](crate::Pipeline::ops_view); stays valid after
/// the pipeline shuts down (it reports the final state).
#[derive(Clone)]
pub struct OpsView {
    boards: Vec<Arc<ShardBoard>>,
    flights: Vec<ShardFlight>,
}

impl OpsView {
    pub(crate) fn new(boards: Vec<Arc<ShardBoard>>, flights: Vec<ShardFlight>) -> Self {
        Self { boards, flights }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.boards.len()
    }

    /// Point-in-time health of every shard.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.boards
            .iter()
            .enumerate()
            .map(|(i, b)| b.read(i))
            .collect()
    }

    /// `true` iff every shard is currently `Running`.
    pub fn healthy(&self) -> bool {
        self.boards
            .iter()
            .all(|b| b.state.load(Ordering::Relaxed) == ShardState::Running.code())
    }

    /// The `/health` endpoint body: per-shard supervision state as a
    /// self-contained JSON document (hand-rendered — this workspace is
    /// dependency-free by design).
    pub fn health_json(&self) -> String {
        let shards = self.health();
        let mut out = String::with_capacity(128 + 160 * shards.len());
        out.push_str("{\"healthy\":");
        out.push_str(if self.healthy() { "true" } else { "false" });
        out.push_str(",\"shards\":[");
        for (i, h) in shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"state\":\"{}\",\"strikes\":{},\"restarts\":{},\
                 \"generation\":{},\"last_cause\":{},\"last_lost\":{},\
                 \"last_restart_latency_micros\":{}}}",
                h.shard,
                h.state.name(),
                h.strikes,
                h.restarts,
                h.generation,
                h.last_cause
                    .map_or_else(|| "null".to_string(), |c| format!("\"{}\"", c.name())),
                h.last_lost,
                h.last_restart_latency_micros,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The `/flight?shard=N` endpoint body: the shard's live flight
    /// recorder rendered as a `qf-flight/v1` document. `None` when the
    /// shard index is out of range or the `trace` feature is compiled
    /// out.
    pub fn flight_json(&self, shard: usize) -> Option<String> {
        let flight = self.flights.get(shard)?;
        let generation = self
            .boards
            .get(shard)
            .map_or(0, |b| b.generation.load(Ordering::Relaxed));
        flight.events_json(generation, "live")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: usize) -> OpsView {
        OpsView::new(
            (0..n).map(|_| Arc::new(ShardBoard::default())).collect(),
            (0..n).map(ShardFlight::new).collect(),
        )
    }

    #[test]
    fn fresh_view_is_healthy_and_running() {
        let v = view(3);
        assert_eq!(v.shard_count(), 3);
        assert!(v.healthy());
        for h in v.health() {
            assert_eq!(h.state, ShardState::Running);
            assert_eq!(h.last_cause, None);
            assert_eq!(h.restarts, 0);
        }
        let json = v.health_json();
        assert!(json.starts_with("{\"healthy\":true"));
        assert!(json.contains("\"state\":\"running\""));
        assert!(json.contains("\"last_cause\":null"));
    }

    #[test]
    fn recovery_updates_flow_through() {
        let v = view(2);
        v.boards[1].set_state(ShardState::Quarantined, 3);
        v.boards[1].record_recovery(4, CrashCause::Panic, 17, 0, false);
        assert!(!v.healthy());
        let h = v.health()[1];
        assert_eq!(h.state, ShardState::Quarantined);
        assert_eq!(h.strikes, 3);
        assert_eq!(h.restarts, 0, "quarantine is not a restart");
        assert_eq!(h.generation, 4);
        assert_eq!(h.last_cause, Some(CrashCause::Panic));
        assert_eq!(h.last_lost, 17);
        let json = v.health_json();
        assert!(json.starts_with("{\"healthy\":false"));
        assert!(json.contains("\"state\":\"quarantined\""));
        assert!(json.contains("\"last_cause\":\"panic\""));
    }

    #[test]
    fn restart_increments_restarts() {
        let v = view(1);
        v.boards[0].record_recovery(1, CrashCause::Hang, 5, 1234, true);
        v.boards[0].record_recovery(2, CrashCause::Hang, 2, 900, true);
        let h = v.health()[0];
        assert_eq!(h.restarts, 2);
        assert_eq!(h.generation, 2);
        assert_eq!(h.last_restart_latency_micros, 900);
    }

    #[test]
    fn flight_json_bounds_checked() {
        let v = view(1);
        assert!(v.flight_json(9).is_none(), "out-of-range shard");
        // In-range: Some iff the trace feature is compiled in.
        assert_eq!(v.flight_json(0).is_some(), cfg!(feature = "trace"));
    }
}
