//! The merged pipeline snapshot envelope: N per-shard wire-v2
//! `QuantileFilter` snapshots framed into one self-delimiting,
//! checksummed byte stream.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QFPS"
//! 4       4     format version (u32 LE) — currently 1
//! 8       4     total length (u32 LE): whole envelope incl. checksum
//! 12      4     shard count (u32 LE)
//! 16      …     per shard, in shard order:
//!                 4  snapshot length (u32 LE)
//!                 …  `QuantileFilter::snapshot()` bytes (wire v2,
//!                    themselves self-delimiting and checksummed)
//! end−8   8     checksum (u64 LE): xxh64 over ALL preceding bytes
//! ```
//!
//! The envelope reuses the house conventions from qf-core's snapshot
//! module: little-endian throughout, a declared total length so trailing
//! garbage is a typed error rather than silently folded into the
//! checksum, and a trailing whole-envelope xxh64 so any single bit flip
//! is caught at the outer layer before the per-shard snapshots are even
//! opened. Because `QuantileFilter::snapshot()` is deterministic in the
//! filter state, sealing the shards of a restored pipeline reproduces the
//! original envelope byte for byte — the round-trip property the
//! snapshot-under-load tests pin.
//!
//! Decode order: length/magic → version → declared-length bounds →
//! whole-envelope checksum → shard count bounds → per-shard frame bounds.
//! Every failure is a typed [`QfError`]; no input drives an oversized
//! allocation (the shard count is capped before any `Vec` is sized).

use qf_hash::wire::{ByteReader, ByteWriter};
use qf_hash::xxh64;
use quantile_filter::QfError;

/// First four bytes of every merged pipeline snapshot.
pub const PIPELINE_SNAPSHOT_MAGIC: [u8; 4] = *b"QFPS";

/// The envelope version this build writes and the only one it reads.
pub const PIPELINE_SNAPSHOT_VERSION: u32 = 1;

/// Bound on the decoded shard count — a corrupted count field must not
/// drive a huge allocation. Far above any deployable shard fan-out.
const MAX_SNAPSHOT_SHARDS: u32 = 1 << 16;

// magic(4) + version(4) + total_len(4) + shard_count(4)
const HEADER_BYTES: usize = 16;
const MIN_ENVELOPE_BYTES: usize = HEADER_BYTES + 8;

/// Seed for the whole-envelope checksum (distinct from qf-core's seeds by
/// construction).
const CHECKSUM_SEED: u64 = 0x5EED_919E_11E0_0F5E;

fn corrupt(reason: &str) -> QfError {
    QfError::CorruptSnapshot {
        reason: reason.to_string(),
    }
}

/// Frame per-shard snapshots (in shard order) into the merged envelope.
pub fn seal_shards(shards: &[Vec<u8>]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&PIPELINE_SNAPSHOT_MAGIC);
    w.put_u32(PIPELINE_SNAPSHOT_VERSION);
    let body: usize = shards.iter().map(|s| 4 + s.len()).sum();
    w.put_u32((HEADER_BYTES + body + 8) as u32);
    w.put_u32(shards.len() as u32);
    for shard in shards {
        w.put_u32(shard.len() as u32);
        w.put_bytes(shard);
    }
    w.put_u64(xxh64(w.as_slice(), CHECKSUM_SEED));
    w.into_bytes()
}

/// Open a merged envelope back into per-shard snapshot slices.
pub fn open_shards(bytes: &[u8]) -> Result<Vec<&[u8]>, QfError> {
    if bytes.len() < MIN_ENVELOPE_BYTES {
        return Err(corrupt("pipeline snapshot shorter than minimum envelope"));
    }
    let mut r = ByteReader::new(bytes);
    let magic = r
        .get_bytes(4)
        .map_err(|_| corrupt("pipeline snapshot truncated"))?;
    if magic != PIPELINE_SNAPSHOT_MAGIC {
        return Err(corrupt("bad pipeline snapshot magic"));
    }
    let version = r
        .get_u32()
        .map_err(|_| corrupt("pipeline snapshot truncated"))?;
    if version != PIPELINE_SNAPSHOT_VERSION {
        return Err(QfError::VersionMismatch {
            found: version,
            supported: PIPELINE_SNAPSHOT_VERSION,
        });
    }
    let total = r
        .get_u32()
        .map_err(|_| corrupt("pipeline snapshot truncated"))? as usize;
    if total != bytes.len() {
        return Err(corrupt(if total > bytes.len() {
            "pipeline snapshot truncated: declared length exceeds buffer"
        } else {
            "trailing garbage after pipeline snapshot envelope"
        }));
    }
    let stored = u64::from_le_bytes(match bytes[bytes.len() - 8..].try_into() {
        Ok(a) => a,
        Err(_) => return Err(corrupt("pipeline snapshot truncated")),
    });
    let computed = xxh64(&bytes[..bytes.len() - 8], CHECKSUM_SEED);
    if stored != computed {
        return Err(corrupt("pipeline snapshot checksum mismatch"));
    }
    let count = r
        .get_u32()
        .map_err(|_| corrupt("pipeline snapshot truncated"))?;
    if count == 0 {
        return Err(corrupt("pipeline snapshot has zero shards"));
    }
    if count > MAX_SNAPSHOT_SHARDS {
        return Err(corrupt("pipeline snapshot shard count implausibly large"));
    }
    let mut shards = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = r
            .get_u32()
            .map_err(|_| corrupt("pipeline snapshot truncated in shard frame"))?
            as usize;
        if len + 8 > r.remaining() {
            return Err(corrupt("pipeline snapshot shard frame overruns envelope"));
        }
        shards.push(
            r.get_bytes(len)
                .map_err(|_| corrupt("pipeline snapshot truncated in shard frame"))?,
        );
    }
    if r.remaining() != 8 {
        return Err(corrupt(
            "pipeline snapshot has bytes between shards and checksum",
        ));
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<u8>> {
        vec![vec![1, 2, 3], vec![], vec![0xAB; 37]]
    }

    #[test]
    fn roundtrip() {
        let sealed = seal_shards(&sample());
        let opened = open_shards(&sealed).unwrap();
        assert_eq!(opened.len(), 3);
        assert_eq!(opened[0], &[1, 2, 3]);
        assert_eq!(opened[1], &[] as &[u8]);
        assert_eq!(opened[2], vec![0xAB; 37].as_slice());
    }

    #[test]
    fn every_bit_flip_is_caught() {
        let sealed = seal_shards(&sample());
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open_shards(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut sealed = seal_shards(&sample());
        sealed.push(0);
        let err = open_shards(&sealed).unwrap_err();
        assert!(format!("{err:?}").contains("trailing"));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let sealed = seal_shards(&sample());
        for len in 0..sealed.len() {
            assert!(open_shards(&sealed[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut sealed = seal_shards(&sample());
        sealed[4] = 9; // version field
                       // Re-checksum so only the version differs.
        let cut = sealed.len() - 8;
        let sum = qf_hash::xxh64(&sealed[..cut], super::CHECKSUM_SEED);
        sealed[cut..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            open_shards(&sealed),
            Err(QfError::VersionMismatch { found: 9, .. })
        ));
    }
}
