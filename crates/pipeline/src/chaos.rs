//! qf-chaos: deterministic fault injection for the supervised pipeline.
//!
//! A [`ChaosPlan`] describes *what* goes wrong — worker panics, hangs
//! (sleeps past the watchdog deadline), poison items, checkpoint
//! corruption — and *when*, addressed by pop ordinal or seal ordinal so a
//! plan replays identically run-to-run. [`Pipeline::launch_chaos`]
//! (crate::Pipeline::launch_chaos) arms the plan; the armed state is
//! shared across worker generations through an `Arc`, so a fault with
//! `times: 1` fires exactly once even though the shard that tripped it is
//! restarted with a fresh worker.
//!
//! ## Ordinal clocks
//!
//! Item faults trigger on the shard's **pop ordinal** — the value of the
//! per-shard progress counter when the item's slab is popped, plus the
//! item's offset inside the slab, starting at 0 and monotone across
//! restarts (items lost to a crash are never popped again, so the clock
//! never repeats a value). Slab batching leaves the clock per-item: a
//! slab pop advances the counter by the slab's length and each item
//! keeps its own ordinal, so plans written against v1 address the same
//! items. Checkpoint faults trigger
//! on the shard's **seal ordinal** — 1 for the first checkpoint the
//! lineage seals, counting every seal attempt including corrupted ones.
//!
//! This module is held to the hot-path rules (QF-L002) because its check
//! runs per applied item when chaos is armed; the per-item probe is a
//! scan over a short fault list with no allocation and no clock reads
//! (the hang fault *sleeps*, which is the fault being modeled, not a
//! clock *read*).

use core::time::Duration;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One injected fault. All coordinates are deterministic ordinals — see
/// the module docs for the two clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker for `shard` panics when it pops ordinal `at_pop`.
    /// Models a crash mid-stream; fires once.
    Panic {
        /// Target shard.
        shard: usize,
        /// Pop ordinal that trips the panic (0-based).
        at_pop: u64,
    },
    /// The worker for `shard` sleeps `millis` before applying ordinal
    /// `at_pop`. With `millis` past the watchdog deadline this models a
    /// hung worker; fires once.
    Hang {
        /// Target shard.
        shard: usize,
        /// Pop ordinal that trips the sleep (0-based).
        at_pop: u64,
        /// How long the worker stays wedged.
        millis: u64,
    },
    /// Any worker that pops an item with this key panics, `times` times
    /// total. Models a poison message that crashes its consumer on every
    /// redelivery until the strike budget quarantines the shard (the
    /// pipeline itself never redelivers — each retry is a fresh ingest).
    Poison {
        /// The poisoned key.
        key: u64,
        /// How many pops of this key panic before it turns benign.
        times: u32,
    },
    /// Flip one bit in the bytes of `shard`'s `seal`-th checkpoint
    /// (1-based), exercising the double-buffer fallback; fires once.
    CorruptCheckpoint {
        /// Target shard.
        shard: usize,
        /// Seal ordinal to corrupt (1-based).
        seal: u64,
    },
    /// Corrupt every checkpoint `shard` ever seals, forcing recovery to
    /// lean on the journal (fresh-replay or `StateLoss` paths).
    CorruptEveryCheckpoint {
        /// Target shard.
        shard: usize,
    },
}

/// A reusable description of the faults to inject into one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    faults: Vec<Fault>,
}

impl ChaosPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault (builder-style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The faults in this plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Arm the plan: attach per-fault remaining-use budgets. One armed
    /// instance is shared (via `Arc`) by every worker generation of the
    /// pipeline, so budgets span restarts.
    pub(crate) fn arm(&self) -> ArmedChaos {
        let remaining = self
            .faults
            .iter()
            .map(|f| {
                AtomicU32::new(match *f {
                    Fault::Poison { times, .. } => times,
                    Fault::CorruptEveryCheckpoint { .. } => u32::MAX,
                    Fault::Panic { .. } | Fault::Hang { .. } | Fault::CorruptCheckpoint { .. } => 1,
                })
            })
            .collect();
        ArmedChaos {
            shared: Arc::new(ChaosShared {
                faults: self.faults.clone(),
                remaining,
            }),
        }
    }
}

#[derive(Debug)]
struct ChaosShared {
    faults: Vec<Fault>,
    /// Uses left per fault, index-aligned with `faults`. `u32::MAX`
    /// means unlimited (never decremented to keep it truly unlimited).
    // sync: release-acquire — the consume CAS (`AcqRel` fetch_update)
    // hands the budget across worker generations so a respawned worker
    // observes every use its predecessors burned.
    remaining: Vec<AtomicU32>,
}

/// A [`ChaosPlan`] with live budgets, cloned into every worker
/// generation. Cheap to clone (one `Arc` bump) and cheap to probe (a
/// scan over the fault list).
#[derive(Debug, Clone)]
pub(crate) struct ArmedChaos {
    shared: Arc<ChaosShared>,
}

impl ArmedChaos {
    /// Consume one use of fault `idx`; `false` when its budget is spent.
    fn consume(&self, idx: usize) -> bool {
        self.shared.remaining[idx]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                if v == 0 {
                    None
                } else if v == u32::MAX {
                    Some(v)
                } else {
                    Some(v - 1)
                }
            })
            .is_ok()
    }

    /// Probe the item faults for (`shard`, pop `ordinal`, `key`). Called
    /// by the worker just before applying the item.
    ///
    /// # Panics
    ///
    /// Panics when a [`Fault::Panic`] or [`Fault::Poison`] matches —
    /// that *is* the injected fault; the worker's `AliveGuard` turns the
    /// unwind into a detectable crash.
    pub(crate) fn before_apply(&self, shard: usize, ordinal: u64, key: u64) {
        for (idx, fault) in self.shared.faults.iter().enumerate() {
            match *fault {
                Fault::Panic { shard: s, at_pop }
                    if s == shard && at_pop == ordinal && self.consume(idx) =>
                {
                    panic!("qf-chaos: injected panic at shard {shard} pop {ordinal}");
                }
                Fault::Hang {
                    shard: s,
                    at_pop,
                    millis,
                } if s == shard && at_pop == ordinal && self.consume(idx) => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                Fault::Poison { key: k, .. } if k == key && self.consume(idx) => {
                    panic!("qf-chaos: injected poison on key {key} at shard {shard}");
                }
                _ => {}
            }
        }
    }

    /// Probe the checkpoint faults for (`shard`, `seal` ordinal) and
    /// corrupt `bytes` in place on a match (one flipped bit mid-buffer —
    /// exactly the torn-write class the wire-v2 checksum must catch).
    pub(crate) fn corrupt_checkpoint(&self, shard: usize, seal: u64, bytes: &mut Vec<u8>) {
        for (idx, fault) in self.shared.faults.iter().enumerate() {
            let hit = match *fault {
                Fault::CorruptCheckpoint { shard: s, seal: n } => s == shard && n == seal,
                Fault::CorruptEveryCheckpoint { shard: s } => s == shard,
                _ => false,
            };
            if hit && self.consume(idx) {
                if bytes.is_empty() {
                    bytes.push(0xFF);
                } else {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x10;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builds_and_exposes_faults() {
        let plan = ChaosPlan::new()
            .with(Fault::Panic {
                shard: 1,
                at_pop: 10,
            })
            .with(Fault::Poison { key: 7, times: 2 });
        assert_eq!(plan.faults().len(), 2);
    }

    #[test]
    fn panic_fault_fires_once_at_its_ordinal() {
        let armed = ChaosPlan::new()
            .with(Fault::Panic {
                shard: 0,
                at_pop: 3,
            })
            .arm();
        armed.before_apply(0, 2, 9); // wrong ordinal: no fire
        armed.before_apply(1, 3, 9); // wrong shard: no fire
        let armed2 = armed.clone();
        let r = std::panic::catch_unwind(move || armed2.before_apply(0, 3, 9));
        assert!(r.is_err(), "fault should have fired");
        // Budget spent: same coordinates are now benign.
        armed.before_apply(0, 3, 9);
    }

    #[test]
    fn poison_fires_exactly_times_times() {
        let armed = ChaosPlan::new()
            .with(Fault::Poison { key: 42, times: 2 })
            .arm();
        for expect_fire in [true, true, false, false] {
            let probe = armed.clone();
            let r = std::panic::catch_unwind(move || probe.before_apply(0, 0, 42));
            assert_eq!(r.is_err(), expect_fire);
        }
        armed.before_apply(0, 0, 41); // other keys never fire
    }

    #[test]
    fn checkpoint_corruption_targets_its_seal() {
        let armed = ChaosPlan::new()
            .with(Fault::CorruptCheckpoint { shard: 2, seal: 2 })
            .arm();
        let mut bytes = [7u8; 16].to_vec();
        let clean = bytes.clone();
        armed.corrupt_checkpoint(2, 1, &mut bytes);
        assert_eq!(bytes, clean, "seal 1 untouched");
        armed.corrupt_checkpoint(2, 2, &mut bytes);
        assert_ne!(bytes, clean, "seal 2 corrupted");
        let mut again = clean.clone();
        armed.corrupt_checkpoint(2, 2, &mut again);
        assert_eq!(again, clean, "budget spent after one corruption");
    }

    #[test]
    fn corrupt_every_checkpoint_never_exhausts() {
        let armed = ChaosPlan::new()
            .with(Fault::CorruptEveryCheckpoint { shard: 0 })
            .arm();
        for seal in 1..50u64 {
            let mut bytes = [0u8; 8].to_vec();
            armed.corrupt_checkpoint(0, seal, &mut bytes);
            assert_ne!(bytes, [0u8; 8].to_vec(), "seal {seal} should corrupt");
        }
        let mut other = [0u8; 8].to_vec();
        armed.corrupt_checkpoint(1, 1, &mut other);
        assert_eq!(other, [0u8; 8].to_vec(), "other shards untouched");
    }

    #[test]
    fn hang_fault_sleeps_then_disarms() {
        let armed = ChaosPlan::new()
            .with(Fault::Hang {
                shard: 0,
                at_pop: 0,
                millis: 1,
            })
            .arm();
        armed.before_apply(0, 0, 1); // sleeps ~1ms, no panic
        armed.before_apply(0, 0, 1); // disarmed
    }

    #[test]
    fn empty_bytes_still_get_corrupted() {
        let armed = ChaosPlan::new()
            .with(Fault::CorruptEveryCheckpoint { shard: 0 })
            .arm();
        let mut bytes = Vec::new();
        armed.corrupt_checkpoint(0, 1, &mut bytes);
        assert!(!bytes.is_empty());
    }
}
