//! Bounded single-producer / single-consumer ring queue.
//!
//! Hand-rolled (no external deps) because the pipeline's hot path is one
//! `push` per message and one `pop` per worker iteration: a fixed
//! power-of-two slot array, a producer-owned `tail`, a consumer-owned
//! `head`, and acquire/release pairs on exactly those two words. No locks,
//! no per-message allocation — the slot array is the only heap memory and
//! it is allocated once in [`SpscRing::with_capacity`].
//!
//! The ring is payload-agnostic; the pipeline's slab handoff lives one
//! layer up. Each slot carries a whole `Msg` — usually a router-filled
//! item slab — so one acquire/release handshake and at most one wake
//! amortize over `slab_capacity` items, and a capacity-`N` ring holds up
//! to `N × slab_capacity` items in flight. Nothing in the protocol below
//! changed for slabs: an owned payload is moved in by `push` and out by
//! `pop`, and the drop path releases slots still occupied at teardown
//! whatever they hold. Shed credits redeem against whole slots (one
//! credit = the oldest queued *slab*); per-item shed accounting is the
//! worker's job, not the ring's.
//!
//! The single-producer / single-consumer discipline is enforced in the
//! type system: [`split`](SpscRing::split) yields one [`Producer`] and one
//! [`Consumer`], neither of which is `Clone`. The pipeline gives each
//! shard queue its producer side to the (single-threaded) router and its
//! consumer side to the shard's worker thread.
//!
//! All synchronization goes through the `qf_model::sync` shim: a
//! zero-cost re-export of `std` in real builds, and the instrumented
//! model-checker primitives under `--cfg qf_model` — the exhaustive
//! interleaving harness in `tests/model_ring.rs` explores exactly this
//! source. DESIGN.md §15 specifies the protocol below edge by edge.
//!
//! ## Idle strategy
//!
//! An empty-queue consumer first spins (with a spin hint), then yields,
//! then parks its thread; the producer unparks it after a push when (and
//! only when) the parked flag is up, using the SeqCst-fence handshake so
//! a wakeup can never be lost between the consumer's "is it still
//! empty?" re-check and the producer's flag read. A full-queue
//! *producer* under the blocking backpressure policy only spins/yields —
//! producer stalls end as soon as the consumer frees a slot, so parking
//! machinery on that side would buy nothing.
//!
//! ## Liveness
//!
//! Every slot-freeing pop is observed by the producer via `head`; every
//! blocking wait re-checks [`consumer_alive`](SpscRing) so a worker that
//! exits (including by panic — the worker holds a drop guard) turns a
//! would-be deadlock into a [`PushError::Disconnected`]. The symmetric
//! signal exists on the other side: dropping (or [`close`](Producer::close)-ing)
//! the producer makes [`Consumer::pop_wait`] return `None` once the queue
//! drains, so a worker whose router fenced it off unblocks instead of
//! parking forever.
//!
//! ## Shed credits
//!
//! Only the consumer owns `head`, so "drop the *oldest* queued message"
//! cannot be done by the producer directly. Instead the producer posts a
//! **shed credit** ([`Producer::request_shed`]); the consumer redeems
//! credits ([`Consumer::take_shed`]) by popping and discarding that many
//! messages before its next apply. The handoff is a single relaxed
//! counter — the producer's full-queue retry observes freed slots through
//! `head` exactly as it does for ordinary pops.

use std::mem::MaybeUninit;
use std::sync::Arc;

use qf_model::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicUsize, Ordering};
use qf_model::sync::cell::RaceCell;
use qf_model::sync::hint;
use qf_model::sync::thread::{self, Thread};
use qf_model::sync::Mutex;

/// Spins before the consumer escalates from `spin_loop` to `yield_now`.
#[cfg(not(qf_model))]
const SPINS_BEFORE_YIELD: usize = 64;
/// Yields before the consumer escalates from `yield_now` to parking.
#[cfg(not(qf_model))]
const YIELDS_BEFORE_PARK: usize = 32;

/// Model builds shrink the escalation ladder to one rung each, so the
/// explorer reaches the park/wake handshake — the part worth checking —
/// within a tractable number of schedule points. Every rung (spin,
/// yield, park) is still exercised.
#[cfg(qf_model)]
const SPINS_BEFORE_YIELD: usize = 1;
#[cfg(qf_model)]
const YIELDS_BEFORE_PARK: usize = 1;

/// Why a push did not take effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is full (only returned by [`Producer::try_push`]).
    Full,
    /// The consumer side is gone; no push can ever succeed again.
    Disconnected,
}

struct Slot<T>(RaceCell<MaybeUninit<T>>);

/// The shared ring state. Construct with [`SpscRing::with_capacity`] and
/// [`split`](SpscRing::split) into the two endpoint handles.
pub struct SpscRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next slot the producer writes (monotonic, wraps via `mask`).
    // sync: release-acquire — push_slot's Release store publishes the
    // slot write; try_pop's Acquire load pairs with it.
    tail: AtomicUsize,
    /// Next slot the consumer reads (monotonic, wraps via `mask`).
    // sync: release-acquire — pop_slot's Release store publishes the
    // freed slot; try_push's Acquire load pairs with it.
    head: AtomicUsize,
    /// Cleared by the consumer's drop guard when the worker exits.
    // sync: release-acquire — mark_dead's Release store pairs with the
    // producer-side Acquire loads in try_push/consumer_alive.
    consumer_alive: AtomicBool,
    /// Raised when the producer endpoint is closed or dropped: the
    /// consumer drains what is queued, then `pop_wait` returns `None`.
    // sync: release-acquire — close's Release store orders the final
    // pushes before pop_wait's Acquire load observes the close.
    producer_closed: AtomicBool,
    /// Oldest-item drop credits posted by the producer under shedding
    /// backpressure, redeemed by the consumer via `take_shed`.
    // sync: counter — relaxed credit counter; freed slots are observed
    // through `head`, never through this value.
    shed_requests: AtomicU32,
    /// Raised by the consumer just before parking.
    // sync: seqcst-handshake — relaxed flag sealed by SeqCst fences on
    // both sides (pop_wait / wake_consumer), the Dekker-style store-
    // buffering guard that makes lost wakeups impossible.
    consumer_parked: AtomicBool,
    /// The consumer thread to unpark; registered before the first pop.
    consumer_thread: Mutex<Option<Thread>>,
}

impl<T> SpscRing<T> {
    /// Allocate a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(Slot(RaceCell::new(MaybeUninit::uninit())));
        }
        Self {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            consumer_alive: AtomicBool::new(true),
            producer_closed: AtomicBool::new(false),
            shed_requests: AtomicU32::new(0),
            consumer_parked: AtomicBool::new(false),
            consumer_thread: Mutex::new(None),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Split into the producer and consumer endpoints.
    pub fn split(self) -> (Producer<T>, Consumer<T>) {
        let ring = Arc::new(self);
        (
            Producer {
                ring: Arc::clone(&ring),
            },
            Consumer { ring },
        )
    }

    /// Items currently queued (racy snapshot; exact when quiescent).
    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Write `value` into the slot at `tail` and publish it.
    ///
    /// Safety: caller is the unique producer and has verified the slot is
    /// free (`tail - head < capacity`); the consumer only reads slots
    /// strictly below `tail`, so this write is unaliased.
    fn push_slot(&self, value: T) {
        let tail = self.tail.load(Ordering::Relaxed); // sync: relaxed-ok — producer-owned word
        let slot = &self.slots[tail & self.mask];
        // SAFETY: per the caller contract above, this slot is free and
        // no other thread touches it until the Release store below
        // publishes it.
        unsafe {
            slot.0.with_mut(|p| {
                (*p).write(value);
            });
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Read the slot at `head` out and free it.
    ///
    /// Safety: caller is the unique consumer and has verified the slot is
    /// filled (`head < tail`); the producer only writes slots at or above
    /// `tail`, so this read is unaliased and initialized.
    fn pop_slot(&self) -> T {
        let head = self.head.load(Ordering::Relaxed); // sync: relaxed-ok — consumer-owned word
        let slot = &self.slots[head & self.mask];
        // SAFETY: per the caller contract above, the slot was initialized
        // by the producer and published through `tail`'s Release store,
        // which the caller's Acquire load observed.
        let value = unsafe { slot.0.with(|p| (*p).assume_init_read()) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Both handles are gone; drain whatever is still queued.
        let head = self.head.load(Ordering::Relaxed); // sync: relaxed-ok — exclusive &mut self
        let tail = self.tail.load(Ordering::Relaxed); // sync: relaxed-ok — exclusive &mut self
        let mut at = head;
        while at != tail {
            let slot = &self.slots[at & self.mask];
            // SAFETY: slots in [head, tail) were initialized by the
            // producer and never popped; `&mut self` proves no endpoint
            // can race this drain.
            unsafe {
                slot.0.with_mut(|p| {
                    (*p).assume_init_drop();
                });
            }
            at = at.wrapping_add(1);
        }
    }
}

/// The unique producing endpoint of a ring.
pub struct Producer<T> {
    ring: Arc<SpscRing<T>>,
}

impl<T> Producer<T> {
    /// Push without waiting. On failure the value is handed back alongside
    /// the reason: [`PushError::Full`] if no slot is free,
    /// [`PushError::Disconnected`] if the consumer is gone.
    pub fn try_push(&mut self, value: T) -> Result<(), (PushError, T)> {
        if !self.ring.consumer_alive.load(Ordering::Acquire) {
            return Err((PushError::Disconnected, value));
        }
        let tail = self.ring.tail.load(Ordering::Relaxed); // sync: relaxed-ok — producer-owned word
        let head = self.ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.ring.mask {
            return Err((PushError::Full, value));
        }
        self.ring.push_slot(value);
        self.wake_consumer();
        Ok(())
    }

    /// Push, spinning/yielding while the queue is full (the blocking
    /// backpressure policy). Fails only if the consumer disappears.
    pub fn push_blocking(&mut self, mut value: T) -> Result<(), PushError> {
        let mut spins = 0usize;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err((PushError::Disconnected, _)) => return Err(PushError::Disconnected),
                Err((PushError::Full, v)) => {
                    value = v;
                    if spins < SPINS_BEFORE_YIELD {
                        hint::spin_loop();
                    } else {
                        thread::yield_now();
                    }
                    spins += 1;
                }
            }
        }
    }

    /// Push with a bounded wait: spin/yield at most `budget` times, then
    /// hand the value back as [`PushError::Full`]. The shedding policies
    /// use this so a hung consumer can never wedge the router the way an
    /// unbounded [`Self::push_blocking`] would.
    pub fn try_push_for(&mut self, mut value: T, budget: usize) -> Result<(), (PushError, T)> {
        let mut spins = 0usize;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err((PushError::Disconnected, v)) => return Err((PushError::Disconnected, v)),
                Err((PushError::Full, v)) => {
                    if spins >= budget {
                        return Err((PushError::Full, v));
                    }
                    value = v;
                    if spins < SPINS_BEFORE_YIELD {
                        hint::spin_loop();
                    } else {
                        thread::yield_now();
                    }
                    spins += 1;
                }
            }
        }
    }

    /// Post `n` oldest-item drop credits for the consumer to redeem (the
    /// `DropOldest` family of backpressure policies) and wake it if
    /// parked.
    pub fn request_shed(&mut self, n: u32) {
        self.ring.shed_requests.fetch_add(n, Ordering::Relaxed);
        self.wake_consumer();
    }

    /// Close the producing endpoint: the consumer drains what is queued,
    /// then its `pop_wait` returns `None`. Idempotent; also runs on drop.
    pub fn close(&mut self) {
        self.ring.producer_closed.store(true, Ordering::Release);
        self.wake_consumer();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.ring.len() == 0
    }

    /// Is the consumer endpoint still alive?
    pub fn consumer_alive(&self) -> bool {
        self.ring.consumer_alive.load(Ordering::Acquire)
    }

    /// SeqCst-fence handshake: after publishing `tail`, unpark the
    /// consumer iff it is (or is about to be) parked.
    fn wake_consumer(&self) {
        fence(Ordering::SeqCst);
        if self.ring.consumer_parked.load(Ordering::Relaxed) {
            if let Some(t) = self.ring.consumer_thread.lock().as_ref() {
                t.unpark();
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // A producer that goes away (shutdown, or a router fencing off a
        // suspect worker) must not leave the consumer parked forever.
        self.close();
    }
}

/// The unique consuming endpoint of a ring.
pub struct Consumer<T> {
    ring: Arc<SpscRing<T>>,
}

impl<T> Consumer<T> {
    /// Register the calling thread as the one to unpark. Workers call this
    /// once before their first [`Self::pop_wait`].
    pub fn register_current_thread(&self) {
        *self.ring.consumer_thread.lock() = Some(thread::current());
    }

    /// Pop without waiting.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed); // sync: relaxed-ok — consumer-owned word
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        Some(self.ring.pop_slot())
    }

    /// Pop, escalating empty-queue waits from spin to yield to park.
    /// The producer's post-push fence pairs with the fence below, so
    /// either this thread sees the new item on its re-check or the
    /// producer sees the parked flag and unparks it. Returns `None` once
    /// the producer endpoint is closed (or dropped) *and* the queue is
    /// drained — the close/park race is covered by the same fence
    /// handshake as pushes.
    pub fn pop_wait(&mut self) -> Option<T> {
        loop {
            let mut spins = 0usize;
            while spins < SPINS_BEFORE_YIELD + YIELDS_BEFORE_PARK {
                if let Some(v) = self.try_pop() {
                    return Some(v);
                }
                if self.ring.producer_closed.load(Ordering::Acquire) {
                    // Re-check after observing the close: the producer's
                    // final pushes happen-before the Release store.
                    return self.try_pop();
                }
                if spins < SPINS_BEFORE_YIELD {
                    hint::spin_loop();
                } else {
                    thread::yield_now();
                }
                spins += 1;
            }
            // Self-register before the first park, so an unregistered
            // consumer can never sleep beyond the producer's reach.
            self.register_current_thread();
            self.ring.consumer_parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if let Some(v) = self.try_pop() {
                self.ring.consumer_parked.store(false, Ordering::Relaxed);
                return Some(v);
            }
            if self.ring.producer_closed.load(Ordering::Acquire) {
                self.ring.consumer_parked.store(false, Ordering::Relaxed);
                return self.try_pop();
            }
            thread::park();
            self.ring.consumer_parked.store(false, Ordering::Relaxed);
        }
    }

    /// Redeem up to `max` shed credits posted by
    /// [`Producer::request_shed`]; returns how many were taken. The
    /// consumer discards that many oldest queued items before applying
    /// its next batch.
    pub fn take_shed(&mut self, max: u32) -> u32 {
        // Fast path for the overwhelmingly common no-credits case: one
        // relaxed load, no RMW on the per-burst hot path.
        if self.ring.shed_requests.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let mut taken = 0u32;
        let _ = self
            .ring
            .shed_requests
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                taken = v.min(max);
                Some(v - taken)
            });
        taken
    }

    /// Mark the consumer as gone so blocked producers fail fast instead of
    /// waiting forever. Called by the worker's drop guard.
    pub fn mark_dead(&self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.ring.len() == 0
    }
}
